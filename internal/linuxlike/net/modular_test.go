package net

import (
	"testing"

	"safelinux/internal/linuxlike/kbase"
)

// recorderProto is a trivial StreamProto capturing what the host
// delivers through the modular interface.
type recorderProto struct {
	segments [][]byte
	srcs     []Addr
	ticks    int
}

func (p *recorderProto) ProtoName() string { return "recorder" }
func (p *recorderProto) HandleSegment(src Addr, payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	p.segments = append(p.segments, cp)
	p.srcs = append(p.srcs, src)
}
func (p *recorderProto) Tick(now uint64) { p.ticks++ }

func TestStreamProtoReceivesTCPTraffic(t *testing.T) {
	sim := NewSim(21)
	a := sim.AddHost(1)
	b := sim.AddHost(2)
	sim.Link(1, 2, LinkParams{Delay: 1})

	rp := &recorderProto{}
	b.InstallStreamProto(rp)
	if b.StreamProtoName() != "recorder" {
		t.Fatalf("proto name = %s", b.StreamProtoName())
	}

	// Legacy host a connects toward b: its SYN must arrive at the
	// modular handler, not the legacy dispatcher.
	a.ConnectTCP(2, 80)
	sim.Run(5)
	if len(rp.segments) == 0 {
		t.Fatalf("modular proto saw no segments")
	}
	if rp.srcs[0] != 1 {
		t.Fatalf("src = %d", rp.srcs[0])
	}
	if rp.ticks == 0 {
		t.Fatalf("modular proto never ticked")
	}
	// UDP traffic still flows through the legacy path.
	us, _ := b.BindUDP(53)
	ca, _ := a.BindUDP(0)
	ca.SendTo(2, 53, []byte("dns"))
	sim.Run(5)
	buf := make([]byte, 8)
	if n, _, _, err := us.RecvFrom(buf); err != kbase.EOK || n != 3 {
		t.Fatalf("UDP broken by stream proto: (%d, %v)", n, err)
	}
}

func TestStreamProtoUninstallRevertsToLegacy(t *testing.T) {
	sim := NewSim(22)
	a := sim.AddHost(1)
	b := sim.AddHost(2)
	sim.Link(1, 2, LinkParams{Delay: 1})

	rp := &recorderProto{}
	b.InstallStreamProto(rp)
	b.InstallStreamProto(nil) // revert
	if b.StreamProtoName() != "legacy-tcp" {
		t.Fatalf("proto name = %s", b.StreamProtoName())
	}
	// Legacy connection now completes normally.
	l, _ := b.ListenTCP(80)
	c, _ := a.ConnectTCP(2, 80)
	var srv *Socket
	ok := sim.RunUntil(func() bool {
		if srv == nil {
			if s, e := l.Accept(); e == kbase.EOK {
				srv = s
			}
		}
		return srv != nil && c.Established()
	}, 5000)
	if !ok {
		t.Fatalf("legacy path broken after uninstall")
	}
	if len(rp.segments) != 0 {
		t.Fatalf("uninstalled proto still receiving")
	}
}

func TestSendIPDownCall(t *testing.T) {
	sim := NewSim(23)
	a := sim.AddHost(1)
	b := sim.AddHost(2)
	sim.Link(1, 2, LinkParams{Delay: 1})
	rp := &recorderProto{}
	b.InstallStreamProto(rp)
	if err := a.SendIP(2, ProtoTCP, []byte{0xCA, 0xFE, 0xBA, 0xBE}); err != kbase.EOK {
		t.Fatalf("SendIP: %v", err)
	}
	sim.Run(3)
	if len(rp.segments) != 1 || len(rp.segments[0]) != 4 || rp.segments[0][0] != 0xCA {
		t.Fatalf("raw payload not delivered: %v", rp.segments)
	}
	if a.Now() != sim.Clock().Now() {
		t.Fatalf("Now() disagrees with the sim clock")
	}
}
