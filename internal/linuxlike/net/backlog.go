package net

// Sharded accept backlog. A listener under connection churn takes
// every SYN and every accept through one queue; sharding by the
// child's 4-tuple spreads that pressure the same way the demux table
// spreads rx lookups, and bounding it gives SYN floods a drop point
// instead of unbounded memory. Pop rotates across shards so no shard
// can starve; both push and pop are deterministic functions of the
// push sequence, which the differential sweep relies on.

const (
	backlogShards     = 4
	defaultBacklogMax = 65536
)

type backlogShard[V any] struct {
	buf  []V
	head int
}

// Backlog is a sharded bounded queue of not-yet-accepted children.
type Backlog[V any] struct {
	shards  [backlogShards]backlogShard[V]
	cursor  int
	size    int
	max     int
	dropped uint64
}

// NewBacklog creates a backlog bounded at max entries (0 uses the
// default of 65536).
func NewBacklog[V any](max int) *Backlog[V] {
	if max <= 0 {
		max = defaultBacklogMax
	}
	return &Backlog[V]{max: max}
}

// Len returns the number of queued children.
func (b *Backlog[V]) Len() int { return b.size }

// Dropped returns how many pushes the bound has refused.
func (b *Backlog[V]) Dropped() uint64 { return b.dropped }

// Push queues a child on the shard its tuple hashes to. Returns false
// (and counts a drop) when the backlog is full — the caller resets the
// connection, as a real stack would.
func (b *Backlog[V]) Push(key FourTuple, v V) bool {
	if b.size >= b.max {
		b.dropped++
		return false
	}
	s := &b.shards[key.hash()%backlogShards]
	s.buf = append(s.buf, v)
	b.size++
	return true
}

// Pop dequeues one child, rotating across shards round-robin.
func (b *Backlog[V]) Pop() (V, bool) {
	var zero V
	if b.size == 0 {
		return zero, false
	}
	for i := 0; i < backlogShards; i++ {
		s := &b.shards[(b.cursor+i)%backlogShards]
		if s.head < len(s.buf) {
			v := s.buf[s.head]
			s.buf[s.head] = zero // drop the reference for the GC
			s.head++
			if s.head == len(s.buf) {
				s.buf = s.buf[:0]
				s.head = 0
			}
			b.cursor = (b.cursor + i + 1) % backlogShards
			b.size--
			return v, true
		}
	}
	return zero, false
}
