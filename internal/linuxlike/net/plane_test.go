package net

import (
	"testing"

	"safelinux/internal/linuxlike/kbase"
)

// --- port allocator ---

func TestPortAllocMonotonicAndRecycle(t *testing.T) {
	pa := NewPortAlloc()
	a, err := pa.AllocEphemeral()
	b, err2 := pa.AllocEphemeral()
	if err != kbase.EOK || err2 != kbase.EOK {
		t.Fatalf("alloc failed: %v %v", err, err2)
	}
	if a != EphemeralBase || b != EphemeralBase+1 {
		t.Fatalf("allocation not monotonic from base: got %d, %d", a, b)
	}
	pa.Release(a)
	// Next-fit keeps moving forward rather than reusing a immediately —
	// the old monotonic behavior TIME_WAIT safety relies on.
	c, _ := pa.AllocEphemeral()
	if c != EphemeralBase+2 {
		t.Fatalf("next-fit should continue forward, got %d", c)
	}
	if pa.Free() != 16384-2 {
		t.Fatalf("free count %d, want %d", pa.Free(), 16384-2)
	}
}

func TestPortAllocExhaustionTyped(t *testing.T) {
	pa := NewPortAlloc()
	for i := 0; i < 16384; i++ {
		if _, err := pa.AllocEphemeral(); err != kbase.EOK {
			t.Fatalf("alloc %d failed early: %v", i, err)
		}
	}
	if _, err := pa.AllocEphemeral(); err != kbase.EADDRINUSE {
		t.Fatalf("exhausted space returned %v, want EADDRINUSE", err)
	}
	pa.Release(EphemeralBase + 7000)
	p, err := pa.AllocEphemeral()
	if err != kbase.EOK || p != EphemeralBase+7000 {
		t.Fatalf("after release got (%d, %v), want the freed port", p, err)
	}
}

func TestPortAllocSharedRefs(t *testing.T) {
	pa := NewPortAlloc()
	// A listener on an ephemeral-range port plus two accepted children
	// sharing it: the port frees only when all three release.
	const port = EphemeralBase + 100
	pa.Acquire(port)
	pa.Acquire(port)
	pa.Acquire(port)
	pa.Release(port)
	pa.Release(port)
	if !pa.InUse(port) {
		t.Fatal("port freed while a user remains")
	}
	pa.Release(port)
	if pa.InUse(port) {
		t.Fatal("port still marked used after last release")
	}
	// Below the ephemeral base: untracked no-ops.
	pa.Acquire(80)
	if pa.InUse(80) || pa.Free() != 16384 {
		t.Fatal("well-known port leaked into the ephemeral accounting")
	}
}

// --- demux table ---

func TestDemuxTableBasics(t *testing.T) {
	d := NewDemuxTable[int]()
	k1 := FourTuple{LAddr: 1, LPort: 80, RAddr: 2, RPort: 50000}
	k2 := FourTuple{LAddr: 1, LPort: 80, RAddr: 2, RPort: 50001}
	d.Insert(k1, 11)
	d.Insert(k2, 22)
	if v, ok := d.Lookup(k1); !ok || v != 11 {
		t.Fatalf("lookup k1 = (%d, %v)", v, ok)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	seen := 0
	d.ForEach(func(FourTuple, int) bool { seen++; return true })
	if seen != 2 {
		t.Fatalf("ForEach visited %d", seen)
	}
	d.Delete(k1)
	if _, ok := d.Lookup(k1); ok || d.Len() != 1 {
		t.Fatal("delete did not remove the binding")
	}
}

// --- backlog ---

func TestBacklogDeterministicAndBounded(t *testing.T) {
	b := NewBacklog[int](8)
	for i := 0; i < 8; i++ {
		if !b.Push(FourTuple{RAddr: Addr(i), RPort: uint16(i)}, i) {
			t.Fatalf("push %d refused below the bound", i)
		}
	}
	if b.Push(FourTuple{RAddr: 99, RPort: 99}, 99) {
		t.Fatal("push above the bound accepted")
	}
	if b.Dropped() != 1 {
		t.Fatalf("dropped = %d", b.Dropped())
	}
	// Drain: every element exactly once, and the order is a pure
	// function of the push sequence (re-run must agree).
	drain := func() []int {
		b2 := NewBacklog[int](8)
		for i := 0; i < 8; i++ {
			b2.Push(FourTuple{RAddr: Addr(i), RPort: uint16(i)}, i)
		}
		var got []int
		for v, ok := b2.Pop(); ok; v, ok = b2.Pop() {
			got = append(got, v)
		}
		return got
	}
	first := drain()
	second := drain()
	if len(first) != 8 {
		t.Fatalf("drained %d of 8", len(first))
	}
	seen := map[int]bool{}
	for i, v := range first {
		if seen[v] || v != second[i] {
			t.Fatalf("drain not a deterministic permutation: %v vs %v", first, second)
		}
		seen[v] = true
	}
}

// --- readiness plane ---

// fakeSock is a Pollable with a settable readiness level.
type fakeSock struct {
	PollSource
	level PollEvents
}

func (f *fakeSock) PollReady() PollEvents { return f.level }

func TestPollNoLostWakeups(t *testing.T) {
	p := NewPoller()
	s := &fakeSock{}
	p.Watch(s, &s.PollSource)
	s.level = PollIn
	s.PollWake(PollIn)
	var out [4]PollEvent
	n := p.Poll(out[:])
	if n != 1 || out[0].Owner != Pollable(s) || out[0].Events != PollIn {
		t.Fatalf("woken source not delivered: n=%d out=%+v", n, out[0])
	}
	// Still ready (level-triggered): a second wake re-delivers.
	s.PollWake(PollIn)
	if n := p.Poll(out[:]); n != 1 {
		t.Fatalf("second wake lost, n=%d", n)
	}
	st := p.Stats()
	if st.Delivered != 2 || st.Wakeups != 2 {
		t.Fatalf("stats %+v, want 2 delivered / 2 wakeups", st)
	}
}

func TestPollCoalescingNoStorms(t *testing.T) {
	p := NewPoller()
	s := &fakeSock{level: PollIn}
	p.Watch(s, &s.PollSource) // Watch sees the level and queues once
	for i := 0; i < 99; i++ {
		s.PollWake(PollIn) // 99 more edges before anyone drains
	}
	var out [8]PollEvent
	if n := p.Poll(out[:]); n != 1 {
		t.Fatalf("storm delivered %d events, want 1", n)
	}
	st := p.Stats()
	if st.Coalesced != 99 {
		t.Fatalf("coalesced = %d, want 99", st.Coalesced)
	}
	if st.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", st.Delivered)
	}
}

func TestPollSpuriousSuppression(t *testing.T) {
	p := NewPoller()
	s := &fakeSock{}
	p.Watch(s, &s.PollSource)
	s.level = PollIn
	s.PollWake(PollIn)
	s.level = 0 // condition consumed before the drain
	var out [4]PollEvent
	if n := p.Poll(out[:]); n != 0 {
		t.Fatalf("consumed condition still delivered %d events", n)
	}
	if st := p.Stats(); st.Spurious != 1 || st.Delivered != 0 {
		t.Fatalf("stats %+v, want 1 spurious / 0 delivered", st)
	}
}

func TestPollSmallBufferKeepsRemainder(t *testing.T) {
	p := NewPoller()
	socks := make([]*fakeSock, 5)
	for i := range socks {
		socks[i] = &fakeSock{level: PollIn}
		p.Watch(socks[i], &socks[i].PollSource)
	}
	var out [2]PollEvent
	total := 0
	for i := 0; i < 10 && total < 5; i++ {
		total += p.Poll(out[:])
	}
	if total != 5 {
		t.Fatalf("delivered %d of 5 across drains", total)
	}
}

func TestPollUnwatchDropsQueued(t *testing.T) {
	p := NewPoller()
	s := &fakeSock{level: PollIn}
	p.Watch(s, &s.PollSource)
	p.Unwatch(&s.PollSource)
	var out [4]PollEvent
	if n := p.Poll(out[:]); n != 0 {
		t.Fatalf("unwatched source delivered %d events", n)
	}
	// Wake after unwatch is a no-op, not a panic.
	s.PollWake(PollIn)
}
