package net

import "sync"

// Connection demux: the rx fast path's first touch. The legacy layout
// (map[port]map[connKey]) made lookup two map hops behind a structure
// the tick loop also had to walk and sort; at 1M connections the walk
// dominated every jiffy. The demux table is a flat hash over the full
// 4-tuple, sharded like the bufcache so the shard lock an rx packet
// takes is uncontended 15/16ths of the time.
//
// Nothing on the protocol path iterates the table — lookups are O(1)
// by tuple, and reaping goes through the owner's dead-list, not a
// scan. ForEach exists for reset/metrics paths only; its order is not
// deterministic and protocol code must not depend on it.

// demuxShards must be a power of two; 16 matches the bufcache.
const demuxShards = 16

// FourTuple identifies one connection: local address/port, remote
// address/port.
type FourTuple struct {
	LAddr Addr
	LPort uint16
	RAddr Addr
	RPort uint16
}

// hash is FNV-1a over the tuple's 12 bytes.
func (k FourTuple) hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	mix(byte(k.LAddr))
	mix(byte(k.LAddr >> 8))
	mix(byte(k.LAddr >> 16))
	mix(byte(k.LAddr >> 24))
	mix(byte(k.LPort))
	mix(byte(k.LPort >> 8))
	mix(byte(k.RAddr))
	mix(byte(k.RAddr >> 8))
	mix(byte(k.RAddr >> 16))
	mix(byte(k.RAddr >> 24))
	mix(byte(k.RPort))
	mix(byte(k.RPort >> 8))
	return h
}

type demuxShard[V any] struct {
	mu sync.Mutex
	m  map[FourTuple]V
}

// DemuxTable is a sharded 4-tuple → connection map. V is the owner's
// connection type (*Socket for the legacy stack, a *Conn for safetcp).
type DemuxTable[V any] struct {
	shards [demuxShards]demuxShard[V]
}

// NewDemuxTable creates an empty table.
func NewDemuxTable[V any]() *DemuxTable[V] {
	d := &DemuxTable[V]{}
	for i := range d.shards {
		d.shards[i].m = make(map[FourTuple]V)
	}
	return d
}

func (d *DemuxTable[V]) shard(k FourTuple) *demuxShard[V] {
	return &d.shards[k.hash()&(demuxShards-1)]
}

// Lookup finds the connection for a tuple.
func (d *DemuxTable[V]) Lookup(k FourTuple) (V, bool) {
	s := d.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

// Insert binds a tuple to a connection, replacing any previous binding.
func (d *DemuxTable[V]) Insert(k FourTuple, v V) {
	s := d.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Delete removes a tuple's binding if present.
func (d *DemuxTable[V]) Delete(k FourTuple) {
	s := d.shard(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Len returns the number of bound tuples.
func (d *DemuxTable[V]) Len() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// ForEach visits every binding, shard by shard, stopping early if fn
// returns false. Iteration order is NOT deterministic — this is for
// reset and metrics paths, never for protocol decisions.
func (d *DemuxTable[V]) ForEach(fn func(k FourTuple, v V) bool) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}
