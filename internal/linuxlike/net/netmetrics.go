package net

import "safelinux/internal/linuxlike/ktrace"

// tpWheelCascade fires per non-empty timer-wheel cascade on the legacy
// stack's wheel (a0=level, a1=timers moved).
var tpWheelCascade = ktrace.New("net:wheel_cascade")

// Histograms for the data-plane mechanisms this package owns. They
// record structural costs (counts, not nanoseconds), so they are not
// gated on the latency plane: a cascade happens at most once per 64
// jiffies per level and a poll batch once per drain, nowhere near the
// per-packet path.
var (
	// wheelCascadeHist: timers moved per non-empty timer-wheel cascade
	// (legacy stack's wheel).
	wheelCascadeHist = ktrace.NewHistogram()
	// pollBatchHist: events delivered per non-empty Poller.Poll drain.
	pollBatchHist = ktrace.NewHistogram()
)

// RegisterNetMetrics registers the net data-plane histograms with a
// metrics registry (wired from kernel.RegisterMetrics).
func RegisterNetMetrics(m *ktrace.Metrics) error {
	if err := m.RegisterHistogram("net", "wheel_cascade_moved", wheelCascadeHist); err != nil {
		return err
	}
	return m.RegisterHistogram("net", "poll_batch", pollBatchHist)
}
