package net

import (
	"sort"

	"safelinux/internal/linuxlike/kbase"
)

// LinkParams model one direction of a link. Beyond the original
// delay/loss/dup/jitter knobs, a link can corrupt packets in flight
// (CorruptProb) and serialize them through a finite bandwidth
// (BandwidthBPJ), so queueing delay grows with offered load the way a
// saturated NIC's does.
type LinkParams struct {
	Delay         uint64  // jiffies of propagation delay (min 1)
	LossProb      float64 // probability a packet is dropped
	DupProb       float64 // probability a packet is duplicated
	ReorderJitter uint64  // extra random delay 0..Jitter added per packet
	CorruptProb   float64 // probability one byte of the packet is flipped in flight
	BandwidthBPJ  uint64  // bytes per jiffy the link can carry (0 = infinite)
}

// inFlight is one packet scheduled for delivery.
type inFlight struct {
	at  uint64
	seq uint64 // tiebreaker for deterministic ordering
	dst Addr
	pkt Packet
}

// Sim is the deterministic network simulator: hosts, links, in-flight
// packets, partitions, and the clock.
type Sim struct {
	clock    *kbase.Clock
	rng      *kbase.Rng
	hosts    map[Addr]*Host
	hostList []*Host // sorted by address: the deterministic tick order
	links    map[[2]Addr]LinkParams
	cuts     map[[2]Addr]bool   // partitioned directions (src,dst)
	busy     map[[2]Addr]uint64 // per-direction link busy-until (bandwidth shaping)
	flight   []inFlight
	nextSeq  uint64

	// Step's reusable scratch: the steady path allocates nothing.
	due     []inFlight
	scratch []inFlight

	stats SimStats
}

// SimStats counts simulator activity.
type SimStats struct {
	Sent           uint64
	Delivered      uint64
	Dropped        uint64
	Duplicated     uint64
	Corrupted      uint64
	PartitionDrops uint64
}

// NewSim creates a simulator with a deterministic seed.
func NewSim(seed uint64) *Sim {
	return &Sim{
		clock: kbase.NewClock(),
		rng:   kbase.NewRng(seed),
		hosts: make(map[Addr]*Host),
		links: make(map[[2]Addr]LinkParams),
		cuts:  make(map[[2]Addr]bool),
		busy:  make(map[[2]Addr]uint64),
	}
}

// Clock returns the simulation clock.
func (s *Sim) Clock() *kbase.Clock { return s.clock }

// Stats returns a snapshot of simulator counters.
func (s *Sim) Stats() SimStats { return s.stats }

// AddHost creates a host with the given address.
func (s *Sim) AddHost(addr Addr) *Host {
	h := newHost(s, addr)
	s.hosts[addr] = h
	// Keep hostList sorted by address so Step never re-sorts.
	i := sort.Search(len(s.hostList), func(i int) bool {
		return s.hostList[i].addr >= addr
	})
	s.hostList = append(s.hostList, nil)
	copy(s.hostList[i+1:], s.hostList[i:])
	s.hostList[i] = h
	return h
}

// Link connects two hosts bidirectionally with the same parameters.
func (s *Sim) Link(a, b Addr, p LinkParams) {
	if p.Delay == 0 {
		p.Delay = 1
	}
	s.links[[2]Addr{a, b}] = p
	s.links[[2]Addr{b, a}] = p
}

// Partition cuts the link between a and b in both directions. Packets
// already in flight still deliver (they are on the wire); new sends
// fail with ENETUNREACH.
func (s *Sim) Partition(a, b Addr) {
	s.cuts[[2]Addr{a, b}] = true
	s.cuts[[2]Addr{b, a}] = true
}

// PartitionOneWay cuts only the a→b direction, modeling an
// asymmetric-route failure: b's packets still reach a.
func (s *Sim) PartitionOneWay(a, b Addr) {
	s.cuts[[2]Addr{a, b}] = true
}

// Heal restores both directions between a and b.
func (s *Sim) Heal(a, b Addr) {
	delete(s.cuts, [2]Addr{a, b})
	delete(s.cuts, [2]Addr{b, a})
}

// Partitioned reports whether the a→b direction is currently cut.
func (s *Sim) Partitioned(a, b Addr) bool { return s.cuts[[2]Addr{a, b}] }

// send schedules a packet from src to dst, applying the link model.
func (s *Sim) send(src, dst Addr, pkt Packet) kbase.Errno {
	dir := [2]Addr{src, dst}
	lp, ok := s.links[dir]
	if !ok {
		return kbase.ENODEV
	}
	if s.cuts[dir] {
		s.stats.PartitionDrops++
		return kbase.ENETUNREACH
	}
	s.stats.Sent++
	if s.rng.Bool(lp.LossProb) {
		s.stats.Dropped++
		return kbase.EOK // loss is silent, as on the wire
	}
	// Bandwidth shaping: a finite link serializes packets, so each one
	// waits for the wire to drain before its propagation delay starts.
	now := s.clock.Now()
	var txDone uint64
	if lp.BandwidthBPJ > 0 {
		txTime := (uint64(len(pkt)) + lp.BandwidthBPJ - 1) / lp.BandwidthBPJ
		if txTime == 0 {
			txTime = 1
		}
		start := now
		if s.busy[dir] > start {
			start = s.busy[dir]
		}
		txDone = start + txTime
		s.busy[dir] = txDone
	} else {
		txDone = now
	}
	deliver := func() {
		delay := lp.Delay
		if lp.ReorderJitter > 0 {
			delay += uint64(s.rng.Intn(int(lp.ReorderJitter) + 1))
		}
		s.nextSeq++
		cp := make(Packet, len(pkt))
		copy(cp, pkt)
		if s.rng.Bool(lp.CorruptProb) && len(cp) > 0 {
			// An adversarial or faulty link flips one byte somewhere in
			// the packet — header, length field, or payload.
			s.stats.Corrupted++
			cp[s.rng.Intn(len(cp))] ^= byte(1 << uint(s.rng.Intn(8)))
		}
		s.flight = append(s.flight, inFlight{
			at: txDone + delay, seq: s.nextSeq, dst: dst, pkt: cp,
		})
	}
	deliver()
	if s.rng.Bool(lp.DupProb) {
		s.stats.Duplicated++
		deliver()
	}
	return kbase.EOK
}

// Step advances the clock one jiffy, delivers due packets in
// deterministic order, and ticks every host's timers. With nothing on
// the wire and all connections idle, a step allocates nothing.
func (s *Sim) Step() {
	now := s.clock.Advance(1)
	if len(s.flight) > 0 {
		due := s.due[:0]
		rest := s.scratch[:0]
		for _, f := range s.flight {
			if f.at <= now {
				due = append(due, f)
			} else {
				rest = append(rest, f)
			}
		}
		// Swap the backing arrays so next Step reuses this one.
		s.due, s.scratch, s.flight = due, s.flight[:0], rest
		if len(due) > 1 {
			sort.Slice(due, func(i, j int) bool {
				if due[i].at != due[j].at {
					return due[i].at < due[j].at
				}
				return due[i].seq < due[j].seq
			})
		}
		for i, f := range due {
			if h, ok := s.hosts[f.dst]; ok {
				s.stats.Delivered++
				h.receive(f.pkt)
			}
			due[i].pkt = nil // drop the packet reference for the GC
		}
	}
	// Deterministic host tick order (hostList is sorted by address).
	for _, h := range s.hostList {
		h.tick(now)
	}
}

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// RunUntil steps until cond returns true or limit steps elapse. It
// reports whether cond was met.
func (s *Sim) RunUntil(cond func() bool, limit int) bool {
	for i := 0; i < limit; i++ {
		if cond() {
			return true
		}
		s.Step()
	}
	return cond()
}

// InFlight returns the number of packets currently on the wire.
func (s *Sim) InFlight() int { return len(s.flight) }
