package net

import (
	"sort"

	"safelinux/internal/linuxlike/kbase"
)

// LinkParams model one direction of a link.
type LinkParams struct {
	Delay         uint64  // jiffies of propagation delay (min 1)
	LossProb      float64 // probability a packet is dropped
	DupProb       float64 // probability a packet is duplicated
	ReorderJitter uint64  // extra random delay 0..Jitter added per packet
}

// inFlight is one packet scheduled for delivery.
type inFlight struct {
	at  uint64
	seq uint64 // tiebreaker for deterministic ordering
	dst Addr
	pkt Packet
}

// Sim is the deterministic network simulator: hosts, links, in-flight
// packets, and the clock.
type Sim struct {
	clock   *kbase.Clock
	rng     *kbase.Rng
	hosts   map[Addr]*Host
	links   map[[2]Addr]LinkParams
	flight  []inFlight
	nextSeq uint64

	stats SimStats
}

// SimStats counts simulator activity.
type SimStats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
}

// NewSim creates a simulator with a deterministic seed.
func NewSim(seed uint64) *Sim {
	return &Sim{
		clock: kbase.NewClock(),
		rng:   kbase.NewRng(seed),
		hosts: make(map[Addr]*Host),
		links: make(map[[2]Addr]LinkParams),
	}
}

// Clock returns the simulation clock.
func (s *Sim) Clock() *kbase.Clock { return s.clock }

// Stats returns a snapshot of simulator counters.
func (s *Sim) Stats() SimStats { return s.stats }

// AddHost creates a host with the given address.
func (s *Sim) AddHost(addr Addr) *Host {
	h := newHost(s, addr)
	s.hosts[addr] = h
	return h
}

// Link connects two hosts bidirectionally with the same parameters.
func (s *Sim) Link(a, b Addr, p LinkParams) {
	if p.Delay == 0 {
		p.Delay = 1
	}
	s.links[[2]Addr{a, b}] = p
	s.links[[2]Addr{b, a}] = p
}

// send schedules a packet from src to dst, applying the link model.
func (s *Sim) send(src, dst Addr, pkt Packet) kbase.Errno {
	lp, ok := s.links[[2]Addr{src, dst}]
	if !ok {
		return kbase.ENODEV
	}
	s.stats.Sent++
	if s.rng.Bool(lp.LossProb) {
		s.stats.Dropped++
		return kbase.EOK // loss is silent, as on the wire
	}
	deliver := func() {
		delay := lp.Delay
		if lp.ReorderJitter > 0 {
			delay += uint64(s.rng.Intn(int(lp.ReorderJitter) + 1))
		}
		s.nextSeq++
		cp := make(Packet, len(pkt))
		copy(cp, pkt)
		s.flight = append(s.flight, inFlight{
			at: s.clock.Now() + delay, seq: s.nextSeq, dst: dst, pkt: cp,
		})
	}
	deliver()
	if s.rng.Bool(lp.DupProb) {
		s.stats.Duplicated++
		deliver()
	}
	return kbase.EOK
}

// Step advances the clock one jiffy, delivers due packets in
// deterministic order, and ticks every host's timers.
func (s *Sim) Step() {
	now := s.clock.Advance(1)
	var due, rest []inFlight
	for _, f := range s.flight {
		if f.at <= now {
			due = append(due, f)
		} else {
			rest = append(rest, f)
		}
	}
	s.flight = rest
	sort.Slice(due, func(i, j int) bool {
		if due[i].at != due[j].at {
			return due[i].at < due[j].at
		}
		return due[i].seq < due[j].seq
	})
	for _, f := range due {
		if h, ok := s.hosts[f.dst]; ok {
			s.stats.Delivered++
			h.receive(f.pkt)
		}
	}
	// Deterministic host tick order.
	addrs := make([]Addr, 0, len(s.hosts))
	for a := range s.hosts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		s.hosts[a].tick(now)
	}
}

// Run advances n steps.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// RunUntil steps until cond returns true or limit steps elapse. It
// reports whether cond was met.
func (s *Sim) RunUntil(cond func() bool, limit int) bool {
	for i := 0; i < limit; i++ {
		if cond() {
			return true
		}
		s.Step()
	}
	return cond()
}

// InFlight returns the number of packets currently on the wire.
func (s *Sim) InFlight() int { return len(s.flight) }
