package net

import (
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/ktrace"
)

// Tracepoints for the legacy TCP-lite path (catalog in DESIGN.md).
var (
	tpTCPSend    = ktrace.New("net:tcp_send")   // a0=bytes queued, a1=local port
	tpTCPRecv    = ktrace.New("net:tcp_recv")   // a0=bytes drained, a1=local port
	tpTCPTxErr   = ktrace.New("net:tx_err")     // a0=errno, a1=local port
	tpTCPRetrans = ktrace.New("net:retransmit") // a0=seq, a1=local port
)

// Legacy TCP-lite. The transmission control block (TCB) is attached
// to the generic Socket through the untyped Private field, and —
// reproducing the paper's §4.1 observation — generic socket code
// reaches into it directly.

// TCP tuning constants.
const (
	MSS             = 512  // max segment payload
	RTOJiffies      = 16   // the legacy fixed RTO (FixedRTO tuning)
	InitialRTO      = 32   // conservative pre-sample RTO; the estimator adapts down
	MinRTO          = 4    // adaptive RTO floor
	MaxRTO          = 256  // adaptive RTO / backoff ceiling
	MaxRetries      = 12   // retransmissions before reset
	SendWindowSeg   = 8    // max unacked segments
	DefaultRecvWnd  = 4096 // default advertised receive window (bytes)
	TimeWaitJiffies = 128  // 2MSL in simulator jiffies
	maxReasmSegs    = 32   // out-of-order reassembly queue bound
)

// Mod-2^32 sequence comparisons, as RFC 793 arithmetic requires: a
// reordered ACK from before a wrap must still compare "older".
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }

// TCPState is a TCB connection state.
type TCPState uint8

// TCP connection states.
const (
	StateClosed TCPState = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateClosing
	StateTimeWait
)

var tcpStateNames = map[TCPState]string{
	StateClosed: "Closed", StateListen: "Listen", StateSynSent: "SynSent",
	StateSynRcvd: "SynRcvd", StateEstablished: "Established",
	StateFinWait1: "FinWait1", StateFinWait2: "FinWait2",
	StateCloseWait: "CloseWait", StateLastAck: "LastAck",
	StateClosing: "Closing", StateTimeWait: "TimeWait",
}

func (s TCPState) String() string { return tcpStateNames[s] }

// rttEstimator is the Jacobson/Karvels estimator in the kernel's
// scaled-integer form: srtt8 holds srtt<<3 and rttvar4 holds
// rttvar<<2, so RTO = srtt + 4*rttvar = srtt8>>3 + rttvar4.
type rttEstimator struct {
	srtt8   int64
	rttvar4 int64
	init    bool
}

func (e *rttEstimator) sample(m int64) {
	if m < 1 {
		m = 1
	}
	if !e.init {
		e.init = true
		e.srtt8 = m << 3
		e.rttvar4 = m << 1
		return
	}
	err := m - e.srtt8>>3
	e.srtt8 += err
	if err < 0 {
		err = -err
	}
	e.rttvar4 += err - e.rttvar4>>2
}

func (e *rttEstimator) rto() uint64 {
	if !e.init {
		// No sample yet: start high and adapt down, as Linux's 1s
		// initial RTO does. Starting below the path RTT would trip
		// Karn's deadlock: every segment retransmits spuriously, so
		// no segment is ever cleanly sampled.
		return InitialRTO
	}
	r := e.srtt8>>3 + e.rttvar4
	if r < MinRTO {
		r = MinRTO
	}
	if r > MaxRTO {
		r = MaxRTO
	}
	return uint64(r)
}

// unackedSeg is one transmitted-but-unacknowledged segment.
type unackedSeg struct {
	seq      uint32
	flags    byte
	payload  []byte
	deadline uint64
	sentAt   uint64 // first-transmission time, for RTT sampling
	retries  int
}

// TCB is the per-connection transmission control block.
type TCB struct {
	sock  *Socket // back pointer to the generic socket
	State TCPState

	// Send side.
	iss       uint32
	sendNext  uint32
	sendBuf   []byte // accepted but not yet segmented
	unacked   []unackedSeg
	inFlight  int    // unacked payload bytes
	peerWnd   uint32 // peer's last advertised receive window
	probeAt   uint64 // earliest time for the next zero-window probe
	finQueued bool
	finSent   bool

	// Receive side.
	recvWnd    int // our receive window (bytes)
	rcvNext    uint32
	recvBuf    []byte
	reasm      []tcpSegment // out-of-order segments awaiting rcvNext
	reasmBytes int
	peerFIN    bool
	finPending bool   // FIN seen beyond rcvNext, waiting on reassembly
	finSeq     uint32 // sequence of the pending FIN

	// Retransmission.
	rtt      rttEstimator
	fixedRTO bool // tuning: disable the estimator (pre-hardening behavior)
	lastAck  uint32
	dupAcks  int

	// Close path.
	timeWaitAt uint64

	// Timer plane: one intrusive wheel timer per connection, armed at
	// the earliest of the retransmission deadlines, the zero-window
	// probe time, and TIME_WAIT expiry. An idle established connection
	// has no deadline and sits in no wheel slot, which is what makes a
	// million idle connections free per tick.
	timer  kbase.WheelTimer[*TCB]
	reaped bool // already on the host's dead list

	// Diagnostics.
	Retransmits   uint64
	TxErrors      uint64
	ZeroWndProbes uint64
	ResetErr      kbase.Errno // typed reason the connection died, if it did
	ResetReason   string
}

// newTCB creates a TCB in the given state, honoring host tuning.
func newTCB(s *Socket, st TCPState) *TCB {
	t := &TCB{sock: s, State: st, recvWnd: DefaultRecvWnd}
	t.timer.Owner = t
	if s.host != nil {
		t.fixedRTO = s.host.tcpTuning.FixedRTO
		if s.host.tcpTuning.RecvWindow > 0 {
			t.recvWnd = s.host.tcpTuning.RecvWindow
		}
	}
	return t
}

// nextDeadline computes the earliest jiffy at which this connection
// needs its timer to fire (0 = no deadline; the timer stays unarmed).
func (t *TCB) nextDeadline() uint64 {
	switch t.State {
	case StateClosed, StateListen:
		return 0
	case StateTimeWait:
		return t.timeWaitAt
	}
	var d uint64
	for i := range t.unacked {
		if d == 0 || t.unacked[i].deadline < d {
			d = t.unacked[i].deadline
		}
	}
	if t.canSendData() && len(t.sendBuf) > 0 && len(t.unacked) == 0 && t.peerWnd == 0 {
		// Zero-window probe pending: probeAt may be in the past (the
		// wheel clamps to the next jiffy, matching the old per-jiffy
		// "now >= probeAt" check).
		p := t.probeAt
		if p == 0 {
			p = 1
		}
		if d == 0 || p < d {
			d = p
		}
	}
	return d
}

// rearm synchronizes the wheel with the connection's current earliest
// deadline. Called at the end of every event that can move a deadline
// (inbound segment, send, close, timer fire); a closed connection is
// handed to the host's dead list instead.
func (t *TCB) rearm() {
	h := t.sock.host
	if h == nil {
		return
	}
	if t.State == StateClosed {
		h.wheel.Cancel(&t.timer)
		h.reapLater(t.sock)
		return
	}
	if d := t.nextDeadline(); d == 0 {
		h.wheel.Cancel(&t.timer)
	} else {
		h.wheel.Arm(&t.timer, d)
	}
}

// pollWake pushes the socket's current readiness level to its poller,
// if watched. Cheap no-op otherwise.
func (t *TCB) pollWake() {
	if s := t.sock; s != nil && s.Watched() {
		s.PollWake(s.PollReady())
	}
}

// rto returns the current retransmission timeout.
func (t *TCB) rto() uint64 {
	if t.fixedRTO {
		return RTOJiffies
	}
	return t.rtt.rto()
}

// advertiseWnd computes the receive window to put on the wire: what
// remains of recvWnd after buffered in-order and reassembly bytes.
func (t *TCB) advertiseWnd() uint16 {
	w := t.recvWnd - len(t.recvBuf) - t.reasmBytes
	if w < 0 {
		w = 0
	}
	if w > 0xFFFF {
		w = 0xFFFF
	}
	return uint16(w)
}

// transmit sends a segment now and, if it consumes sequence space,
// tracks it for retransmission. Link errors (no route, partition) are
// surfaced through stats and the net:tx_err tracepoint instead of
// being silently dropped; the segment stays tracked, so the
// retransmission timer retries it and eventually resets the
// connection if the outage persists.
func (t *TCB) transmit(flags byte, seq uint32, payload []byte, track bool) {
	seg := tcpSegment{
		SrcPort: t.sock.LocalPort,
		DstPort: t.sock.RemotePort,
		Seq:     seq,
		Ack:     t.rcvNext,
		Flags:   flags,
		Wnd:     t.advertiseWnd(),
		Payload: payload,
	}
	host := t.sock.host
	err := host.sim.send(host.addr, t.sock.RemoteAddr,
		MakeIP(host.addr, t.sock.RemoteAddr, ProtoTCP, seg.marshal()))
	if err != kbase.EOK {
		t.TxErrors++
		host.stats.TxErrors++
		tpTCPTxErr.Emit(0, uint64(err), uint64(t.sock.LocalPort))
	}
	if track {
		now := host.sim.clock.Now()
		t.unacked = append(t.unacked, unackedSeg{
			seq: seq, flags: flags, payload: payload,
			deadline: now + t.rto(), sentAt: now,
		})
		t.inFlight += len(payload)
	}
}

// sendAck emits a pure ACK for rcvNext with the current window.
func (t *TCB) sendAck() { t.transmit(FlagACK, t.sendNext, nil, false) }

// connect starts the three-way handshake.
func (t *TCB) connect() {
	t.State = StateSynSent
	t.transmit(FlagSYN, t.iss, nil, true)
	t.sendNext = t.iss + 1
	t.rearm()
}

// seqLen is the sequence space a segment consumes.
func seqLen(flags byte, payload []byte) uint32 {
	n := uint32(len(payload))
	if flags&FlagSYN != 0 {
		n++
	}
	if flags&FlagFIN != 0 {
		n++
	}
	return n
}

// handle processes one inbound segment, then re-syncs the wheel timer
// and readiness plane with whatever the segment changed.
func (t *TCB) handle(seg tcpSegment) {
	t.handleSeg(seg)
	t.rearm()
	t.pollWake()
}

func (t *TCB) handleSeg(seg tcpSegment) {
	now := t.sock.host.sim.clock.Now()
	if seg.Flags&FlagRST != 0 {
		t.State = StateClosed
		t.ResetErr = kbase.ECONNRESET
		t.ResetReason = "peer reset"
		return
	}
	// Window update: believe the advertisement on any segment that is
	// not an old reordered ACK.
	if seg.Flags&FlagACK != 0 && !seqLT(seg.Ack, t.lastAck) {
		t.peerWnd = uint32(seg.Wnd)
	}
	switch t.State {
	case StateSynSent:
		if seg.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && seg.Ack == t.sendNext {
			t.rcvNext = seg.Seq + 1
			t.ackAdvance(seg.Ack)
			t.State = StateEstablished
			t.sendAck()
			t.pump()
		}
	case StateSynRcvd:
		if seg.Flags&FlagACK != 0 && seg.Ack == t.sendNext {
			t.ackAdvance(seg.Ack)
			t.State = StateEstablished
			t.sock.host.promote(t.sock)
			// Process any piggybacked data, then drain anything queued
			// via tcbSend before establishment — without the pump the
			// pre-accept bytes sat unsent until an unrelated event.
			t.handleData(seg)
			t.progressClose()
			t.pump()
		}
	case StateTimeWait:
		// The peer retransmitted its FIN: our final ACK was lost.
		// Re-ACK and restart 2MSL.
		if seg.Flags&FlagFIN != 0 {
			t.sendAck()
			t.timeWaitAt = now + TimeWaitJiffies
		}
	case StateEstablished, StateFinWait1, StateFinWait2, StateCloseWait,
		StateLastAck, StateClosing:
		if seg.Flags&FlagSYN != 0 {
			// Duplicate or retransmitted SYN in a synchronized
			// state: the peer missed our ACK; re-send it.
			t.sendAck()
			return
		}
		if seg.Flags&FlagACK != 0 {
			t.ackAdvance(seg.Ack)
		}
		t.handleData(seg)
		t.progressClose()
		t.pump()
	}
}

// handleData accepts payload and FIN. In-order payload is delivered
// (and drains the reassembly queue); out-of-order payload is queued
// for reassembly; duplicates are dropped. Every segment that carried
// payload or FIN is acknowledged — in-order advancing the ACK,
// anything else re-ACKing rcvNext so the sender sees duplicate ACKs
// and can fast-retransmit the hole.
func (t *TCB) handleData(seg tcpSegment) {
	now := t.sock.host.sim.clock.Now()
	if len(seg.Payload) > 0 {
		end := seg.Seq + uint32(len(seg.Payload))
		switch {
		case seg.Seq == t.rcvNext:
			// In order. Accepted even when it overruns the advertised
			// window (the sender's zero-window probes land here);
			// flow control is enforced by honest advertisements, not
			// by discarding delivered bytes.
			t.recvBuf = append(t.recvBuf, seg.Payload...)
			t.rcvNext = end
			t.drainReasm()
		case seqLT(seg.Seq, t.rcvNext) && seqGT(end, t.rcvNext):
			// Partial overlap: accept the unseen tail.
			t.recvBuf = append(t.recvBuf, seg.Payload[t.rcvNext-seg.Seq:]...)
			t.rcvNext = end
			t.drainReasm()
		case seqGT(seg.Seq, t.rcvNext):
			t.enqueueReasm(seg)
		}
		// Entirely old data: fall through to the re-ACK.
	}
	if seg.Flags&FlagFIN != 0 && !t.peerFIN {
		finSeq := seg.Seq + uint32(len(seg.Payload))
		if finSeq == t.rcvNext {
			t.processFIN(now)
		} else if seqGT(finSeq, t.rcvNext) {
			// FIN beyond a hole: remember it until reassembly fills in.
			t.finPending = true
			t.finSeq = finSeq
		}
	}
	if len(seg.Payload) > 0 || seg.Flags&FlagFIN != 0 {
		t.sendAck()
	}
}

// enqueueReasm inserts an out-of-order segment into the bounded
// reassembly queue, deduplicating by sequence number.
func (t *TCB) enqueueReasm(seg tcpSegment) {
	for _, r := range t.reasm {
		if r.Seq == seg.Seq {
			return
		}
	}
	if len(t.reasm) >= maxReasmSegs {
		return // queue full: drop, the retransmission will return
	}
	i := 0
	for i < len(t.reasm) && seqLT(t.reasm[i].Seq, seg.Seq) {
		i++
	}
	t.reasm = append(t.reasm, tcpSegment{})
	copy(t.reasm[i+1:], t.reasm[i:])
	t.reasm[i] = seg
	t.reasmBytes += len(seg.Payload)
}

// drainReasm moves now-in-order segments from the reassembly queue to
// the receive buffer and applies a pending FIN once it lines up.
func (t *TCB) drainReasm() {
	for changed := true; changed; {
		changed = false
		kept := t.reasm[:0]
		for _, r := range t.reasm {
			end := r.Seq + uint32(len(r.Payload))
			switch {
			case !seqGT(end, t.rcvNext):
				// Entirely old: drop.
				t.reasmBytes -= len(r.Payload)
			case !seqGT(r.Seq, t.rcvNext):
				// Overlaps rcvNext: consume the unseen part.
				t.recvBuf = append(t.recvBuf, r.Payload[t.rcvNext-r.Seq:]...)
				t.rcvNext = end
				t.reasmBytes -= len(r.Payload)
				changed = true
			default:
				kept = append(kept, r)
			}
		}
		t.reasm = kept
	}
	if t.finPending && !t.peerFIN && t.finSeq == t.rcvNext {
		t.processFIN(t.sock.host.sim.clock.Now())
	}
}

// processFIN consumes the peer's FIN at rcvNext and moves the close
// state machine.
func (t *TCB) processFIN(now uint64) {
	t.rcvNext++
	t.peerFIN = true
	t.finPending = false
	switch t.State {
	case StateEstablished, StateSynRcvd:
		t.State = StateCloseWait
	case StateFinWait1:
		// Simultaneous close: both FINs crossed, ours not yet acked.
		t.State = StateClosing
	case StateFinWait2:
		t.enterTimeWait(now)
	}
}

// enterTimeWait starts the 2MSL quarantine that absorbs a lost final
// ACK: the peer's retransmitted FIN finds us still here to re-ACK.
func (t *TCB) enterTimeWait(now uint64) {
	t.State = StateTimeWait
	t.timeWaitAt = now + TimeWaitJiffies
}

// ackAdvance drops acknowledged segments, samples RTT per Karn's rule
// (never from a retransmitted segment), re-arms only the head
// segment's timer on progress, and fast-retransmits after three
// duplicate ACKs. Old reordered ACKs (mod-2^32 behind lastAck) are
// ignored so they cannot regress lastAck and corrupt the
// duplicate-ACK count.
func (t *TCB) ackAdvance(ack uint32) {
	if seqLT(ack, t.lastAck) {
		return // reordered old ACK: ignore entirely
	}
	now := t.sock.host.sim.clock.Now()
	kept := t.unacked[:0]
	inFlight := 0
	progressed := false
	for _, u := range t.unacked {
		if !seqGT(u.seq+seqLen(u.flags, u.payload), ack) {
			if u.flags&FlagFIN != 0 {
				t.finAcked(now)
			}
			if u.retries == 0 && !t.fixedRTO {
				t.rtt.sample(int64(now - u.sentAt))
			}
			progressed = true
			continue
		}
		kept = append(kept, u)
		inFlight += len(u.payload)
	}
	t.unacked = kept
	t.inFlight = inFlight
	switch {
	case progressed:
		t.dupAcks = 0
		// Re-arm the clock on the new head only — restarting every
		// outstanding timer on each ACK (the old behavior) meant a
		// steadily-acking peer could keep a lost tail segment's timer
		// from ever firing.
		if len(t.unacked) > 0 {
			t.unacked[0].deadline = now + t.rto()
		}
	case ack == t.lastAck && len(t.unacked) > 0:
		t.dupAcks++
		if t.dupAcks >= 3 {
			t.dupAcks = 0
			t.retransmitSeg(&t.unacked[0], now)
		}
	}
	if seqGT(ack, t.lastAck) {
		t.lastAck = ack
	}
}

// retransmitSeg resends one tracked segment and re-arms its timer
// with capped exponential backoff.
func (t *TCB) retransmitSeg(u *unackedSeg, now uint64) {
	if u.retries < MaxRetries {
		u.retries++
	}
	shift := uint(u.retries)
	if shift > 5 {
		shift = 5
	}
	backoff := t.rto() << shift
	if backoff > MaxRTO {
		backoff = MaxRTO
	}
	u.deadline = now + backoff
	t.Retransmits++
	tpTCPRetrans.Emit(0, uint64(u.seq), uint64(t.sock.LocalPort))
	seg := tcpSegment{
		SrcPort: t.sock.LocalPort, DstPort: t.sock.RemotePort,
		Seq: u.seq, Ack: t.rcvNext, Flags: u.flags,
		Wnd: t.advertiseWnd(), Payload: u.payload,
	}
	host := t.sock.host
	err := host.sim.send(host.addr, t.sock.RemoteAddr,
		MakeIP(host.addr, t.sock.RemoteAddr, ProtoTCP, seg.marshal()))
	if err != kbase.EOK {
		t.TxErrors++
		host.stats.TxErrors++
		tpTCPTxErr.Emit(0, uint64(err), uint64(t.sock.LocalPort))
	}
}

// finAcked handles our FIN being acknowledged.
func (t *TCB) finAcked(now uint64) {
	switch t.State {
	case StateFinWait1:
		t.State = StateFinWait2
	case StateClosing:
		t.enterTimeWait(now)
	case StateLastAck:
		t.State = StateClosed
	}
}

// progressClose emits a queued FIN once the send buffer drains.
func (t *TCB) progressClose() {
	if t.finQueued && !t.finSent && len(t.sendBuf) == 0 {
		t.transmit(FlagFIN|FlagACK, t.sendNext, nil, true)
		t.sendNext++
		t.finSent = true
	}
}

// canSendData reports whether the connection may still emit payload:
// established, or closing with our FIN not yet on the wire (the FIN
// waits for the send buffer to drain).
func (t *TCB) canSendData() bool {
	switch t.State {
	case StateEstablished, StateCloseWait:
		return true
	case StateFinWait1, StateLastAck, StateClosing:
		return !t.finSent
	}
	return false
}

// pump segments the send buffer up to both the segment window and the
// peer's advertised byte window.
func (t *TCB) pump() {
	if !t.canSendData() {
		return
	}
	for len(t.sendBuf) > 0 && len(t.unacked) < SendWindowSeg {
		room := int(t.peerWnd) - t.inFlight
		if room <= 0 {
			break // closed window: tick() probes it open
		}
		n := min(len(t.sendBuf), MSS, room)
		chunk := make([]byte, n)
		copy(chunk, t.sendBuf[:n])
		t.sendBuf = t.sendBuf[n:]
		t.transmit(FlagACK, t.sendNext, chunk, true)
		t.sendNext += uint32(n)
	}
	t.progressClose()
}

// onTimer fires when the wheel reaches the connection's earliest
// deadline. It runs exactly the checks the old per-jiffy tick ran —
// TIME_WAIT expiry, retransmission (too many retries resets the
// connection with a typed ETIMEDOUT), zero-window probes, the send
// pump — but only at jiffies where a deadline actually expires, then
// re-arms for the next one.
func (t *TCB) onTimer(now uint64) {
	if t.State == StateTimeWait {
		if now >= t.timeWaitAt {
			t.State = StateClosed
		}
		t.rearm()
		t.pollWake()
		return
	}
	if t.State == StateClosed || t.State == StateListen {
		t.rearm()
		return
	}
	for i := range t.unacked {
		u := &t.unacked[i]
		if u.deadline > now {
			continue
		}
		if u.retries >= MaxRetries {
			t.State = StateClosed
			t.ResetErr = kbase.ETIMEDOUT
			t.ResetReason = "retransmission limit"
			t.transmit(FlagRST, t.sendNext, nil, false)
			t.rearm()
			t.pollWake()
			return
		}
		t.retransmitSeg(u, now)
	}
	// Zero-window probe: the peer advertised no room and everything
	// sent is acked, so nothing will ever trigger a window update.
	// Send one byte (tracked, so it retries like any segment); the
	// receiver soft-accepts it and its ACK carries the fresh window.
	if t.canSendData() && len(t.sendBuf) > 0 && len(t.unacked) == 0 &&
		t.peerWnd == 0 && now >= t.probeAt {
		chunk := []byte{t.sendBuf[0]}
		t.sendBuf = t.sendBuf[1:]
		t.ZeroWndProbes++
		t.transmit(FlagACK, t.sendNext, chunk, true)
		t.sendNext++
		t.probeAt = now + t.rto()
	}
	t.pump()
	t.rearm()
}

// tcbSend queues payload for transmission.
func (t *TCB) tcbSend(data []byte) kbase.Errno {
	switch t.State {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynRcvd:
		if t.finQueued {
			return kbase.EPIPE
		}
		t.sendBuf = append(t.sendBuf, data...)
		tpTCPSend.Emit(0, uint64(len(data)), uint64(t.sock.LocalPort))
		t.pump()
		t.rearm()
		return kbase.EOK
	default:
		if t.ResetErr != kbase.EOK {
			return t.ResetErr
		}
		return kbase.ENOTCONN
	}
}

// tcbRecv drains up to len(buf) received bytes. Buffered data always
// drains first; only then does a typed reset (ECONNRESET/ETIMEDOUT)
// or a clean EOF surface.
func (t *TCB) tcbRecv(buf []byte) (int, kbase.Errno) {
	if len(t.recvBuf) == 0 {
		if t.ResetErr != kbase.EOK {
			return 0, t.ResetErr
		}
		if t.peerFIN || t.State == StateClosed {
			return 0, kbase.EOK // clean EOF
		}
		return 0, kbase.EAGAIN
	}
	wndBefore := t.advertiseWnd()
	n := copy(buf, t.recvBuf)
	t.recvBuf = t.recvBuf[n:]
	tpTCPRecv.Emit(0, uint64(n), uint64(t.sock.LocalPort))
	// Window update: if the drain reopened a window the peer saw as
	// (nearly) closed, tell it now rather than waiting for its probe.
	if wndBefore < MSS && t.advertiseWnd() >= MSS &&
		t.State != StateClosed && t.State != StateListen && t.State != StateTimeWait {
		t.sendAck()
	}
	return n, kbase.EOK
}

// tcbClose initiates an orderly shutdown.
func (t *TCB) tcbClose() {
	switch t.State {
	case StateEstablished:
		t.State = StateFinWait1
		t.finQueued = true
		t.progressClose()
	case StateCloseWait:
		t.State = StateLastAck
		t.finQueued = true
		t.progressClose()
	case StateSynSent, StateSynRcvd, StateListen:
		t.State = StateClosed
	}
	t.rearm()
}
