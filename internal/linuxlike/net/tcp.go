package net

import (
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/ktrace"
)

// Tracepoints for the legacy TCP-lite path (catalog in DESIGN.md).
var (
	tpTCPSend = ktrace.New("net:tcp_send") // a0=bytes queued, a1=local port
	tpTCPRecv = ktrace.New("net:tcp_recv") // a0=bytes drained, a1=local port
)

// Legacy TCP-lite. The transmission control block (TCB) is attached
// to the generic Socket through the untyped Private field, and —
// reproducing the paper's §4.1 observation — generic socket code
// reaches into it directly.

// TCP tuning constants.
const (
	MSS           = 512 // max segment payload
	RTOJiffies    = 16  // retransmission timeout
	MaxRetries    = 12  // retransmissions before reset
	SendWindowSeg = 8   // max unacked segments
)

// TCPState is a TCB connection state.
type TCPState uint8

// TCP connection states (TIME_WAIT elided: the simulator has no
// delayed duplicates older than a connection).
const (
	StateClosed TCPState = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
)

var tcpStateNames = map[TCPState]string{
	StateClosed: "Closed", StateListen: "Listen", StateSynSent: "SynSent",
	StateSynRcvd: "SynRcvd", StateEstablished: "Established",
	StateFinWait1: "FinWait1", StateFinWait2: "FinWait2",
	StateCloseWait: "CloseWait", StateLastAck: "LastAck",
}

func (s TCPState) String() string { return tcpStateNames[s] }

// unackedSeg is one transmitted-but-unacknowledged segment.
type unackedSeg struct {
	seq      uint32
	flags    byte
	payload  []byte
	deadline uint64
	retries  int
}

// TCB is the per-connection transmission control block.
type TCB struct {
	sock  *Socket // back pointer to the generic socket
	State TCPState

	// Send side.
	iss       uint32
	sendNext  uint32
	sendBuf   []byte // accepted but not yet segmented
	unacked   []unackedSeg
	finQueued bool
	finSent   bool

	// Receive side.
	rcvNext uint32
	recvBuf []byte
	peerFIN bool

	// Fast retransmit.
	lastAck uint32
	dupAcks int

	// Diagnostics.
	Retransmits uint64
	ResetReason string
}

// newTCB creates a TCB in the given state.
func newTCB(s *Socket, st TCPState) *TCB {
	return &TCB{sock: s, State: st}
}

// transmit sends a segment now and, if it consumes sequence space,
// tracks it for retransmission.
func (t *TCB) transmit(flags byte, seq uint32, payload []byte, track bool) {
	seg := tcpSegment{
		SrcPort: t.sock.LocalPort,
		DstPort: t.sock.RemotePort,
		Seq:     seq,
		Ack:     t.rcvNext,
		Flags:   flags,
		Payload: payload,
	}
	host := t.sock.host
	host.sim.send(host.addr, t.sock.RemoteAddr, MakeIP(host.addr, t.sock.RemoteAddr, ProtoTCP, seg.marshal()))
	if track {
		t.unacked = append(t.unacked, unackedSeg{
			seq: seq, flags: flags, payload: payload,
			deadline: host.sim.clock.Now() + RTOJiffies,
		})
	}
}

// connect starts the three-way handshake.
func (t *TCB) connect() {
	t.State = StateSynSent
	t.transmit(FlagSYN, t.iss, nil, true)
	t.sendNext = t.iss + 1
}

// seqLen is the sequence space a segment consumes.
func seqLen(flags byte, payload []byte) uint32 {
	n := uint32(len(payload))
	if flags&FlagSYN != 0 {
		n++
	}
	if flags&FlagFIN != 0 {
		n++
	}
	return n
}

// handle processes one inbound segment.
func (t *TCB) handle(seg tcpSegment) {
	if seg.Flags&FlagRST != 0 {
		t.State = StateClosed
		t.ResetReason = "peer reset"
		return
	}
	switch t.State {
	case StateSynSent:
		if seg.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && seg.Ack == t.sendNext {
			t.rcvNext = seg.Seq + 1
			t.ackAdvance(seg.Ack)
			t.State = StateEstablished
			t.transmit(FlagACK, t.sendNext, nil, false)
			t.pump()
		}
	case StateSynRcvd:
		if seg.Flags&FlagACK != 0 && seg.Ack == t.sendNext {
			t.ackAdvance(seg.Ack)
			t.State = StateEstablished
			t.sock.host.promote(t.sock)
			// Fall through to process any piggybacked data.
			t.handleData(seg)
		}
	case StateEstablished, StateFinWait1, StateFinWait2, StateCloseWait, StateLastAck:
		if seg.Flags&FlagSYN != 0 {
			// Duplicate or retransmitted SYN in a synchronized
			// state: the peer missed our ACK; re-send it.
			t.transmit(FlagACK, t.sendNext, nil, false)
			return
		}
		if seg.Flags&FlagACK != 0 {
			t.ackAdvance(seg.Ack)
		}
		t.handleData(seg)
		t.progressClose()
		t.pump()
	}
}

// handleData accepts in-order payload and FIN.
func (t *TCB) handleData(seg tcpSegment) {
	advanced := false
	if len(seg.Payload) > 0 {
		if seg.Seq == t.rcvNext {
			t.recvBuf = append(t.recvBuf, seg.Payload...)
			t.rcvNext += uint32(len(seg.Payload))
			advanced = true
		}
		// Out-of-order or duplicate: re-ack rcvNext below.
	}
	if seg.Flags&FlagFIN != 0 && seg.Seq+uint32(len(seg.Payload)) == t.rcvNext {
		t.rcvNext++
		t.peerFIN = true
		advanced = true
		switch t.State {
		case StateEstablished:
			t.State = StateCloseWait
		case StateFinWait1:
			// Simultaneous close; our FIN unacked yet.
			t.State = StateLastAck
		case StateFinWait2:
			t.State = StateClosed
		}
	}
	if len(seg.Payload) > 0 || seg.Flags&FlagFIN != 0 || !advanced && len(seg.Payload) > 0 {
		t.transmit(FlagACK, t.sendNext, nil, false)
	}
}

// ackAdvance drops acknowledged segments, resets retransmission
// backoff on progress, and fast-retransmits the head segment after
// three duplicate ACKs.
func (t *TCB) ackAdvance(ack uint32) {
	kept := t.unacked[:0]
	progressed := false
	for _, u := range t.unacked {
		if u.seq+seqLen(u.flags, u.payload) <= ack {
			if u.flags&FlagFIN != 0 {
				t.finAcked()
			}
			progressed = true
			continue
		}
		kept = append(kept, u)
	}
	t.unacked = kept
	now := t.sock.host.sim.clock.Now()
	switch {
	case progressed:
		// Progress: restart the clock on the new head.
		t.dupAcks = 0
		for i := range t.unacked {
			t.unacked[i].retries = 0
			t.unacked[i].deadline = now + RTOJiffies
		}
	case ack == t.lastAck && len(t.unacked) > 0:
		t.dupAcks++
		if t.dupAcks >= 3 {
			t.dupAcks = 0
			t.retransmitSeg(&t.unacked[0], now)
		}
	}
	t.lastAck = ack
}

// retransmitSeg resends one tracked segment and re-arms its timer
// with capped exponential backoff.
func (t *TCB) retransmitSeg(u *unackedSeg, now uint64) {
	if u.retries < MaxRetries {
		u.retries++
	}
	shift := uint(u.retries)
	if shift > 5 {
		shift = 5
	}
	u.deadline = now + RTOJiffies<<shift
	t.Retransmits++
	seg := tcpSegment{
		SrcPort: t.sock.LocalPort, DstPort: t.sock.RemotePort,
		Seq: u.seq, Ack: t.rcvNext, Flags: u.flags, Payload: u.payload,
	}
	host := t.sock.host
	host.sim.send(host.addr, t.sock.RemoteAddr,
		MakeIP(host.addr, t.sock.RemoteAddr, ProtoTCP, seg.marshal()))
}

// finAcked handles our FIN being acknowledged.
func (t *TCB) finAcked() {
	switch t.State {
	case StateFinWait1:
		if t.peerFIN {
			t.State = StateClosed
		} else {
			t.State = StateFinWait2
		}
	case StateLastAck:
		t.State = StateClosed
	}
}

// progressClose emits a queued FIN once the send buffer drains.
func (t *TCB) progressClose() {
	if t.finQueued && !t.finSent && len(t.sendBuf) == 0 {
		t.transmit(FlagFIN|FlagACK, t.sendNext, nil, true)
		t.sendNext++
		t.finSent = true
	}
}

// pump segments the send buffer up to the window.
func (t *TCB) pump() {
	if t.State != StateEstablished && t.State != StateCloseWait {
		return
	}
	for len(t.sendBuf) > 0 && len(t.unacked) < SendWindowSeg {
		n := len(t.sendBuf)
		if n > MSS {
			n = MSS
		}
		chunk := make([]byte, n)
		copy(chunk, t.sendBuf[:n])
		t.sendBuf = t.sendBuf[n:]
		t.transmit(FlagACK, t.sendNext, chunk, true)
		t.sendNext += uint32(n)
	}
	t.progressClose()
}

// tick retransmits expired segments; too many retries resets the
// connection.
func (t *TCB) tick(now uint64) {
	for i := range t.unacked {
		u := &t.unacked[i]
		if u.deadline > now {
			continue
		}
		if u.retries >= MaxRetries {
			t.State = StateClosed
			t.ResetReason = "retransmission limit"
			t.transmit(FlagRST, t.sendNext, nil, false)
			return
		}
		t.retransmitSeg(u, now)
	}
	t.pump()
}

// tcbSend queues payload for transmission.
func (t *TCB) tcbSend(data []byte) kbase.Errno {
	switch t.State {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynRcvd:
		if t.finQueued {
			return kbase.EPIPE
		}
		t.sendBuf = append(t.sendBuf, data...)
		tpTCPSend.Emit(0, uint64(len(data)), uint64(t.sock.LocalPort))
		t.pump()
		return kbase.EOK
	default:
		return kbase.ENOTCONN
	}
}

// tcbRecv drains up to len(buf) received bytes.
func (t *TCB) tcbRecv(buf []byte) (int, kbase.Errno) {
	if len(t.recvBuf) == 0 {
		if t.peerFIN || t.State == StateClosed {
			return 0, kbase.EOK // clean EOF
		}
		return 0, kbase.EAGAIN
	}
	n := copy(buf, t.recvBuf)
	t.recvBuf = t.recvBuf[n:]
	tpTCPRecv.Emit(0, uint64(n), uint64(t.sock.LocalPort))
	return n, kbase.EOK
}

// tcbClose initiates an orderly shutdown.
func (t *TCB) tcbClose() {
	switch t.State {
	case StateEstablished:
		t.State = StateFinWait1
		t.finQueued = true
		t.progressClose()
	case StateCloseWait:
		t.State = StateLastAck
		t.finQueued = true
		t.progressClose()
	case StateSynSent, StateSynRcvd, StateListen:
		t.State = StateClosed
	}
}
