package blockdev

import (
	"bytes"
	"testing"
	"testing/quick"

	"safelinux/internal/linuxlike/kbase"
)

func testDev(blocks uint64) *Device {
	return New(Config{Blocks: blocks, BlockSize: 64, Rng: kbase.NewRng(7)})
}

func blockOf(d *Device, fill byte) []byte {
	b := make([]byte, d.BlockSize())
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestWriteReadThroughCache(t *testing.T) {
	d := testDev(8)
	want := blockOf(d, 0xAB)
	if e := d.Write(3, want); e != kbase.EOK {
		t.Fatalf("Write: %v", e)
	}
	got := make([]byte, d.BlockSize())
	if e := d.Read(3, got); e != kbase.EOK {
		t.Fatalf("Read: %v", e)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read-through-cache mismatch")
	}
	if d.PendingWrites() != 1 {
		t.Fatalf("PendingWrites = %d, want 1", d.PendingWrites())
	}
}

func TestFlushMakesDurable(t *testing.T) {
	d := testDev(8)
	want := blockOf(d, 0x11)
	d.Write(1, want)
	d.Flush()
	d.CrashApplyNone() // crash after flush must not lose the write
	got := make([]byte, d.BlockSize())
	d.Read(1, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("flushed write lost after crash")
	}
}

func TestCrashApplyNoneDropsUnflushed(t *testing.T) {
	d := testDev(8)
	d.Write(1, blockOf(d, 0x22))
	d.CrashApplyNone()
	got := make([]byte, d.BlockSize())
	d.Read(1, got)
	if !bytes.Equal(got, make([]byte, d.BlockSize())) {
		t.Fatalf("unflushed write survived CrashApplyNone")
	}
	if d.Stats().DroppedWrites != 1 {
		t.Fatalf("DroppedWrites = %d", d.Stats().DroppedWrites)
	}
}

func TestLastWriteWinsInCache(t *testing.T) {
	d := testDev(8)
	d.Write(2, blockOf(d, 0x01))
	d.Write(2, blockOf(d, 0x02))
	got := make([]byte, d.BlockSize())
	d.Read(2, got)
	if got[0] != 0x02 {
		t.Fatalf("cache served stale write: %#x", got[0])
	}
	d.Flush()
	d.Read(2, got)
	if got[0] != 0x02 {
		t.Fatalf("durable image has stale write: %#x", got[0])
	}
}

func TestBoundsAndSizeValidation(t *testing.T) {
	d := testDev(4)
	if e := d.Read(4, make([]byte, d.BlockSize())); e != kbase.EINVAL {
		t.Fatalf("out-of-range read: %v", e)
	}
	if e := d.Write(4, blockOf(d, 1)); e != kbase.EINVAL {
		t.Fatalf("out-of-range write: %v", e)
	}
	if e := d.Read(0, make([]byte, 3)); e != kbase.EINVAL {
		t.Fatalf("short-buffer read: %v", e)
	}
	if e := d.Write(0, make([]byte, 3)); e != kbase.EINVAL {
		t.Fatalf("short-buffer write: %v", e)
	}
}

func TestFaultInjection(t *testing.T) {
	d := testDev(4)
	d.FailNextReads(1)
	if e := d.Read(0, make([]byte, d.BlockSize())); e != kbase.EIO {
		t.Fatalf("injected read fault: %v", e)
	}
	if e := d.Read(0, make([]byte, d.BlockSize())); e != kbase.EOK {
		t.Fatalf("fault persisted: %v", e)
	}
	d.FailNextWrites(2)
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EIO {
		t.Fatalf("injected write fault: %v", e)
	}
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EIO {
		t.Fatalf("second injected write fault: %v", e)
	}
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EOK {
		t.Fatalf("write fault persisted: %v", e)
	}
}

func TestBadBlock(t *testing.T) {
	d := testDev(4)
	d.MarkBad(2)
	if e := d.Read(2, make([]byte, d.BlockSize())); e != kbase.EIO {
		t.Fatalf("bad block read: %v", e)
	}
	if e := d.Write(2, blockOf(d, 1)); e != kbase.EIO {
		t.Fatalf("bad block write: %v", e)
	}
	if e := d.Read(1, make([]byte, d.BlockSize())); e != kbase.EOK {
		t.Fatalf("neighbor of bad block: %v", e)
	}
}

func TestReadOnly(t *testing.T) {
	d := testDev(4)
	d.SetReadOnly(true)
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EROFS {
		t.Fatalf("read-only write: %v", e)
	}
	d.SetReadOnly(false)
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EOK {
		t.Fatalf("write after clearing read-only: %v", e)
	}
}

func TestCrashApplySubset(t *testing.T) {
	d := testDev(8)
	d.Write(0, blockOf(d, 0xA0))
	d.Write(1, blockOf(d, 0xA1))
	d.Write(2, blockOf(d, 0xA2))
	d.CrashApplySubset(map[int]bool{1: true})
	buf := make([]byte, d.BlockSize())
	d.Read(0, buf)
	if buf[0] != 0 {
		t.Fatalf("dropped write 0 applied")
	}
	d.Read(1, buf)
	if buf[0] != 0xA1 {
		t.Fatalf("kept write 1 missing")
	}
	d.Read(2, buf)
	if buf[0] != 0 {
		t.Fatalf("dropped write 2 applied")
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := testDev(4)
	d.Write(0, blockOf(d, 0x55))
	d.Flush()
	d.Write(1, blockOf(d, 0x66)) // pending at snapshot time
	snap := d.Snapshot()
	if snap.PendingCount() != 1 {
		t.Fatalf("snapshot pending = %d", snap.PendingCount())
	}

	d.Write(0, blockOf(d, 0x99))
	d.Flush()
	d.Restore(snap)

	buf := make([]byte, d.BlockSize())
	d.Read(0, buf)
	if buf[0] != 0x55 {
		t.Fatalf("durable state not restored: %#x", buf[0])
	}
	d.Read(1, buf)
	if buf[0] != 0x66 {
		t.Fatalf("pending write not restored: %#x", buf[0])
	}
	if d.PendingWrites() != 1 {
		t.Fatalf("restored pending = %d", d.PendingWrites())
	}
}

func TestLatencyModelAdvancesClock(t *testing.T) {
	clk := kbase.NewClock()
	d := New(Config{Blocks: 4, BlockSize: 32, ReadCost: 2, WriteCost: 5, FlushCost: 11, Clock: clk})
	d.Write(0, make([]byte, 32))
	d.Read(0, make([]byte, 32))
	d.Flush()
	if clk.Now() != 18 {
		t.Fatalf("clock = %d, want 18", clk.Now())
	}
}

func TestCrashDeterminism(t *testing.T) {
	run := func() []byte {
		d := New(Config{Blocks: 16, BlockSize: 32, Rng: kbase.NewRng(1234)})
		for i := uint64(0); i < 16; i++ {
			b := make([]byte, 32)
			b[0] = byte(i + 1)
			d.Write(i, b)
		}
		d.Crash()
		img := make([]byte, 0, 16)
		for i := uint64(0); i < 16; i++ {
			b := make([]byte, 32)
			d.Read(i, b)
			img = append(img, b[0])
		}
		return img
	}
	if !bytes.Equal(run(), run()) {
		t.Fatalf("crash outcome not deterministic under fixed seed")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New with zero capacity did not panic")
		}
	}()
	New(Config{})
}

// Property: durable state after write+flush equals what was written,
// for arbitrary data and block choice.
func TestWriteFlushReadProperty(t *testing.T) {
	d := testDev(32)
	f := func(blockRaw uint16, fill byte) bool {
		block := uint64(blockRaw % 32)
		data := blockOf(d, fill)
		if d.Write(block, data) != kbase.EOK {
			return false
		}
		if d.Flush() != kbase.EOK {
			return false
		}
		got := make([]byte, d.BlockSize())
		if d.Read(block, got) != kbase.EOK {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a crash never invents data — every durable block equals
// either its pre-crash durable content or some pending write to it
// (possibly torn: a prefix of the pending data over the old content).
func TestCrashNeverInventsDataProperty(t *testing.T) {
	f := func(seed uint64, fills []byte) bool {
		if len(fills) == 0 {
			return true
		}
		if len(fills) > 12 {
			fills = fills[:12]
		}
		d := New(Config{Blocks: 4, BlockSize: 16, Rng: kbase.NewRng(seed)})
		old := blockOf(d, 0x0F)
		d.Write(1, old)
		d.Flush()
		var writes [][]byte
		for _, fl := range fills {
			w := blockOf(d, fl)
			d.Write(1, w)
			writes = append(writes, w)
		}
		d.Crash()
		got := make([]byte, d.BlockSize())
		d.Read(1, got)
		// Tears can stack, so check fragment-wise: every torn-unit
		// fragment must match the old content or some pending write —
		// the device never invents bytes.
		candidates := append([][]byte{old}, writes...)
		unit := 16 / 8
		for off := 0; off < 16; off += unit {
			ok := false
			for _, c := range candidates {
				if bytes.Equal(got[off:off+unit], c[off:off+unit]) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
