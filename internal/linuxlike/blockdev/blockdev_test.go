package blockdev

import (
	"bytes"
	"testing"
	"testing/quick"

	"safelinux/internal/linuxlike/kbase"
)

func testDev(blocks uint64) *Device {
	return New(Config{Blocks: blocks, BlockSize: 64, Rng: kbase.NewRng(7)})
}

func blockOf(d *Device, fill byte) []byte {
	b := make([]byte, d.BlockSize())
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestWriteReadThroughCache(t *testing.T) {
	d := testDev(8)
	want := blockOf(d, 0xAB)
	if e := d.Write(3, want); e != kbase.EOK {
		t.Fatalf("Write: %v", e)
	}
	got := make([]byte, d.BlockSize())
	if e := d.Read(3, got); e != kbase.EOK {
		t.Fatalf("Read: %v", e)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read-through-cache mismatch")
	}
	if d.PendingWrites() != 1 {
		t.Fatalf("PendingWrites = %d, want 1", d.PendingWrites())
	}
}

func TestFlushMakesDurable(t *testing.T) {
	d := testDev(8)
	want := blockOf(d, 0x11)
	d.Write(1, want)
	d.Flush()
	d.CrashApplyNone() // crash after flush must not lose the write
	got := make([]byte, d.BlockSize())
	d.Read(1, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("flushed write lost after crash")
	}
}

func TestCrashApplyNoneDropsUnflushed(t *testing.T) {
	d := testDev(8)
	d.Write(1, blockOf(d, 0x22))
	d.CrashApplyNone()
	got := make([]byte, d.BlockSize())
	d.Read(1, got)
	if !bytes.Equal(got, make([]byte, d.BlockSize())) {
		t.Fatalf("unflushed write survived CrashApplyNone")
	}
	if d.Stats().DroppedWrites != 1 {
		t.Fatalf("DroppedWrites = %d", d.Stats().DroppedWrites)
	}
}

func TestLastWriteWinsInCache(t *testing.T) {
	d := testDev(8)
	d.Write(2, blockOf(d, 0x01))
	d.Write(2, blockOf(d, 0x02))
	got := make([]byte, d.BlockSize())
	d.Read(2, got)
	if got[0] != 0x02 {
		t.Fatalf("cache served stale write: %#x", got[0])
	}
	d.Flush()
	d.Read(2, got)
	if got[0] != 0x02 {
		t.Fatalf("durable image has stale write: %#x", got[0])
	}
}

func TestBoundsAndSizeValidation(t *testing.T) {
	d := testDev(4)
	if e := d.Read(4, make([]byte, d.BlockSize())); e != kbase.EINVAL {
		t.Fatalf("out-of-range read: %v", e)
	}
	if e := d.Write(4, blockOf(d, 1)); e != kbase.EINVAL {
		t.Fatalf("out-of-range write: %v", e)
	}
	if e := d.Read(0, make([]byte, 3)); e != kbase.EINVAL {
		t.Fatalf("short-buffer read: %v", e)
	}
	if e := d.Write(0, make([]byte, 3)); e != kbase.EINVAL {
		t.Fatalf("short-buffer write: %v", e)
	}
}

func TestFaultInjection(t *testing.T) {
	d := testDev(4)
	d.FailNextReads(1)
	if e := d.Read(0, make([]byte, d.BlockSize())); e != kbase.EIO {
		t.Fatalf("injected read fault: %v", e)
	}
	if e := d.Read(0, make([]byte, d.BlockSize())); e != kbase.EOK {
		t.Fatalf("fault persisted: %v", e)
	}
	d.FailNextWrites(2)
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EIO {
		t.Fatalf("injected write fault: %v", e)
	}
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EIO {
		t.Fatalf("second injected write fault: %v", e)
	}
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EOK {
		t.Fatalf("write fault persisted: %v", e)
	}
}

func TestBadBlock(t *testing.T) {
	d := testDev(4)
	d.MarkBad(2)
	if e := d.Read(2, make([]byte, d.BlockSize())); e != kbase.EIO {
		t.Fatalf("bad block read: %v", e)
	}
	if e := d.Write(2, blockOf(d, 1)); e != kbase.EIO {
		t.Fatalf("bad block write: %v", e)
	}
	if e := d.Read(1, make([]byte, d.BlockSize())); e != kbase.EOK {
		t.Fatalf("neighbor of bad block: %v", e)
	}
}

func TestReadOnly(t *testing.T) {
	d := testDev(4)
	d.SetReadOnly(true)
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EROFS {
		t.Fatalf("read-only write: %v", e)
	}
	d.SetReadOnly(false)
	if e := d.Write(0, blockOf(d, 1)); e != kbase.EOK {
		t.Fatalf("write after clearing read-only: %v", e)
	}
}

func TestCrashApplySubset(t *testing.T) {
	d := testDev(8)
	d.Write(0, blockOf(d, 0xA0))
	d.Write(1, blockOf(d, 0xA1))
	d.Write(2, blockOf(d, 0xA2))
	d.CrashApplySubset(map[int]bool{1: true})
	buf := make([]byte, d.BlockSize())
	d.Read(0, buf)
	if buf[0] != 0 {
		t.Fatalf("dropped write 0 applied")
	}
	d.Read(1, buf)
	if buf[0] != 0xA1 {
		t.Fatalf("kept write 1 missing")
	}
	d.Read(2, buf)
	if buf[0] != 0 {
		t.Fatalf("dropped write 2 applied")
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := testDev(4)
	d.Write(0, blockOf(d, 0x55))
	d.Flush()
	d.Write(1, blockOf(d, 0x66)) // pending at snapshot time
	snap := d.Snapshot()
	if snap.PendingCount() != 1 {
		t.Fatalf("snapshot pending = %d", snap.PendingCount())
	}

	d.Write(0, blockOf(d, 0x99))
	d.Flush()
	d.Restore(snap)

	buf := make([]byte, d.BlockSize())
	d.Read(0, buf)
	if buf[0] != 0x55 {
		t.Fatalf("durable state not restored: %#x", buf[0])
	}
	d.Read(1, buf)
	if buf[0] != 0x66 {
		t.Fatalf("pending write not restored: %#x", buf[0])
	}
	if d.PendingWrites() != 1 {
		t.Fatalf("restored pending = %d", d.PendingWrites())
	}
}

func TestLatencyModelAdvancesClock(t *testing.T) {
	clk := kbase.NewClock()
	d := New(Config{Blocks: 4, BlockSize: 32, ReadCost: 2, WriteCost: 5, FlushCost: 11, Clock: clk})
	d.Write(0, make([]byte, 32))
	d.Read(0, make([]byte, 32))
	d.Flush()
	if clk.Now() != 18 {
		t.Fatalf("clock = %d, want 18", clk.Now())
	}
}

func TestCrashDeterminism(t *testing.T) {
	run := func() []byte {
		d := New(Config{Blocks: 16, BlockSize: 32, Rng: kbase.NewRng(1234)})
		for i := uint64(0); i < 16; i++ {
			b := make([]byte, 32)
			b[0] = byte(i + 1)
			d.Write(i, b)
		}
		d.Crash()
		img := make([]byte, 0, 16)
		for i := uint64(0); i < 16; i++ {
			b := make([]byte, 32)
			d.Read(i, b)
			img = append(img, b[0])
		}
		return img
	}
	if !bytes.Equal(run(), run()) {
		t.Fatalf("crash outcome not deterministic under fixed seed")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New with zero capacity did not panic")
		}
	}()
	New(Config{})
}

// Property: durable state after write+flush equals what was written,
// for arbitrary data and block choice.
func TestWriteFlushReadProperty(t *testing.T) {
	d := testDev(32)
	f := func(blockRaw uint16, fill byte) bool {
		block := uint64(blockRaw % 32)
		data := blockOf(d, fill)
		if d.Write(block, data) != kbase.EOK {
			return false
		}
		if d.Flush() != kbase.EOK {
			return false
		}
		got := make([]byte, d.BlockSize())
		if d.Read(block, got) != kbase.EOK {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a crash never invents data — every durable block equals
// either its pre-crash durable content or some pending write to it
// (possibly torn: a prefix of the pending data over the old content).
func TestCrashNeverInventsDataProperty(t *testing.T) {
	f := func(seed uint64, fills []byte) bool {
		if len(fills) == 0 {
			return true
		}
		if len(fills) > 12 {
			fills = fills[:12]
		}
		d := New(Config{Blocks: 4, BlockSize: 16, Rng: kbase.NewRng(seed)})
		old := blockOf(d, 0x0F)
		d.Write(1, old)
		d.Flush()
		var writes [][]byte
		for _, fl := range fills {
			w := blockOf(d, fl)
			d.Write(1, w)
			writes = append(writes, w)
		}
		d.Crash()
		got := make([]byte, d.BlockSize())
		d.Read(1, got)
		// Tears can stack, so check fragment-wise: every torn-unit
		// fragment must match the old content or some pending write —
		// the device never invents bytes.
		candidates := append([][]byte{old}, writes...)
		unit := 16 / 8
		for off := 0; off < 16; off += unit {
			ok := false
			for _, c := range candidates {
				if bytes.Equal(got[off:off+unit], c[off:off+unit]) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Plug.Unplug error paths -------------------------------------------

// TestUnplugFaultOnNthWrite injects a write fault on the Nth queued
// block: earlier blocks must be applied, the faulted one reported at
// its call-order index, and later blocks applied — exactly as if the
// same sequence of plain Write calls had run.
func TestUnplugFaultOnNthWrite(t *testing.T) {
	d := testDev(32)
	const bad = 5
	d.MarkBad(bad)

	p := d.Plug()
	blocks := []uint64{1, 3, bad, 7, 9}
	for i, b := range blocks {
		if e := p.Write(b, blockOf(d, byte(0x10+i))); e != kbase.EOK {
			t.Fatalf("Plug.Write(%d): %v", b, e)
		}
	}
	results, first := p.Unplug()
	if first != kbase.EIO {
		t.Fatalf("Unplug first = %v, want EIO", first)
	}
	if len(results) != len(blocks) {
		t.Fatalf("Unplug returned %d results, want %d", len(results), len(blocks))
	}
	for i := range results {
		want := kbase.EOK
		if blocks[i] == bad {
			want = kbase.EIO
		}
		if results[i] != want {
			t.Errorf("results[%d] (block %d) = %v, want %v", i, blocks[i], results[i], want)
		}
	}
	// Only the four accepted writes are pending; the faulted one was
	// never submitted.
	if got := d.PendingWrites(); got != len(blocks)-1 {
		t.Fatalf("PendingWrites = %d, want %d", got, len(blocks)-1)
	}
	if e := d.Flush(); e != kbase.EOK {
		t.Fatalf("Flush: %v", e)
	}
	buf := make([]byte, d.BlockSize())
	for i, b := range blocks {
		if b == bad {
			continue
		}
		if e := d.Read(b, buf); e != kbase.EOK {
			t.Fatalf("Read(%d): %v", b, e)
		}
		if !bytes.Equal(buf, blockOf(d, byte(0x10+i))) {
			t.Errorf("block %d not applied after partial-failure unplug", b)
		}
	}
	// The bad block never received data.
	d.ctl.Lock()
	delete(d.badBlocks, bad)
	d.ctl.Unlock()
	if e := d.Read(bad, buf); e != kbase.EOK {
		t.Fatalf("Read(bad): %v", e)
	}
	if !bytes.Equal(buf, make([]byte, d.BlockSize())) {
		t.Fatal("faulted write reached the device")
	}
}

// TestUnplugFailNextWritesCountsPerQueuedWrite verifies the one-shot
// fault budget is consumed per queued write in call order, so
// FailNextWrites(n) fails exactly the first n writes of the batch.
func TestUnplugFailNextWritesCountsPerQueuedWrite(t *testing.T) {
	d := testDev(32)
	p := d.Plug()
	for i := uint64(0); i < 4; i++ {
		p.Write(i, blockOf(d, byte(i+1)))
	}
	d.FailNextWrites(2)
	results, first := p.Unplug()
	if first != kbase.EIO {
		t.Fatalf("first = %v, want EIO", first)
	}
	for i, want := range []kbase.Errno{kbase.EIO, kbase.EIO, kbase.EOK, kbase.EOK} {
		if results[i] != want {
			t.Errorf("results[%d] = %v, want %v", i, results[i], want)
		}
	}
	if got := d.PendingWrites(); got != 2 {
		t.Fatalf("PendingWrites = %d, want 2", got)
	}
	// The fault budget is exhausted: a plain write now succeeds.
	if e := d.Write(10, blockOf(d, 0xFF)); e != kbase.EOK {
		t.Fatalf("post-batch Write: %v", e)
	}
}

// TestUnplugReadOnlyFailsAll verifies EROFS is reported for every
// queued write and nothing is submitted.
func TestUnplugReadOnlyFailsAll(t *testing.T) {
	d := testDev(8)
	p := d.Plug()
	p.Write(1, blockOf(d, 0x01))
	p.WriteOwned(2, blockOf(d, 0x02))
	d.SetReadOnly(true)
	results, first := p.Unplug()
	if first != kbase.EROFS {
		t.Fatalf("first = %v, want EROFS", first)
	}
	for i, r := range results {
		if r != kbase.EROFS {
			t.Errorf("results[%d] = %v, want EROFS", i, r)
		}
	}
	if got := d.PendingWrites(); got != 0 {
		t.Fatalf("PendingWrites = %d, want 0", got)
	}
}

// TestUnplugReusableAfterPartialFailure verifies the plug resets after
// a partial failure and a subsequent batch on the same plug works.
func TestUnplugReusableAfterPartialFailure(t *testing.T) {
	d := testDev(32)
	d.MarkBad(2)
	p := d.Plug()
	p.Write(1, blockOf(d, 0x01))
	p.Write(2, blockOf(d, 0x02))
	if _, first := p.Unplug(); first != kbase.EIO {
		t.Fatalf("first unplug: %v, want EIO", first)
	}
	if p.Queued() != 0 {
		t.Fatalf("Queued = %d after Unplug, want 0", p.Queued())
	}
	p.Write(3, blockOf(d, 0x03))
	results, first := p.Unplug()
	if first != kbase.EOK || len(results) != 1 || results[0] != kbase.EOK {
		t.Fatalf("second unplug: results=%v first=%v", results, first)
	}
	if got := d.PendingWrites(); got != 2 {
		t.Fatalf("PendingWrites = %d, want 2", got)
	}
}

// TestWriteOwnedZeroCopy verifies the ownership-transfer write path:
// the device retains the caller's buffer without copying, so the
// durable image after Flush aliases the submitted slice.
func TestWriteOwnedZeroCopy(t *testing.T) {
	d := testDev(8)
	buf := blockOf(d, 0x5A)
	if e := d.WriteOwned(4, buf); e != kbase.EOK {
		t.Fatalf("WriteOwned: %v", e)
	}
	if e := d.Flush(); e != kbase.EOK {
		t.Fatalf("Flush: %v", e)
	}
	// The durable slot is the very slice the caller transferred: no
	// copy anywhere on the path (this aliasing is exactly why the
	// caller must not touch the buffer again).
	if &d.durable[4][0] != &buf[0] {
		t.Fatal("WriteOwned copied the buffer; ownership path must be zero-copy")
	}
	// Plug.WriteOwned likewise.
	buf2 := blockOf(d, 0xA5)
	p := d.Plug()
	if e := p.WriteOwned(5, buf2); e != kbase.EOK {
		t.Fatalf("Plug.WriteOwned: %v", e)
	}
	if _, first := p.Unplug(); first != kbase.EOK {
		t.Fatalf("Unplug: %v", first)
	}
	d.Flush()
	if &d.durable[5][0] != &buf2[0] {
		t.Fatal("Plug.WriteOwned copied the buffer")
	}
	// Write (the defensive wrapper) must still copy.
	buf3 := blockOf(d, 0x33)
	d.Write(6, buf3)
	d.Flush()
	if &d.durable[6][0] == &buf3[0] {
		t.Fatal("Write no longer copies; defensive path must not alias caller memory")
	}
}

// TestWriteOwnedValidation verifies WriteOwned applies the same
// validation and fault model as Write.
func TestWriteOwnedValidation(t *testing.T) {
	d := testDev(8)
	if e := d.WriteOwned(1, make([]byte, d.BlockSize()-1)); e != kbase.EINVAL {
		t.Fatalf("short buffer: %v, want EINVAL", e)
	}
	if e := d.WriteOwned(99, blockOf(d, 1)); e != kbase.EINVAL {
		t.Fatalf("out of range: %v, want EINVAL", e)
	}
	p := d.Plug()
	if e := p.WriteOwned(1, make([]byte, 1)); e != kbase.EINVAL {
		t.Fatalf("plug short buffer: %v, want EINVAL", e)
	}
	if e := p.WriteOwned(99, blockOf(d, 1)); e != kbase.EINVAL {
		t.Fatalf("plug out of range: %v, want EINVAL", e)
	}
	d.FailNextWrites(1)
	if e := d.WriteOwned(1, blockOf(d, 1)); e != kbase.EIO {
		t.Fatalf("fault model: %v, want EIO", e)
	}
}
