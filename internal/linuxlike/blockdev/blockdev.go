// Package blockdev simulates a block storage device for the
// Linux-like kernel: block-addressed read/write with a volatile write
// cache, explicit flush barriers, a latency model driving the
// simulated clock, injectable I/O faults, and a crash model that
// drops or tears unflushed writes.
//
// The crash model is what the functional-correctness experiments
// (paper §4.4: "recover to the last synced version given any crash")
// exercise: writes issued after the last Flush may be applied in any
// subset, and a block may be torn (partially applied) at a configured
// granularity, exactly the failure envelope journaling file systems
// are designed for.
//
// Concurrency model (blk-mq style): device state is lock-striped into
// NumShards shards keyed by block % NumShards. Each shard owns the
// pending-write submission queue and the durable slots for its blocks,
// so reads and writes to different shards never contend. A global
// atomic sequence number stamps every cached write, which lets the
// whole-device operations (Flush, Crash, Snapshot) reconstruct the
// exact global issue order the crash model depends on.
package blockdev

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/ktrace"
)

// Tracepoints (args documented in DESIGN.md's catalog): submission
// and completion are one event on this synchronous device.
var (
	tpRead  = ktrace.New("blockdev:read")  // a0=block
	tpWrite = ktrace.New("blockdev:write") // a0=block, a1=1 if plugged batch
	tpFlush = ktrace.New("blockdev:flush") // a0=writes made durable
	tpCrash = ktrace.New("blockdev:crash") // a0=writes dropped, a1=blocks torn
)

// NumShards is the lock-striping factor for device state. Sixteen
// shards keeps per-shard contention negligible for the goroutine
// counts the benchmarks use while keeping whole-device operations
// (flush, crash, snapshot) cheap.
const NumShards = 16

// Config describes a simulated device.
type Config struct {
	Blocks    uint64 // device capacity in blocks
	BlockSize int    // bytes per block (default 4096)
	// Latency in jiffies charged to the clock per operation.
	ReadCost  uint64
	WriteCost uint64
	FlushCost uint64
	// TornWriteUnit is the granularity at which a crash can tear a
	// block (default: BlockSize/8). Zero means "use default".
	TornWriteUnit int
	Clock         *kbase.Clock
	Rng           *kbase.Rng
}

func (c *Config) fill() {
	if c.BlockSize == 0 {
		c.BlockSize = 4096
	}
	if c.TornWriteUnit == 0 {
		c.TornWriteUnit = c.BlockSize / 8
	}
	if c.Clock == nil {
		c.Clock = kbase.NewClock()
	}
	if c.Rng == nil {
		c.Rng = kbase.NewRng(1)
	}
}

// Stats counts device activity.
type Stats struct {
	Reads   uint64
	Writes  uint64
	Flushes uint64
	Crashes uint64
	// TornBlocks counts blocks torn across all crashes.
	TornBlocks uint64
	// DroppedWrites counts cached writes lost to crashes.
	DroppedWrites uint64
	// Plugs counts Unplug submissions that batched at least one write.
	Plugs uint64
}

// pendingWrite is one cached, not-yet-durable write. seq is the
// global issue order across all shards.
type pendingWrite struct {
	seq   uint64
	block uint64
	data  []byte
}

// shard is one stripe of device state: the submission queue plus the
// durable slots for blocks hashed to it. durable slots live in the
// device-wide slice but slot b is guarded by shard(b)'s mutex.
type shard struct {
	mu      sync.Mutex
	pending []pendingWrite
}

// Device is a simulated block device. All methods are safe for
// concurrent use.
type Device struct {
	cfg Config

	shards  [NumShards]shard
	durable [][]byte // nil entry = all-zero block; slot b guarded by shards[b%NumShards]
	seq     atomic.Uint64

	reads   atomic.Uint64
	writes  atomic.Uint64
	flushes atomic.Uint64
	crashes atomic.Uint64
	torn    atomic.Uint64
	dropped atomic.Uint64
	plugs   atomic.Uint64

	// fault injection, guarded by ctl (never held together with a
	// shard lock except ctl -> shard).
	ctl        sync.Mutex
	failReads  int // fail the next N reads with EIO
	failWrites int
	badBlocks  map[uint64]bool
	readOnly   bool
}

// New creates a device. It panics on a zero-capacity config, which is
// always a harness bug.
func New(cfg Config) *Device {
	cfg.fill()
	if cfg.Blocks == 0 {
		panic("blockdev: zero-capacity device")
	}
	return &Device{
		cfg:       cfg,
		durable:   make([][]byte, cfg.Blocks),
		badBlocks: make(map[uint64]bool),
	}
}

func (d *Device) shard(block uint64) *shard {
	return &d.shards[block%NumShards]
}

// lockAll acquires every shard lock in index order, for whole-device
// operations. The fixed order keeps shard locks deadlock-free.
func (d *Device) lockAll() {
	for i := range d.shards {
		d.shards[i].mu.Lock()
	}
}

func (d *Device) unlockAll() {
	for i := range d.shards {
		d.shards[i].mu.Unlock()
	}
}

// pendingInOrderLocked returns every cached write sorted by global
// issue order. Caller holds all shard locks.
func (d *Device) pendingInOrderLocked() []pendingWrite {
	var all []pendingWrite
	for i := range d.shards {
		all = append(all, d.shards[i].pending...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq < all[b].seq })
	return all
}

func (d *Device) clearPendingLocked() {
	for i := range d.shards {
		d.shards[i].pending = nil
	}
}

// BlockSize returns bytes per block.
func (d *Device) BlockSize() int { return d.cfg.BlockSize }

// Blocks returns the device capacity in blocks.
func (d *Device) Blocks() uint64 { return d.cfg.Blocks }

// Stats returns a snapshot of the device counters. It is the legacy
// shim over the same counters CollectMetrics registers on the unified
// metrics plane.
func (d *Device) Stats() Stats {
	return Stats{
		Reads:         d.reads.Load(),
		Writes:        d.writes.Load(),
		Flushes:       d.flushes.Load(),
		Crashes:       d.crashes.Load(),
		TornBlocks:    d.torn.Load(),
		DroppedWrites: d.dropped.Load(),
		Plugs:         d.plugs.Load(),
	}
}

// CollectMetrics enumerates the device counters for the ktrace
// metrics registry (register with m.Register("blockdev", d.CollectMetrics)).
func (d *Device) CollectMetrics(emit func(name string, value uint64)) {
	emit("reads", d.reads.Load())
	emit("writes", d.writes.Load())
	emit("flushes", d.flushes.Load())
	emit("crashes", d.crashes.Load())
	emit("torn_blocks", d.torn.Load())
	emit("dropped_writes", d.dropped.Load())
	emit("plugs", d.plugs.Load())
	emit("pending_writes", uint64(d.PendingWrites()))
}

// SetReadOnly marks the device read-only; writes fail with EROFS.
func (d *Device) SetReadOnly(ro bool) {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	d.readOnly = ro
}

// FailNextReads makes the next n reads fail with EIO.
func (d *Device) FailNextReads(n int) {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	d.failReads = n
}

// FailNextWrites makes the next n writes fail with EIO.
func (d *Device) FailNextWrites(n int) {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	d.failWrites = n
}

// MarkBad makes a specific block permanently unreadable/unwritable.
func (d *Device) MarkBad(block uint64) {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	d.badBlocks[block] = true
}

// readFault applies the read-side fault model for one block.
func (d *Device) readFault(block uint64) kbase.Errno {
	d.ctl.Lock()
	defer d.ctl.Unlock()
	if d.failReads > 0 {
		d.failReads--
		return kbase.EIO
	}
	if d.badBlocks[block] {
		return kbase.EIO
	}
	return kbase.EOK
}

// writeFault applies the write-side fault model for one block.
// Caller holds d.ctl.
func (d *Device) writeFaultLocked(block uint64) kbase.Errno {
	if d.readOnly {
		return kbase.EROFS
	}
	if d.failWrites > 0 {
		d.failWrites--
		return kbase.EIO
	}
	if d.badBlocks[block] {
		return kbase.EIO
	}
	return kbase.EOK
}

// Read copies block into buf, observing the write cache (a read sees
// the most recent cached write, as a real device's cache would serve
// it). buf must be exactly one block long.
func (d *Device) Read(block uint64, buf []byte) kbase.Errno {
	if len(buf) != d.cfg.BlockSize {
		return kbase.EINVAL
	}
	if block >= d.cfg.Blocks {
		return kbase.EINVAL
	}
	if err := d.readFault(block); err != kbase.EOK {
		return err
	}
	d.reads.Add(1)
	d.cfg.Clock.Advance(d.cfg.ReadCost)
	tpRead.Emit(0, block, 0)
	s := d.shard(block)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Most recent cached write wins — by global sequence, since
	// concurrent submitters may append to the shard queue slightly out
	// of seq order.
	var newest *pendingWrite
	for i := range s.pending {
		if s.pending[i].block == block && (newest == nil || s.pending[i].seq > newest.seq) {
			newest = &s.pending[i]
		}
	}
	if newest != nil {
		copy(buf, newest.data)
		return kbase.EOK
	}
	if d.durable[block] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return kbase.EOK
	}
	copy(buf, d.durable[block])
	return kbase.EOK
}

// Write caches one block write. Data becomes durable only after
// Flush. data must be exactly one block long; the device copies it.
func (d *Device) Write(block uint64, data []byte) kbase.Errno {
	if len(data) != d.cfg.BlockSize {
		return kbase.EINVAL
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return d.WriteOwned(block, cp)
}

// WriteOwned caches one block write WITHOUT copying: the device takes
// ownership of data, which the caller must not read or mutate again
// (the buffer may become the durable image itself). This is the
// zero-copy submission path the kio engine's ownership-move writes use
// (§4.3: ownership transfer is message passing without the copy);
// Write is the defensive-copy wrapper over it.
func (d *Device) WriteOwned(block uint64, data []byte) kbase.Errno {
	if len(data) != d.cfg.BlockSize {
		return kbase.EINVAL
	}
	if block >= d.cfg.Blocks {
		return kbase.EINVAL
	}
	d.ctl.Lock()
	err := d.writeFaultLocked(block)
	d.ctl.Unlock()
	if err != kbase.EOK {
		return err
	}
	d.writes.Add(1)
	d.cfg.Clock.Advance(d.cfg.WriteCost)
	tpWrite.Emit(0, block, 0)
	w := pendingWrite{seq: d.seq.Add(1), block: block, data: data}
	s := d.shard(block)
	s.mu.Lock()
	s.pending = append(s.pending, w)
	s.mu.Unlock()
	return kbase.EOK
}

// Flush commits every cached write to durable storage, in order. It
// is the device-level barrier (FUA/flush).
func (d *Device) Flush() kbase.Errno {
	d.flushes.Add(1)
	d.cfg.Clock.Advance(d.cfg.FlushCost)
	d.lockAll()
	defer d.unlockAll()
	// Apply in global issue order so the last write to a block wins
	// even when concurrent submitters raced on the shard queue.
	pending := d.pendingInOrderLocked()
	for _, w := range pending {
		d.durable[w.block] = w.data
	}
	d.clearPendingLocked()
	tpFlush.Emit(0, uint64(len(pending)), 0)
	return kbase.EOK
}

// PendingWrites returns the number of cached, non-durable writes.
func (d *Device) PendingWrites() int {
	d.lockAll()
	defer d.unlockAll()
	n := 0
	for i := range d.shards {
		n += len(d.shards[i].pending)
	}
	return n
}

// Crash simulates power loss: each cached write is independently
// applied or dropped, and an applied write may be torn — only a
// prefix of its TornWriteUnit-sized fragments lands. The write cache
// is then discarded. Determinism comes from the device Rng, which is
// consumed in global issue order.
func (d *Device) Crash() {
	d.crashes.Add(1)
	d.lockAll()
	defer d.unlockAll()
	for _, w := range d.pendingInOrderLocked() {
		switch {
		case d.cfg.Rng.Bool(0.5): // dropped entirely
			d.dropped.Add(1)
		case d.cfg.Rng.Bool(0.25): // applied torn
			d.torn.Add(1)
			dst := d.durableFor(w.block)
			unit := d.cfg.TornWriteUnit
			keep := (1 + d.cfg.Rng.Intn(max(d.cfg.BlockSize/unit-1, 1))) * unit
			copy(dst[:keep], w.data[:keep])
		default: // applied fully
			d.durable[w.block] = w.data
		}
	}
	d.clearPendingLocked()
	tpCrash.Emit(0, d.dropped.Load(), d.torn.Load())
}

// CrashApplyNone simulates a crash where no cached write survives —
// the worst case for durability testing.
func (d *Device) CrashApplyNone() {
	d.crashes.Add(1)
	d.lockAll()
	defer d.unlockAll()
	for i := range d.shards {
		d.dropped.Add(uint64(len(d.shards[i].pending)))
	}
	d.clearPendingLocked()
}

// CrashApplySubset applies exactly the cached writes whose indices are
// in keep (in issue order) and drops the rest — used by the
// exhaustive crash explorer to enumerate every crash state.
func (d *Device) CrashApplySubset(keep map[int]bool) {
	d.crashes.Add(1)
	d.lockAll()
	defer d.unlockAll()
	for i, w := range d.pendingInOrderLocked() {
		if keep[i] {
			d.durable[w.block] = w.data
		} else {
			d.dropped.Add(1)
		}
	}
	d.clearPendingLocked()
}

// durableFor returns a mutable durable image for block, materializing
// a zero block if needed. Caller holds the block's shard lock.
func (d *Device) durableFor(block uint64) []byte {
	if d.durable[block] == nil {
		d.durable[block] = make([]byte, d.cfg.BlockSize)
	}
	return d.durable[block]
}

// Snapshot captures the durable image plus cached writes so an
// explorer can rewind the device. The snapshot is independent of
// future device mutation.
func (d *Device) Snapshot() *Snapshot {
	d.lockAll()
	defer d.unlockAll()
	pending := d.pendingInOrderLocked()
	s := &Snapshot{
		durable: make([][]byte, len(d.durable)),
		pending: make([]pendingWrite, len(pending)),
	}
	for i, b := range d.durable {
		if b != nil {
			cp := make([]byte, len(b))
			copy(cp, b)
			s.durable[i] = cp
		}
	}
	for i, w := range pending {
		cp := make([]byte, len(w.data))
		copy(cp, w.data)
		s.pending[i] = pendingWrite{seq: w.seq, block: w.block, data: cp}
	}
	return s
}

// Restore rewinds the device to a snapshot taken from it.
func (d *Device) Restore(s *Snapshot) {
	d.lockAll()
	defer d.unlockAll()
	if len(s.durable) != len(d.durable) {
		panic(fmt.Sprintf("blockdev: restoring snapshot of %d blocks onto %d-block device",
			len(s.durable), len(d.durable)))
	}
	d.durable = make([][]byte, len(s.durable))
	for i, b := range s.durable {
		if b != nil {
			cp := make([]byte, len(b))
			copy(cp, b)
			d.durable[i] = cp
		}
	}
	d.clearPendingLocked()
	var maxSeq uint64
	for _, w := range s.pending {
		cp := make([]byte, len(w.data))
		copy(cp, w.data)
		sh := d.shard(w.block)
		sh.pending = append(sh.pending, pendingWrite{seq: w.seq, block: w.block, data: cp})
		if w.seq > maxSeq {
			maxSeq = w.seq
		}
	}
	if d.seq.Load() < maxSeq {
		d.seq.Store(maxSeq)
	}
}

// Snapshot is an immutable device image.
type Snapshot struct {
	durable [][]byte
	pending []pendingWrite
}

// PendingCount returns the number of cached writes in the snapshot.
func (s *Snapshot) PendingCount() int { return len(s.pending) }

// Plug collects writes locally without touching any device lock, then
// Unplug submits them grouped by shard — the analogue of Linux block
// plugging, used by writeback (bufcache.SyncDirty) and the journal
// commit path to amortize lock traffic for multi-block submissions.
// A Plug is single-goroutine state; it is not safe for concurrent use.
type Plug struct {
	d      *Device
	blocks []uint64
	datas  [][]byte
}

// Plug starts a batched submission.
func (d *Device) Plug() *Plug { return &Plug{d: d} }

// Write queues one block write on the plug. Argument validation
// happens immediately; the fault model and durability semantics apply
// at Unplug time. The data is copied now, so the caller may reuse the
// buffer.
func (p *Plug) Write(block uint64, data []byte) kbase.Errno {
	if len(data) != p.d.cfg.BlockSize {
		return kbase.EINVAL
	}
	if block >= p.d.cfg.Blocks {
		return kbase.EINVAL
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	p.blocks = append(p.blocks, block)
	p.datas = append(p.datas, cp)
	return kbase.EOK
}

// WriteOwned queues one block write on the plug WITHOUT copying: the
// plug (and, after Unplug, the device) takes ownership of data, which
// the caller must not touch again. The kio engine's ownership-move
// submit path uses this so a moved page reaches the durable image with
// zero copies.
func (p *Plug) WriteOwned(block uint64, data []byte) kbase.Errno {
	if len(data) != p.d.cfg.BlockSize {
		return kbase.EINVAL
	}
	if block >= p.d.cfg.Blocks {
		return kbase.EINVAL
	}
	p.blocks = append(p.blocks, block)
	p.datas = append(p.datas, data)
	return kbase.EOK
}

// Queued returns the number of writes waiting on the plug.
func (p *Plug) Queued() int { return len(p.blocks) }

// Unplug submits every queued write, grouped so each shard's lock is
// taken at most once. It returns the per-write results (aligned with
// the Write call order) and the first non-EOK result, and resets the
// plug for reuse. Writes that fail the fault model are not submitted;
// the rest are, so a partial failure behaves exactly like the same
// sequence of plain Write calls.
func (p *Plug) Unplug() ([]kbase.Errno, kbase.Errno) {
	if len(p.blocks) == 0 {
		return nil, kbase.EOK
	}
	d := p.d
	n := len(p.blocks)
	results := make([]kbase.Errno, n)
	writes := make([]pendingWrite, 0, n)

	d.ctl.Lock()
	for i, b := range p.blocks {
		results[i] = d.writeFaultLocked(b)
	}
	d.ctl.Unlock()

	first := kbase.EOK
	accepted := 0
	for i := range results {
		if results[i] != kbase.EOK {
			if first == kbase.EOK {
				first = results[i]
			}
			continue
		}
		accepted++
		writes = append(writes, pendingWrite{
			seq:   d.seq.Add(1),
			block: p.blocks[i],
			data:  p.datas[i],
		})
	}
	if accepted > 0 {
		d.writes.Add(uint64(accepted))
		d.cfg.Clock.Advance(d.cfg.WriteCost * uint64(accepted))
		d.plugs.Add(1)
		if tpWrite.Enabled() {
			for _, w := range writes {
				tpWrite.Emit(0, w.block, 1)
			}
		}
		// Group by shard so each shard lock is taken once.
		var byShard [NumShards][]pendingWrite
		for _, w := range writes {
			idx := w.block % NumShards
			byShard[idx] = append(byShard[idx], w)
		}
		for i := range byShard {
			if len(byShard[i]) == 0 {
				continue
			}
			s := &d.shards[i]
			s.mu.Lock()
			s.pending = append(s.pending, byShard[i]...)
			s.mu.Unlock()
		}
	}
	p.blocks = p.blocks[:0]
	p.datas = p.datas[:0]
	return results, first
}
