// Package blockdev simulates a block storage device for the
// Linux-like kernel: block-addressed read/write with a volatile write
// cache, explicit flush barriers, a latency model driving the
// simulated clock, injectable I/O faults, and a crash model that
// drops or tears unflushed writes.
//
// The crash model is what the functional-correctness experiments
// (paper §4.4: "recover to the last synced version given any crash")
// exercise: writes issued after the last Flush may be applied in any
// subset, and a block may be torn (partially applied) at a configured
// granularity, exactly the failure envelope journaling file systems
// are designed for.
package blockdev

import (
	"fmt"
	"sync"

	"safelinux/internal/linuxlike/kbase"
)

// Config describes a simulated device.
type Config struct {
	Blocks    uint64 // device capacity in blocks
	BlockSize int    // bytes per block (default 4096)
	// Latency in jiffies charged to the clock per operation.
	ReadCost  uint64
	WriteCost uint64
	FlushCost uint64
	// TornWriteUnit is the granularity at which a crash can tear a
	// block (default: BlockSize/8). Zero means "use default".
	TornWriteUnit int
	Clock         *kbase.Clock
	Rng           *kbase.Rng
}

func (c *Config) fill() {
	if c.BlockSize == 0 {
		c.BlockSize = 4096
	}
	if c.TornWriteUnit == 0 {
		c.TornWriteUnit = c.BlockSize / 8
	}
	if c.Clock == nil {
		c.Clock = kbase.NewClock()
	}
	if c.Rng == nil {
		c.Rng = kbase.NewRng(1)
	}
}

// Stats counts device activity.
type Stats struct {
	Reads   uint64
	Writes  uint64
	Flushes uint64
	Crashes uint64
	// TornBlocks counts blocks torn across all crashes.
	TornBlocks uint64
	// DroppedWrites counts cached writes lost to crashes.
	DroppedWrites uint64
}

// pendingWrite is one cached, not-yet-durable write.
type pendingWrite struct {
	block uint64
	data  []byte
}

// Device is a simulated block device. All methods are safe for
// concurrent use.
type Device struct {
	cfg Config

	mu      sync.Mutex
	durable [][]byte // nil entry = all-zero block
	pending []pendingWrite
	stats   Stats

	// fault injection
	failReads  int // fail the next N reads with EIO
	failWrites int
	badBlocks  map[uint64]bool
	readOnly   bool
}

// New creates a device. It panics on a zero-capacity config, which is
// always a harness bug.
func New(cfg Config) *Device {
	cfg.fill()
	if cfg.Blocks == 0 {
		panic("blockdev: zero-capacity device")
	}
	return &Device{
		cfg:       cfg,
		durable:   make([][]byte, cfg.Blocks),
		badBlocks: make(map[uint64]bool),
	}
}

// BlockSize returns bytes per block.
func (d *Device) BlockSize() int { return d.cfg.BlockSize }

// Blocks returns the device capacity in blocks.
func (d *Device) Blocks() uint64 { return d.cfg.Blocks }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetReadOnly marks the device read-only; writes fail with EROFS.
func (d *Device) SetReadOnly(ro bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.readOnly = ro
}

// FailNextReads makes the next n reads fail with EIO.
func (d *Device) FailNextReads(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failReads = n
}

// FailNextWrites makes the next n writes fail with EIO.
func (d *Device) FailNextWrites(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWrites = n
}

// MarkBad makes a specific block permanently unreadable/unwritable.
func (d *Device) MarkBad(block uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.badBlocks[block] = true
}

// Read copies block into buf, observing the write cache (a read sees
// the most recent cached write, as a real device's cache would serve
// it). buf must be exactly one block long.
func (d *Device) Read(block uint64, buf []byte) kbase.Errno {
	if len(buf) != d.cfg.BlockSize {
		return kbase.EINVAL
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if block >= d.cfg.Blocks {
		return kbase.EINVAL
	}
	if d.failReads > 0 {
		d.failReads--
		return kbase.EIO
	}
	if d.badBlocks[block] {
		return kbase.EIO
	}
	d.stats.Reads++
	d.cfg.Clock.Advance(d.cfg.ReadCost)
	// Most recent cached write wins.
	for i := len(d.pending) - 1; i >= 0; i-- {
		if d.pending[i].block == block {
			copy(buf, d.pending[i].data)
			return kbase.EOK
		}
	}
	if d.durable[block] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return kbase.EOK
	}
	copy(buf, d.durable[block])
	return kbase.EOK
}

// Write caches one block write. Data becomes durable only after
// Flush. data must be exactly one block long; the device copies it.
func (d *Device) Write(block uint64, data []byte) kbase.Errno {
	if len(data) != d.cfg.BlockSize {
		return kbase.EINVAL
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if block >= d.cfg.Blocks {
		return kbase.EINVAL
	}
	if d.readOnly {
		return kbase.EROFS
	}
	if d.failWrites > 0 {
		d.failWrites--
		return kbase.EIO
	}
	if d.badBlocks[block] {
		return kbase.EIO
	}
	d.stats.Writes++
	d.cfg.Clock.Advance(d.cfg.WriteCost)
	cp := make([]byte, len(data))
	copy(cp, data)
	d.pending = append(d.pending, pendingWrite{block: block, data: cp})
	return kbase.EOK
}

// Flush commits every cached write to durable storage, in order. It
// is the device-level barrier (FUA/flush).
func (d *Device) Flush() kbase.Errno {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Flushes++
	d.cfg.Clock.Advance(d.cfg.FlushCost)
	for _, w := range d.pending {
		d.durable[w.block] = w.data
	}
	d.pending = nil
	return kbase.EOK
}

// PendingWrites returns the number of cached, non-durable writes.
func (d *Device) PendingWrites() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Crash simulates power loss: each cached write is independently
// applied or dropped, and an applied write may be torn — only a
// prefix of its TornWriteUnit-sized fragments lands. The write cache
// is then discarded. Determinism comes from the device Rng.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Crashes++
	for _, w := range d.pending {
		switch {
		case d.cfg.Rng.Bool(0.5): // dropped entirely
			d.stats.DroppedWrites++
		case d.cfg.Rng.Bool(0.25): // applied torn
			d.stats.TornBlocks++
			dst := d.durableFor(w.block)
			unit := d.cfg.TornWriteUnit
			keep := (1 + d.cfg.Rng.Intn(maxInt(d.cfg.BlockSize/unit-1, 1))) * unit
			copy(dst[:keep], w.data[:keep])
		default: // applied fully
			d.durable[w.block] = w.data
		}
	}
	d.pending = nil
}

// CrashApplyNone simulates a crash where no cached write survives —
// the worst case for durability testing.
func (d *Device) CrashApplyNone() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Crashes++
	d.stats.DroppedWrites += uint64(len(d.pending))
	d.pending = nil
}

// CrashApplySubset applies exactly the cached writes whose indices are
// in keep (in issue order) and drops the rest — used by the
// exhaustive crash explorer to enumerate every crash state.
func (d *Device) CrashApplySubset(keep map[int]bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Crashes++
	for i, w := range d.pending {
		if keep[i] {
			d.durable[w.block] = w.data
		} else {
			d.stats.DroppedWrites++
		}
	}
	d.pending = nil
}

// durableFor returns a mutable durable image for block, materializing
// a zero block if needed. Caller holds d.mu.
func (d *Device) durableFor(block uint64) []byte {
	if d.durable[block] == nil {
		d.durable[block] = make([]byte, d.cfg.BlockSize)
	}
	return d.durable[block]
}

// Snapshot captures the durable image plus cached writes so an
// explorer can rewind the device. The snapshot is independent of
// future device mutation.
func (d *Device) Snapshot() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &Snapshot{
		durable: make([][]byte, len(d.durable)),
		pending: make([]pendingWrite, len(d.pending)),
	}
	for i, b := range d.durable {
		if b != nil {
			cp := make([]byte, len(b))
			copy(cp, b)
			s.durable[i] = cp
		}
	}
	for i, w := range d.pending {
		cp := make([]byte, len(w.data))
		copy(cp, w.data)
		s.pending[i] = pendingWrite{block: w.block, data: cp}
	}
	return s
}

// Restore rewinds the device to a snapshot taken from it.
func (d *Device) Restore(s *Snapshot) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(s.durable) != len(d.durable) {
		panic(fmt.Sprintf("blockdev: restoring snapshot of %d blocks onto %d-block device",
			len(s.durable), len(d.durable)))
	}
	d.durable = make([][]byte, len(s.durable))
	for i, b := range s.durable {
		if b != nil {
			cp := make([]byte, len(b))
			copy(cp, b)
			d.durable[i] = cp
		}
	}
	d.pending = make([]pendingWrite, len(s.pending))
	for i, w := range s.pending {
		cp := make([]byte, len(w.data))
		copy(cp, w.data)
		d.pending[i] = pendingWrite{block: w.block, data: cp}
	}
}

// Snapshot is an immutable device image.
type Snapshot struct {
	durable [][]byte
	pending []pendingWrite
}

// PendingCount returns the number of cached writes in the snapshot.
func (s *Snapshot) PendingCount() int { return len(s.pending) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
