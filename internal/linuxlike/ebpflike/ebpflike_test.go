package ebpflike

import (
	"strings"
	"testing"
	"testing/quick"

	"safelinux/internal/linuxlike/kbase"
)

// dropTCPFilter is a realistic packet filter: return 0 (drop) when
// the IP-lite proto byte (offset 8) is 6 (TCP), else 1 (pass).
func dropTCPFilter() []Inst {
	return []Inst{
		{Op: OpMov, Dst: 1, Imm: 0},           // r1 = 0 (ctx base)
		{Op: OpLdCtx, Dst: 2, Src: 1, Imm: 8}, // r2 = ctx[8]
		{Op: OpMov, Dst: 3, Imm: 6},           // r3 = 6
		{Op: OpJEq, Dst: 2, Src: 3, Off: 2},   // if proto == TCP skip 2
		{Op: OpMov, Dst: 0, Imm: 1},           // r0 = pass
		{Op: OpRet, Dst: 0},
		{Op: OpMov, Dst: 0, Imm: 0}, // r0 = drop
		{Op: OpRet, Dst: 0},
	}
}

func TestPacketFilter(t *testing.T) {
	prog, err := Verify(dropTCPFilter(), 12)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	tcp := make([]byte, 12)
	tcp[8] = 6
	udp := make([]byte, 12)
	udp[8] = 17
	if v, e := prog.Run(tcp); e != kbase.EOK || v != 0 {
		t.Fatalf("TCP packet: (%d, %v)", v, e)
	}
	if v, e := prog.Run(udp); e != kbase.EOK || v != 1 {
		t.Fatalf("UDP packet: (%d, %v)", v, e)
	}
}

func TestVerifierRejectsLoops(t *testing.T) {
	// A loop is a backward jump; the verifier must reject it. This is
	// the paper's "expressiveness is limited" made concrete: no
	// retransmission loop, no directory scan, no TCP stack.
	loop := []Inst{
		{Op: OpMov, Dst: 0, Imm: 10},
		{Op: OpMov, Dst: 1, Imm: 1},
		{Op: OpSub, Dst: 0, Src: 1},
		{Op: OpJGt, Dst: 0, Src: 1, Off: -2}, // back to the Sub
		{Op: OpRet, Dst: 0},
	}
	_, err := Verify(loop, 0)
	if err == nil {
		t.Fatalf("loop accepted")
	}
	if !strings.Contains(err.Error(), "backward jump") {
		t.Fatalf("error = %v", err)
	}
}

func TestVerifierRules(t *testing.T) {
	cases := []struct {
		name   string
		insts  []Inst
		ctx    int
		reason string
	}{
		{"empty", nil, 0, "empty"},
		{"no-ret", []Inst{{Op: OpMov, Dst: 0, Imm: 1}}, 0, "end with Ret"},
		{"bad-reg", []Inst{{Op: OpMov, Dst: 12, Imm: 1}, {Op: OpRet}}, 0, "register"},
		{"ctx-oob", []Inst{{Op: OpLdCtx, Dst: 0, Imm: 99}, {Op: OpRet}}, 12, "out of bounds"},
		{"ctx32-oob", []Inst{{Op: OpLdCtx32, Dst: 0, Imm: 9}, {Op: OpRet}}, 12, "word read"},
		{"scratch-oob", []Inst{{Op: OpStScratch, Dst: 0, Imm: 64}, {Op: OpRet}}, 0, "scratch"},
		{"shift-oob", []Inst{{Op: OpLsh, Dst: 0, Imm: 64}, {Op: OpRet}}, 0, "shift"},
		{"jump-past-end", []Inst{{Op: OpJmp, Off: 5}, {Op: OpRet}}, 0, "past end"},
		{"unknown-op", []Inst{{Op: OpCode(99)}, {Op: OpRet}}, 0, "unknown"},
	}
	for _, tc := range cases {
		_, err := Verify(tc.insts, tc.ctx)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.reason) {
			t.Errorf("%s: error %v lacks %q", tc.name, err, tc.reason)
		}
	}
}

func TestVerifierRejectsOverlongProgram(t *testing.T) {
	long := make([]Inst, MaxProgLen+1)
	for i := range long {
		long[i] = Inst{Op: OpMov, Dst: 0, Imm: 1}
	}
	long[len(long)-1] = Inst{Op: OpRet}
	if _, err := Verify(long, 0); err == nil {
		t.Fatalf("overlong program accepted")
	}
}

func TestUnverifiedProgramRefusesToRun(t *testing.T) {
	var p Program
	if _, err := p.Run(nil); err != kbase.EPERM {
		t.Fatalf("unverified run: %v", err)
	}
}

func TestRuntimeGuards(t *testing.T) {
	// Register-relative context read beyond the actual buffer.
	prog, err := Verify([]Inst{
		{Op: OpMov, Dst: 1, Imm: 100},         // r1 = 100
		{Op: OpLdCtx, Dst: 0, Src: 1, Imm: 0}, // ctx[100]
		{Op: OpRet, Dst: 0},
	}, 12)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if _, e := prog.Run(make([]byte, 12)); e != kbase.EFAULT {
		t.Fatalf("oob register read: %v", e)
	}
	// Division by zero is a clean error, not a crash.
	prog2, err := Verify([]Inst{
		{Op: OpMov, Dst: 0, Imm: 10},
		{Op: OpMov, Dst: 1, Imm: 0},
		{Op: OpDiv, Dst: 0, Src: 1},
		{Op: OpRet, Dst: 0},
	}, 0)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if _, e := prog2.Run(nil); e != kbase.EINVAL {
		t.Fatalf("div by zero: %v", e)
	}
	// Short context rejected up front.
	if _, e := prog.Run(make([]byte, 4)); e != kbase.EINVAL {
		t.Fatalf("short ctx: %v", e)
	}
}

func TestALUAndScratch(t *testing.T) {
	// Compute (ctx32[0] * 3 + 5) >> 1, via scratch for good measure.
	prog, err := Verify([]Inst{
		{Op: OpMov, Dst: 1, Imm: 0},
		{Op: OpLdCtx32, Dst: 0, Src: 1, Imm: 0},
		{Op: OpMov, Dst: 2, Imm: 3},
		{Op: OpMul, Dst: 0, Src: 2},
		{Op: OpMov, Dst: 2, Imm: 5},
		{Op: OpAdd, Dst: 0, Src: 2},
		{Op: OpRsh, Dst: 0, Imm: 1},
		{Op: OpStScratch, Dst: 0, Imm: 7},
		{Op: OpLdScratch, Dst: 3, Imm: 7},
		{Op: OpRet, Dst: 3},
	}, 4)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	ctx := []byte{10, 0, 0, 0}
	v, e := prog.Run(ctx)
	if e != kbase.EOK {
		t.Fatalf("run: %v", e)
	}
	want := uint64(byte((10*3 + 5) >> 1))
	if v != want {
		t.Fatalf("result = %d, want %d", v, want)
	}
}

// Property: verified programs always terminate with EOK, EINVAL, or
// EFAULT — never hang, never panic — on arbitrary contexts.
func TestVerifiedProgramsTotalProperty(t *testing.T) {
	f := func(raw []byte, ctx []byte) bool {
		if len(ctx) > 64 {
			ctx = ctx[:64]
		}
		// Decode arbitrary bytes into instructions; most programs
		// won't verify, which is fine — the property concerns those
		// that do.
		var insts []Inst
		for i := 0; i+6 <= len(raw) && len(insts) < 40; i += 6 {
			insts = append(insts, Inst{
				Op:  OpCode(raw[i] % 21),
				Dst: raw[i+1] % NumRegs,
				Src: raw[i+2] % NumRegs,
				Off: int16(raw[i+3] % 8),
				Imm: int32(raw[i+4]) | int32(raw[i+5])<<8,
			})
		}
		insts = append(insts, Inst{Op: OpRet})
		prog, err := Verify(insts, len(ctx))
		if err != nil {
			return true // rejection is always acceptable
		}
		_, e := prog.Run(ctx)
		return e == kbase.EOK || e == kbase.EINVAL || e == kbase.EFAULT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
