package ebpflike_test

import (
	"testing"

	"safelinux/internal/linuxlike/ebpflike"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/net"
)

// TestFilterAttachedToHost loads a verified drop-UDP program into a
// host's packet-filter hook and checks that UDP stops while TCP still
// flows — the restricted-extension mechanism working end to end.
func TestFilterAttachedToHost(t *testing.T) {
	// Program: pass (1) unless proto byte (ctx[8]) == 17 (UDP).
	prog, err := ebpflike.Verify([]ebpflike.Inst{
		{Op: ebpflike.OpMov, Dst: 1, Imm: 0},
		{Op: ebpflike.OpLdCtx, Dst: 2, Src: 1, Imm: 8},
		{Op: ebpflike.OpMov, Dst: 3, Imm: 17},
		{Op: ebpflike.OpJEq, Dst: 2, Src: 3, Off: 2},
		{Op: ebpflike.OpMov, Dst: 0, Imm: 1},
		{Op: ebpflike.OpRet, Dst: 0},
		{Op: ebpflike.OpMov, Dst: 0, Imm: 0},
		{Op: ebpflike.OpRet, Dst: 0},
	}, 9)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}

	sim := net.NewSim(31)
	a := sim.AddHost(1)
	b := sim.AddHost(2)
	sim.Link(1, 2, net.LinkParams{Delay: 1})
	b.SetPacketFilter(func(pkt net.Packet) bool {
		if len(pkt) < 9 {
			return true // runts go to the stack's own validation
		}
		v, e := prog.Run(pkt)
		return e == kbase.EOK && v != 0
	})

	// UDP is dropped.
	us, _ := b.BindUDP(53)
	ua, _ := a.BindUDP(0)
	ua.SendTo(2, 53, []byte("blocked"))
	sim.Run(10)
	if n, _, _, e := us.RecvFrom(make([]byte, 16)); e != kbase.EAGAIN || n != 0 {
		t.Fatalf("UDP got through the filter: (%d, %v)", n, e)
	}
	if b.FilteredCount() == 0 {
		t.Fatalf("filter counted nothing")
	}

	// TCP still flows.
	l, _ := b.ListenTCP(80)
	c, _ := a.ConnectTCP(2, 80)
	var srv *net.Socket
	ok := sim.RunUntil(func() bool {
		if srv == nil {
			if s, e := l.Accept(); e == kbase.EOK {
				srv = s
			}
		}
		return srv != nil && c.Established()
	}, 5000)
	if !ok {
		t.Fatalf("TCP blocked by a UDP-only filter")
	}

	// Removing the filter restores UDP.
	b.SetPacketFilter(nil)
	ua.SendTo(2, 53, []byte("open"))
	sim.Run(10)
	if n, _, _, e := us.RecvFrom(make([]byte, 16)); e != kbase.EOK || n != 4 {
		t.Fatalf("UDP still blocked after removal: (%d, %v)", n, e)
	}
}
