// Package ebpflike implements the alternative safety mechanism the
// paper's related-work section contrasts with (§5: "Today, Linux
// already supports loading eBPF, but its expressiveness is limited,
// and it does not support complex kernel components").
//
// It is a miniature eBPF: a register machine with a static verifier
// that guarantees termination and memory safety before a program may
// run. The verifier's rules are the point — they are exactly what
// makes the mechanism safe AND what makes it unable to host a file
// system or TCP stack:
//
//   - no backward jumps (hence no loops, hence guaranteed termination);
//   - bounded program size;
//   - all context reads bounds-checked against the declared size;
//   - scratch memory is a fixed 64-byte window, bounds-checked;
//   - division guarded against zero.
//
// The experiments use it to make the paper's contrast concrete: a
// packet filter fits easily; anything requiring unbounded iteration
// or persistent state is rejected by construction.
package ebpflike

import (
	"fmt"

	"safelinux/internal/linuxlike/kbase"
)

// OpCode is one instruction's operation.
type OpCode uint8

// The instruction set. Two operand registers (Dst, Src), a 32-bit
// immediate, and a jump offset. LdCtx/LdScratch/StScratch move data;
// the ALU ops compute; Jmp* branch forward only; Ret ends.
const (
	OpMov       OpCode = iota // dst = imm
	OpMovReg                  // dst = src
	OpLdCtx                   // dst = ctx[src + imm]  (one byte, zero-extended)
	OpLdCtx32                 // dst = le32(ctx[src+imm : src+imm+4])
	OpLdScratch               // dst = scratch[imm]
	OpStScratch               // scratch[imm] = dst (low byte)
	OpAdd                     // dst += src
	OpSub                     // dst -= src
	OpMul                     // dst *= src
	OpDiv                     // dst /= src (verifier demands provably nonzero src? no: runtime guard)
	OpAnd                     // dst &= src
	OpOr                      // dst |= src
	OpXor                     // dst ^= src
	OpLsh                     // dst <<= imm (imm < 64)
	OpRsh                     // dst >>= imm (imm < 64)
	OpJmp                     // pc += off (forward only)
	OpJEq                     // if dst == src: pc += off
	OpJNe                     // if dst != src: pc += off
	OpJGt                     // if dst > src: pc += off
	OpJLt                     // if dst < src: pc += off
	OpRet                     // return dst
)

// Inst is one instruction.
type Inst struct {
	Op  OpCode
	Dst uint8 // register 0..9
	Src uint8
	Off int16 // jump offset, in instructions, relative to the next pc
	Imm int32
}

// Limits.
const (
	NumRegs     = 10
	ScratchSize = 64
	MaxProgLen  = 512
)

// Program is a verified program. Only Verify constructs a runnable
// one — the zero Program refuses to run.
type Program struct {
	insts    []Inst
	verified bool
	ctxSize  int
}

// VerifyError describes a rejected program.
type VerifyError struct {
	PC     int
	Reason string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("ebpflike: verifier rejected instruction %d: %s", e.PC, e.Reason)
}

// Verify statically checks a program for the declared context size.
// The returned Program is safe to run against any context of at least
// ctxSize bytes: it terminates within len(insts) steps and touches no
// memory outside the context window and its scratch area.
func Verify(insts []Inst, ctxSize int) (*Program, error) {
	if len(insts) == 0 {
		return nil, &VerifyError{PC: 0, Reason: "empty program"}
	}
	if len(insts) > MaxProgLen {
		return nil, &VerifyError{PC: 0, Reason: fmt.Sprintf("program too long (%d > %d)", len(insts), MaxProgLen)}
	}
	sawRet := false
	for pc, in := range insts {
		if in.Dst >= NumRegs || in.Src >= NumRegs {
			return nil, &VerifyError{PC: pc, Reason: "register out of range"}
		}
		switch in.Op {
		case OpMov, OpMovReg, OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor:
			// always fine structurally
		case OpLsh, OpRsh:
			if in.Imm < 0 || in.Imm >= 64 {
				return nil, &VerifyError{PC: pc, Reason: "shift amount out of range"}
			}
		case OpLdCtx:
			if in.Imm < 0 || int(in.Imm) >= ctxSize {
				return nil, &VerifyError{PC: pc, Reason: "context read out of bounds"}
			}
		case OpLdCtx32:
			if in.Imm < 0 || int(in.Imm)+4 > ctxSize {
				return nil, &VerifyError{PC: pc, Reason: "context word read out of bounds"}
			}
		case OpLdScratch, OpStScratch:
			if in.Imm < 0 || int(in.Imm) >= ScratchSize {
				return nil, &VerifyError{PC: pc, Reason: "scratch access out of bounds"}
			}
		case OpJmp, OpJEq, OpJNe, OpJGt, OpJLt:
			if in.Off <= 0 {
				// THE rule: no backward (or self) jumps. This is what
				// guarantees termination and what forbids loops.
				return nil, &VerifyError{PC: pc, Reason: "backward jump (loops are not expressible)"}
			}
			if pc+1+int(in.Off) >= len(insts) {
				// A target of len(insts) would fall off the end, and
				// the only in-range instruction a forward jump may
				// reach last is the final Ret at len-1.
				return nil, &VerifyError{PC: pc, Reason: "jump past end of program"}
			}
		case OpRet:
			sawRet = true
		default:
			return nil, &VerifyError{PC: pc, Reason: "unknown opcode"}
		}
	}
	// Execution must not fall off the end: the last reachable
	// instruction on every path has to be Ret or a jump that lands on
	// one. The simple sufficient condition (as real verifiers use for
	// the final instruction) is that the program ends with Ret.
	if !sawRet || insts[len(insts)-1].Op != OpRet {
		return nil, &VerifyError{PC: len(insts) - 1, Reason: "program must end with Ret"}
	}
	return &Program{insts: insts, verified: true, ctxSize: ctxSize}, nil
}

// Run executes the program over ctx. Contexts shorter than the
// verified size are rejected (the verifier's bounds assumed it).
// Run never loops: the pc increases monotonically.
func (p *Program) Run(ctx []byte) (uint64, kbase.Errno) {
	if p == nil || !p.verified {
		return 0, kbase.EPERM
	}
	if len(ctx) < p.ctxSize {
		return 0, kbase.EINVAL
	}
	var regs [NumRegs]uint64
	var scratch [ScratchSize]byte
	pc := 0
	for pc < len(p.insts) {
		in := p.insts[pc]
		pc++
		switch in.Op {
		case OpMov:
			regs[in.Dst] = uint64(uint32(in.Imm))
		case OpMovReg:
			regs[in.Dst] = regs[in.Src]
		case OpLdCtx:
			idx := int(regs[in.Src]) + int(in.Imm)
			if idx < 0 || idx >= len(ctx) {
				// Register-relative reads get the runtime guard the
				// immediate part got statically.
				return 0, kbase.EFAULT
			}
			regs[in.Dst] = uint64(ctx[idx])
		case OpLdCtx32:
			idx := int(regs[in.Src]) + int(in.Imm)
			if idx < 0 || idx+4 > len(ctx) {
				return 0, kbase.EFAULT
			}
			regs[in.Dst] = uint64(ctx[idx]) | uint64(ctx[idx+1])<<8 |
				uint64(ctx[idx+2])<<16 | uint64(ctx[idx+3])<<24
		case OpLdScratch:
			regs[in.Dst] = uint64(scratch[in.Imm])
		case OpStScratch:
			scratch[in.Imm] = byte(regs[in.Dst])
		case OpAdd:
			regs[in.Dst] += regs[in.Src]
		case OpSub:
			regs[in.Dst] -= regs[in.Src]
		case OpMul:
			regs[in.Dst] *= regs[in.Src]
		case OpDiv:
			if regs[in.Src] == 0 {
				return 0, kbase.EINVAL // guarded, never a crash
			}
			regs[in.Dst] /= regs[in.Src]
		case OpAnd:
			regs[in.Dst] &= regs[in.Src]
		case OpOr:
			regs[in.Dst] |= regs[in.Src]
		case OpXor:
			regs[in.Dst] ^= regs[in.Src]
		case OpLsh:
			regs[in.Dst] <<= uint(in.Imm)
		case OpRsh:
			regs[in.Dst] >>= uint(in.Imm)
		case OpJmp:
			pc += int(in.Off)
		case OpJEq:
			if regs[in.Dst] == regs[in.Src] {
				pc += int(in.Off)
			}
		case OpJNe:
			if regs[in.Dst] != regs[in.Src] {
				pc += int(in.Off)
			}
		case OpJGt:
			if regs[in.Dst] > regs[in.Src] {
				pc += int(in.Off)
			}
		case OpJLt:
			if regs[in.Dst] < regs[in.Src] {
				pc += int(in.Off)
			}
		case OpRet:
			return regs[in.Dst], kbase.EOK
		}
	}
	// Unreachable given the verifier's Ret rule; belt and braces.
	return 0, kbase.EUCLEAN
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.insts) }

// CtxSize returns the context size the program was verified against.
// Attachment points (ktrace) use it to check the program's bounds fit
// the context window they actually provide.
func (p *Program) CtxSize() int { return p.ctxSize }
