package vfs

import (
	"sync"
)

// dcacheShards is the number of independent dcache segments. Lookups
// hash (dir, name) to a shard so concurrent path resolution does not
// serialize on one lock, mirroring the kernel's per-bucket dcache
// hash locks.
const dcacheShards = 16

// dcache is the dentry cache: (directory inode, component name) →
// child inode. Negative entries (lookups that found nothing) are
// cached as nil inodes, as the kernel caches negative dentries.
type dcache struct {
	max    int // total capacity across shards (0 = unbounded)
	shards [dcacheShards]dcacheShard
}

type dcacheShard struct {
	mu      sync.Mutex
	entries map[dcacheKey]*Inode
	hits    uint64
	misses  uint64
}

type dcacheKey struct {
	sb   *SuperBlock
	dir  uint64
	name string
}

func newDcache(max int) *dcache {
	d := &dcache{max: max}
	for i := range d.shards {
		d.shards[i].entries = make(map[dcacheKey]*Inode)
	}
	return d
}

// shardFor hashes the lookup key to a shard (FNV-1a over the name,
// mixed with the directory inode number).
func (d *dcache) shardFor(dir uint64, name string) *dcacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= dir
	return &d.shards[h%dcacheShards]
}

// lookup returns (inode, found). found=true with inode=nil is a
// cached negative entry.
func (d *dcache) lookup(sb *SuperBlock, dir uint64, name string) (*Inode, bool) {
	s := d.shardFor(dir, name)
	s.mu.Lock()
	defer s.mu.Unlock()
	ino, ok := s.entries[dcacheKey{sb, dir, name}]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return ino, ok
}

func (d *dcache) insert(sb *SuperBlock, dir uint64, name string, ino *Inode) {
	s := d.shardFor(dir, name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.max > 0 && len(s.entries) >= d.max/dcacheShards {
		// Prune about an eighth of this shard. The kernel prunes by
		// LRU; random partial eviction keeps the hot majority rather
		// than dropping the whole cache and taking a miss storm.
		drop := len(s.entries)/8 + 1
		for k := range s.entries {
			if drop == 0 {
				break
			}
			delete(s.entries, k)
			drop--
		}
	}
	s.entries[dcacheKey{sb, dir, name}] = ino
}

func (d *dcache) invalidate(sb *SuperBlock, dir uint64, name string) {
	s := d.shardFor(dir, name)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, dcacheKey{sb, dir, name})
}

// invalidateDir drops every entry under the given directory.
func (d *dcache) invalidateDir(sb *SuperBlock, dir uint64) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			if k.sb == sb && k.dir == dir {
				delete(s.entries, k)
			}
		}
		s.mu.Unlock()
	}
}

// invalidateSB drops every entry of one superblock (unmount).
func (d *dcache) invalidateSB(sb *SuperBlock) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			if k.sb == sb {
				delete(s.entries, k)
			}
		}
		s.mu.Unlock()
	}
}

func (d *dcache) stats() (hits, misses uint64, size int) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		size += len(s.entries)
		s.mu.Unlock()
	}
	return hits, misses, size
}
