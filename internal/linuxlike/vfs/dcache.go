package vfs

import (
	"sync"
)

// dcache is the dentry cache: (directory inode, component name) →
// child inode. Negative entries (lookups that found nothing) are
// cached as nil inodes, as the kernel caches negative dentries.
type dcache struct {
	mu      sync.Mutex
	entries map[dcacheKey]*Inode
	hits    uint64
	misses  uint64
	max     int
}

type dcacheKey struct {
	sb   *SuperBlock
	dir  uint64
	name string
}

func newDcache(max int) *dcache {
	return &dcache{entries: make(map[dcacheKey]*Inode), max: max}
}

// lookup returns (inode, found). found=true with inode=nil is a
// cached negative entry.
func (d *dcache) lookup(sb *SuperBlock, dir uint64, name string) (*Inode, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ino, ok := d.entries[dcacheKey{sb, dir, name}]
	if ok {
		d.hits++
	} else {
		d.misses++
	}
	return ino, ok
}

func (d *dcache) insert(sb *SuperBlock, dir uint64, name string, ino *Inode) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.max > 0 && len(d.entries) >= d.max {
		// Crude shrink: drop everything. The kernel prunes by LRU;
		// total invalidation is correct, just slower.
		d.entries = make(map[dcacheKey]*Inode)
	}
	d.entries[dcacheKey{sb, dir, name}] = ino
}

func (d *dcache) invalidate(sb *SuperBlock, dir uint64, name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, dcacheKey{sb, dir, name})
}

// invalidateDir drops every entry under the given directory.
func (d *dcache) invalidateDir(sb *SuperBlock, dir uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k := range d.entries {
		if k.sb == sb && k.dir == dir {
			delete(d.entries, k)
		}
	}
}

// invalidateSB drops every entry of one superblock (unmount).
func (d *dcache) invalidateSB(sb *SuperBlock) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k := range d.entries {
		if k.sb == sb {
			delete(d.entries, k)
		}
	}
}

func (d *dcache) stats() (hits, misses uint64, size int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits, d.misses, len(d.entries)
}
