package vfs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/ktrace"
)

// Tracepoints (args documented in DESIGN.md's catalog). vfs:lookup
// covers the dcache too: a1 says whether the dentry cache answered.
var tpLookup = ktrace.New("vfs:lookup") // a0=dir ino, a1=1 on dcache hit

// Open flags, mirroring the fcntl constants the simulated kernel
// understands.
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreate = 0x40
	OExcl   = 0x80
	OTrunc  = 0x200
	OAppend = 0x400

	accessMask = 0x3
)

// File is one open file description.
type File struct {
	Inode *Inode
	Flags int

	// path is the canonical path the descriptor was opened by; the
	// hot-swap migration uses it to re-point the descriptor at the
	// file's copy on the new file system (RemapDescriptors).
	path string

	mu  sync.Mutex
	pos int64
}

// readable reports whether the file was opened for reading.
func (f *File) readable() bool {
	a := f.Flags & accessMask
	return a == ORdOnly || a == ORdWr
}

// writable reports whether the file was opened for writing.
func (f *File) writable() bool {
	a := f.Flags & accessMask
	return a == OWrOnly || a == ORdWr
}

// mount is one entry in the mount table.
type mount struct {
	path string // canonical dir path, "/" or "/a/b"
	sb   *SuperBlock
}

// boundaryDetector is the hook a type-confusion detector implements
// (satisfied structurally by typedapi.Detector). The VFS reports the
// inner value of every WriteState it ferries through the write
// protocol, tagged with the owning file system type, so a
// learn-then-enforce detector can catch §4.2-style confusion without
// the VFS knowing any concrete types. The contract is unexported: the
// untyped hand-off is an implementation detail of instrumentation,
// not part of the VFS's typed surface.
type boundaryDetector interface {
	Check(boundary string, v any) bool
}

// VFS is the virtual file system switch: registered file system
// types, the mount table, the dentry cache, and the open-file table.
type VFS struct {
	// mu guards the tables below. Hot read paths (mount resolution,
	// fd lookup) take the read side so they scale across CPUs; only
	// registration, mount/unmount and open/close take the write side.
	mu      sync.RWMutex
	fstypes map[string]FileSystemType
	mounts  []mount // sorted by descending path length
	files   map[int]*File
	nextFD  int
	dcache  *dcache
	clock   *kbase.Clock

	detector boundaryDetector

	// boundary, when installed, wraps every public operation in a
	// crash-containment compartment (see boundary.go).
	boundary atomic.Pointer[boundaryBox]
}

// InstrumentBoundaries installs a type-confusion detector on the
// VFS's untyped handoffs (nil uninstalls).
func (v *VFS) InstrumentBoundaries(d boundaryDetector) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.detector = d
}

// New creates an empty VFS.
func New(clock *kbase.Clock) *VFS {
	if clock == nil {
		clock = kbase.NewClock()
	}
	return &VFS{
		fstypes: make(map[string]FileSystemType),
		files:   make(map[int]*File),
		nextFD:  3, // 0..2 reserved, as tradition demands
		dcache:  newDcache(4096),
		clock:   clock,
	}
}

// Clock returns the kernel clock used for timestamps.
func (v *VFS) Clock() *kbase.Clock { return v.clock }

// RegisterFS registers a file system type.
func (v *VFS) RegisterFS(fs FileSystemType) kbase.Errno {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.fstypes[fs.Name()]; dup {
		return kbase.EEXIST
	}
	v.fstypes[fs.Name()] = fs
	return kbase.EOK
}

// CleanPath canonicalizes an absolute path lexically: collapses
// slashes, resolves "." and "..". Returns "" for non-absolute input.
func CleanPath(p string) string {
	if !strings.HasPrefix(p, "/") {
		return ""
	}
	parts := strings.Split(p, "/")
	var stack []string
	for _, c := range parts {
		switch c {
		case "", ".":
		case "..":
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			stack = append(stack, c)
		}
	}
	return "/" + strings.Join(stack, "/")
}

// doMount mounts fstype at path with fs-specific data. Path must be "/"
// or an existing directory on an already-mounted file system.
func (v *VFS) doMount(task *kbase.Task, path, fstype string, data MountData) kbase.Errno {
	path = CleanPath(path)
	if path == "" {
		return kbase.EINVAL
	}
	v.mu.RLock()
	fs, ok := v.fstypes[fstype]
	v.mu.RUnlock()
	if !ok {
		return kbase.ENODEV
	}
	if path != "/" {
		ino, err := v.doResolve(task, path)
		if err != kbase.EOK {
			return err
		}
		if !ino.Mode.IsDir() {
			return kbase.ENOTDIR
		}
	}
	v.mu.Lock()
	for _, m := range v.mounts {
		if m.path == path {
			v.mu.Unlock()
			return kbase.EBUSY
		}
	}
	v.mu.Unlock()

	sb, err := fs.Mount(task, data)
	if err != kbase.EOK {
		return err
	}
	v.mu.Lock()
	v.mounts = append(v.mounts, mount{path: path, sb: sb})
	sort.Slice(v.mounts, func(i, j int) bool {
		return len(v.mounts[i].path) > len(v.mounts[j].path)
	})
	v.mu.Unlock()
	return kbase.EOK
}

// doUnmount detaches the file system at path.
func (v *VFS) doUnmount(task *kbase.Task, path string) kbase.Errno {
	path = CleanPath(path)
	v.mu.Lock()
	idx := -1
	for i, m := range v.mounts {
		if m.path == path {
			idx = i
			break
		}
	}
	if idx < 0 {
		v.mu.Unlock()
		return kbase.EINVAL
	}
	sb := v.mounts[idx].sb
	// Refuse while files are open on it.
	for _, f := range v.files {
		if f.Inode.Sb == sb {
			v.mu.Unlock()
			return kbase.EBUSY
		}
	}
	v.mounts = append(v.mounts[:idx], v.mounts[idx+1:]...)
	v.mu.Unlock()
	v.dcache.invalidateSB(sb)
	if sb.Ops != nil {
		return sb.Ops.Unmount(task)
	}
	return kbase.EOK
}

// mountFor finds the mount owning path and the path remainder within
// it. Mount paths are sorted longest-first, so the first prefix match
// is the deepest mount.
func (v *VFS) mountFor(path string) (*SuperBlock, string, kbase.Errno) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, m := range v.mounts {
		if m.path == "/" {
			return m.sb, strings.TrimPrefix(path, "/"), kbase.EOK
		}
		if path == m.path {
			return m.sb, "", kbase.EOK
		}
		if strings.HasPrefix(path, m.path+"/") {
			return m.sb, path[len(m.path)+1:], kbase.EOK
		}
	}
	return nil, "", kbase.ENOENT
}

// doResolve walks path to an inode.
func (v *VFS) doResolve(task *kbase.Task, path string) (*Inode, kbase.Errno) {
	ino, _, _, err := v.resolveParent(task, path, false)
	return ino, err
}

// resolveParent resolves path. If wantParent, it returns the parent
// directory inode plus the final component; otherwise it returns the
// target inode itself. The walk goes through the dentry cache and
// uses the file systems' ERR_PTR-returning Lookup.
func (v *VFS) resolveParent(task *kbase.Task, path string, wantParent bool) (*Inode, *Inode, string, kbase.Errno) {
	path = CleanPath(path)
	if path == "" {
		return nil, nil, "", kbase.EINVAL
	}
	sb, rest, err := v.mountFor(path)
	if err != kbase.EOK {
		return nil, nil, "", err
	}
	cur := sb.Root
	var comps []string
	if rest != "" {
		comps = strings.Split(rest, "/")
	}
	for i, c := range comps {
		if len(c) > MaxNameLen {
			return nil, nil, "", kbase.ENAMETOOLONG
		}
		last := i == len(comps)-1
		if wantParent && last {
			if !cur.Mode.IsDir() {
				return nil, nil, "", kbase.ENOTDIR
			}
			return nil, cur, c, kbase.EOK
		}
		if !cur.Mode.IsDir() {
			return nil, nil, "", kbase.ENOTDIR
		}
		next, e := v.lookupCached(task, cur, c)
		if e != kbase.EOK {
			return nil, nil, "", e
		}
		cur = next
	}
	if wantParent {
		// Path was the mount root itself; it has no parent here.
		return nil, nil, "", kbase.EINVAL
	}
	return cur, nil, "", kbase.EOK
}

// lookupCached consults the dcache, falling back to the file system's
// Lookup and caching the result (including negatives).
func (v *VFS) lookupCached(task *kbase.Task, dir *Inode, name string) (*Inode, kbase.Errno) {
	if ino, ok := v.dcache.lookup(dir.Sb, dir.Ino, name); ok {
		tpLookup.Emit(task.ID(), dir.Ino, 1)
		if ino == nil {
			return nil, kbase.ENOENT
		}
		return ino, kbase.EOK
	}
	tpLookup.Emit(task.ID(), dir.Ino, 0)
	child, e := dir.Ops.LookupTyped(task, dir, name).Get()
	if e != kbase.EOK {
		if e == kbase.ENOENT {
			v.dcache.insert(dir.Sb, dir.Ino, name, nil) // negative entry
		}
		return nil, e
	}
	v.dcache.insert(dir.Sb, dir.Ino, name, child)
	return child, kbase.EOK
}

// DcacheStats reports dentry cache hits, misses, and size. It is the
// legacy shim over the same counters CollectMetrics registers on the
// unified metrics plane.
func (v *VFS) DcacheStats() (hits, misses uint64, size int) { return v.dcache.stats() }

// CollectMetrics enumerates the VFS counters — dentry cache and open-
// file table — for the ktrace metrics registry (register with
// m.Register("vfs", v.CollectMetrics)).
func (v *VFS) CollectMetrics(emit func(name string, value uint64)) {
	hits, misses, size := v.dcache.stats()
	emit("dcache_hits", hits)
	emit("dcache_misses", misses)
	emit("dcache_size", uint64(size))
	emit("open_files", uint64(v.OpenFiles()))
}

// doOpen opens path, honoring OCreate/OExcl/OTrunc, and returns a file
// descriptor.
func (v *VFS) doOpen(task *kbase.Task, path string, flags int) (int, kbase.Errno) {
	ino, err := v.doResolve(task, path)
	switch {
	case err == kbase.ENOENT && flags&OCreate != 0:
		_, parent, name, perr := v.resolveParent(task, path, true)
		if perr != kbase.EOK {
			return -1, perr
		}
		created, cerr := parent.Ops.CreateTyped(task, parent, name, ModeRegular).Get()
		if cerr != kbase.EOK {
			return -1, cerr
		}
		v.dcache.invalidate(parent.Sb, parent.Ino, name)
		ino = created
	case err != kbase.EOK:
		return -1, err
	case flags&OCreate != 0 && flags&OExcl != 0:
		return -1, kbase.EEXIST
	}
	if ino.Mode.IsDir() && flags&accessMask != ORdOnly {
		return -1, kbase.EISDIR
	}
	f := &File{Inode: ino, Flags: flags, path: CleanPath(path)}
	if flags&OTrunc != 0 && f.writable() && ino.Mode.IsRegular() {
		if err := ino.FileOps.Truncate(task, ino, 0); err != kbase.EOK {
			return -1, err
		}
	}
	v.mu.Lock()
	fd := v.nextFD
	v.nextFD++
	v.files[fd] = f
	ino.openRef()
	v.mu.Unlock()
	return fd, kbase.EOK
}

// doClose closes a descriptor. When it was the inode's last open
// descriptor, the owning file system's Release hook (if implemented)
// runs outside the file-table lock — it may do journaled I/O to
// reclaim an orphan's storage.
func (v *VFS) doClose(task *kbase.Task, fd int) kbase.Errno {
	v.mu.Lock()
	f, ok := v.files[fd]
	if !ok {
		v.mu.Unlock()
		return kbase.EBADF
	}
	delete(v.files, fd)
	v.mu.Unlock()
	if f.Inode.openUnref() == 0 {
		if r, ok := f.Inode.FileOps.(ReleaseOps); ok {
			r.Release(task, f.Inode)
		}
	}
	return kbase.EOK
}

// file fetches an open file by descriptor.
func (v *VFS) file(fd int) (*File, kbase.Errno) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	f, ok := v.files[fd]
	if !ok {
		return nil, kbase.EBADF
	}
	return f, kbase.EOK
}

// OpenFiles returns the number of open descriptors.
func (v *VFS) OpenFiles() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.files)
}

// doRead reads from the file position.
func (v *VFS) doRead(task *kbase.Task, fd int, buf []byte) (int, kbase.Errno) {
	f, err := v.file(fd)
	if err != kbase.EOK {
		return 0, err
	}
	if !f.readable() {
		return 0, kbase.EBADF
	}
	if f.Inode.Mode.IsDir() {
		// Directories open read-only but read(2) on them is EISDIR,
		// uniformly across modules (fuzzer-found: extlike returned
		// EOF, safefs ENOENT).
		return 0, kbase.EISDIR
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, e := f.Inode.FileOps.Read(task, f.Inode, buf, f.pos)
	f.pos += int64(n)
	return n, e
}

// doPread reads at an explicit offset without moving the position.
func (v *VFS) doPread(task *kbase.Task, fd int, buf []byte, off int64) (int, kbase.Errno) {
	f, err := v.file(fd)
	if err != kbase.EOK {
		return 0, err
	}
	if !f.readable() {
		return 0, kbase.EBADF
	}
	if f.Inode.Mode.IsDir() {
		return 0, kbase.EISDIR
	}
	if off < 0 {
		return 0, kbase.EINVAL
	}
	return f.Inode.FileOps.Read(task, f.Inode, buf, off)
}

// doWrite writes at the file position (or end, with OAppend) using the
// legacy write_begin / write_copy / write_end protocol — the VFS
// ferries the file system's untyped private state between the calls.
func (v *VFS) doWrite(task *kbase.Task, fd int, data []byte) (int, kbase.Errno) {
	f, err := v.file(fd)
	if err != kbase.EOK {
		return 0, err
	}
	if !f.writable() {
		return 0, kbase.EBADF
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	off := f.pos
	if f.Flags&OAppend != 0 {
		// One of the call paths that DOES take i_lock for i_size.
		off = f.Inode.SizeRead(task)
	}
	n, e := v.writeAt(task, f.Inode, data, off)
	f.pos = off + int64(n)
	return n, e
}

// doPwrite writes at an explicit offset.
func (v *VFS) doPwrite(task *kbase.Task, fd int, data []byte, off int64) (int, kbase.Errno) {
	f, err := v.file(fd)
	if err != kbase.EOK {
		return 0, err
	}
	if !f.writable() {
		return 0, kbase.EBADF
	}
	if off < 0 {
		return 0, kbase.EINVAL
	}
	return v.writeAt(task, f.Inode, data, off)
}

// writeAt drives the three-phase legacy write protocol.
func (v *VFS) writeAt(task *kbase.Task, ino *Inode, data []byte, off int64) (int, kbase.Errno) {
	private, err := ino.FileOps.WriteBegin(task, ino, off, len(data))
	if err != kbase.EOK {
		return 0, err
	}
	v.mu.RLock()
	det := v.detector
	v.mu.RUnlock()
	if det != nil {
		// Unwrap the envelope so the detector learns the file
		// system's own token type, not vfs.WriteState.
		det.Check("vfs.write_private."+ino.Sb.FSType, private.v)
	}
	n, err := ino.FileOps.WriteCopy(task, ino, off, data, private)
	if err != kbase.EOK {
		return n, err
	}
	if err := ino.FileOps.WriteEnd(task, ino, off, n, private); err != kbase.EOK {
		return n, err
	}
	ino.Mtime = v.clock.Advance(1)
	return n, kbase.EOK
}

// Whence values for Lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// doLseek repositions the file offset.
func (v *VFS) doLseek(task *kbase.Task, fd int, off int64, whence int) (int64, kbase.Errno) {
	f, err := v.file(fd)
	if err != kbase.EOK {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.pos
	case SeekEnd:
		base = f.Inode.SizeRead(task)
	default:
		return 0, kbase.EINVAL
	}
	np := base + off
	if np < 0 {
		return 0, kbase.EINVAL
	}
	f.pos = np
	return np, kbase.EOK
}

// doFsync flushes one file.
func (v *VFS) doFsync(task *kbase.Task, fd int) kbase.Errno {
	f, err := v.file(fd)
	if err != kbase.EOK {
		return err
	}
	return f.Inode.FileOps.Fsync(task, f.Inode)
}

// doTruncate sets a file's size by path.
func (v *VFS) doTruncate(task *kbase.Task, path string, size int64) kbase.Errno {
	if size < 0 {
		return kbase.EINVAL
	}
	ino, err := v.doResolve(task, path)
	if err != kbase.EOK {
		return err
	}
	if ino.Mode.IsDir() {
		return kbase.EISDIR
	}
	return ino.FileOps.Truncate(task, ino, size)
}

// doStat returns metadata for path.
func (v *VFS) doStat(task *kbase.Task, path string) (Stat, kbase.Errno) {
	ino, err := v.doResolve(task, path)
	if err != kbase.EOK {
		return Stat{}, err
	}
	return Stat{
		Ino:   ino.Ino,
		Mode:  ino.Mode,
		Size:  ino.SizeRead(task),
		Nlink: ino.Nlink,
		Ctime: ino.Ctime,
		Mtime: ino.Mtime,
	}, kbase.EOK
}

// doMkdir creates a directory.
func (v *VFS) doMkdir(task *kbase.Task, path string) kbase.Errno {
	_, parent, name, err := v.resolveParent(task, path, true)
	if err != kbase.EOK {
		return err
	}
	if _, e := v.lookupCached(task, parent, name); e == kbase.EOK {
		return kbase.EEXIST
	}
	if _, e := parent.Ops.MkdirTyped(task, parent, name).Get(); e != kbase.EOK {
		return e
	}
	v.dcache.invalidate(parent.Sb, parent.Ino, name)
	return kbase.EOK
}

// doRmdir removes an empty directory.
func (v *VFS) doRmdir(task *kbase.Task, path string) kbase.Errno {
	_, parent, name, err := v.resolveParent(task, path, true)
	if err != kbase.EOK {
		return err
	}
	if err := parent.Ops.Rmdir(task, parent, name); err != kbase.EOK {
		return err
	}
	v.dcache.invalidate(parent.Sb, parent.Ino, name)
	return kbase.EOK
}

// doUnlink removes a file.
func (v *VFS) doUnlink(task *kbase.Task, path string) kbase.Errno {
	_, parent, name, err := v.resolveParent(task, path, true)
	if err != kbase.EOK {
		return err
	}
	if err := parent.Ops.Unlink(task, parent, name); err != kbase.EOK {
		return err
	}
	v.dcache.invalidate(parent.Sb, parent.Ino, name)
	return kbase.EOK
}

// doRename moves oldPath to newPath. Cross-mount renames return EXDEV.
func (v *VFS) doRename(task *kbase.Task, oldPath, newPath string) kbase.Errno {
	// Ancestry guard: moving a directory beneath itself would detach
	// it from the tree. Only the VFS sees both full paths, so the
	// check lives here (as Linux's lock_rename subtree check does);
	// file systems see just (parent, name) pairs.
	if strings.HasPrefix(CleanPath(newPath), CleanPath(oldPath)+"/") {
		return kbase.EINVAL
	}
	_, oldParent, oldName, err := v.resolveParent(task, oldPath, true)
	if err != kbase.EOK {
		return err
	}
	_, newParent, newName, err := v.resolveParent(task, newPath, true)
	if err != kbase.EOK {
		return err
	}
	if oldParent.Sb != newParent.Sb {
		return kbase.EXDEV
	}
	if err := oldParent.Ops.Rename(task, oldParent, oldName, newParent, newName); err != kbase.EOK {
		return err
	}
	v.dcache.invalidate(oldParent.Sb, oldParent.Ino, oldName)
	v.dcache.invalidate(newParent.Sb, newParent.Ino, newName)
	// A renamed directory changes the meaning of every cached path
	// beneath it; drop conservatively.
	v.dcache.invalidateDir(oldParent.Sb, oldParent.Ino)
	v.dcache.invalidateDir(newParent.Sb, newParent.Ino)
	return kbase.EOK
}

// doReadDir lists a directory.
func (v *VFS) doReadDir(task *kbase.Task, path string) ([]DirEntry, kbase.Errno) {
	ino, err := v.doResolve(task, path)
	if err != kbase.EOK {
		return nil, err
	}
	if !ino.Mode.IsDir() {
		return nil, kbase.ENOTDIR
	}
	ents, e := ino.Ops.ReadDir(task, ino)
	if e != kbase.EOK {
		return nil, e
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	return ents, kbase.EOK
}

// doStatfs reports usage of the file system owning path.
func (v *VFS) doStatfs(task *kbase.Task, path string) (StatFS, kbase.Errno) {
	ino, err := v.doResolve(task, path)
	if err != kbase.EOK {
		return StatFS{}, err
	}
	if ino.Sb.Ops == nil {
		return StatFS{}, kbase.ENOSYS
	}
	return ino.Sb.Ops.Statfs(task)
}

// doSyncAll flushes every mounted file system.
func (v *VFS) doSyncAll(task *kbase.Task) kbase.Errno {
	v.mu.Lock()
	sbs := make([]*SuperBlock, 0, len(v.mounts))
	for _, m := range v.mounts {
		sbs = append(sbs, m.sb)
	}
	v.mu.Unlock()
	var first kbase.Errno = kbase.EOK
	for _, sb := range sbs {
		if sb.Ops == nil {
			continue
		}
		if err := sb.Ops.SyncFS(task); err != kbase.EOK && first == kbase.EOK {
			first = err
		}
	}
	return first
}
