package vfs

import (
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/safety/typedapi"
)

// Typed inode operations: the completed Step-2 migration away from
// the ERR_PTR methods the original InodeOps table carried. Every file
// system implements TypedInodeOps directly — Lookup/Create/Mkdir
// return typedapi.Result, so no error ever travels inside a pointer —
// and the legacy table, the adapter shim, and the ERR_PTR
// encode/decode helpers are gone. kerncheck's errptr pass now runs at
// zero findings tree-wide and enforces that the convention never
// returns.

// TypedInodeOps is the inode_operations table. The non-creating
// methods return plain Errno; the three methods that yield an inode
// return Result-carrying variants.
type TypedInodeOps interface {
	// LookupTyped resolves name within dir.
	LookupTyped(task *kbase.Task, dir *Inode, name string) typedapi.Result[*Inode]
	// CreateTyped makes a new regular file entry in dir.
	CreateTyped(task *kbase.Task, dir *Inode, name string, mode FileMode) typedapi.Result[*Inode]
	// MkdirTyped creates a directory in dir.
	MkdirTyped(task *kbase.Task, dir *Inode, name string) typedapi.Result[*Inode]
	// Unlink removes a non-directory entry.
	Unlink(task *kbase.Task, dir *Inode, name string) kbase.Errno
	// Rmdir removes an empty directory.
	Rmdir(task *kbase.Task, dir *Inode, name string) kbase.Errno
	// Rename moves oldName in oldDir to newName in newDir.
	Rename(task *kbase.Task, oldDir *Inode, oldName string, newDir *Inode, newName string) kbase.Errno
	// ReadDir lists dir.
	ReadDir(task *kbase.Task, dir *Inode) ([]DirEntry, kbase.Errno)
}

// SetPrivate hangs the owning file system's per-inode state on ino.
// Together with PrivateAs it is the only crossing into the
// dynamically-typed i_private field.
func SetPrivate[T any](ino *Inode, v T) {
	ino.private = v
}

// PrivateAs downcasts the i_private analogue to the owning file
// system's state type. File systems use this accessor instead of
// asserting on an exposed any field, so the unavoidable downcast
// happens in exactly one audited place — the package that declares
// the untyped field.
func PrivateAs[T any](ino *Inode) (T, bool) {
	v, ok := ino.private.(T)
	return v, ok
}

// SetSBPrivate is SetPrivate for the superblock's s_fs_info analogue.
func SetSBPrivate[T any](sb *SuperBlock, v T) {
	sb.private = v
}

// SBPrivateAs is PrivateAs for the superblock's s_fs_info analogue.
func SBPrivateAs[T any](sb *SuperBlock) (T, bool) {
	v, ok := sb.private.(T)
	return v, ok
}
