package vfs

import (
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/safety/typedapi"
)

// Typed inode operations: the Step-2 migration path away from the
// ERR_PTR methods of InodeOps. A converted file system implements
// TypedInodeOps — Lookup/Create/Mkdir return typedapi.Result, so no
// error ever travels inside a pointer — and registers it with
// AdaptTyped. The VFS dispatches typed-first at its call sites, so a
// converted file system never touches the ERR_PTR convention at all;
// the compatibility shim below is the single place the two styles
// meet, and it lives here in the legacy layer where kerncheck's
// errptr ratchet tracks it.

// TypedInodeOps is the typed inode_operations table. The non-creating
// methods keep their InodeOps signatures (they already return plain
// Errno); the three ERR_PTR methods are replaced by Result-returning
// variants.
type TypedInodeOps interface {
	// LookupTyped resolves name within dir.
	LookupTyped(task *kbase.Task, dir *Inode, name string) typedapi.Result[*Inode]
	// CreateTyped makes a new regular file entry in dir.
	CreateTyped(task *kbase.Task, dir *Inode, name string, mode FileMode) typedapi.Result[*Inode]
	// MkdirTyped creates a directory in dir.
	MkdirTyped(task *kbase.Task, dir *Inode, name string) typedapi.Result[*Inode]
	// Unlink removes a non-directory entry.
	Unlink(task *kbase.Task, dir *Inode, name string) kbase.Errno
	// Rmdir removes an empty directory.
	Rmdir(task *kbase.Task, dir *Inode, name string) kbase.Errno
	// Rename moves oldName in oldDir to newName in newDir.
	Rename(task *kbase.Task, oldDir *Inode, oldName string, newDir *Inode, newName string) kbase.Errno
	// ReadDir lists dir.
	ReadDir(task *kbase.Task, dir *Inode) ([]DirEntry, kbase.Errno)
}

// typedAdapter bridges a TypedInodeOps to the legacy InodeOps table
// for unconverted callers. The embedded interface also keeps the
// typed methods visible, so the VFS's typed-first dispatch finds them.
type typedAdapter struct {
	TypedInodeOps
}

func (a typedAdapter) Lookup(task *kbase.Task, dir *Inode, name string) *Inode {
	return errPtrOf(a.LookupTyped(task, dir, name))
}

func (a typedAdapter) Create(task *kbase.Task, dir *Inode, name string, mode FileMode) *Inode {
	return errPtrOf(a.CreateTyped(task, dir, name, mode))
}

func (a typedAdapter) Mkdir(task *kbase.Task, dir *Inode, name string) *Inode {
	return errPtrOf(a.MkdirTyped(task, dir, name))
}

// errPtrOf lowers a Result to the ERR_PTR convention — the one audited
// place a typed file system's errors get folded back into pointers.
func errPtrOf(r typedapi.Result[*Inode]) *Inode {
	ino, err := r.Get()
	if err != kbase.EOK {
		return kbase.ErrPtr[Inode](err)
	}
	return ino
}

// AdaptTyped wraps a typed operation table as a legacy InodeOps. The
// returned value still satisfies TypedInodeOps, so VFS paths that
// dispatch typed-first bypass the shim entirely.
func AdaptTyped(ops TypedInodeOps) InodeOps {
	return typedAdapter{TypedInodeOps: ops}
}

// opsLookup is the VFS-internal typed-first dispatch for Lookup.
func opsLookup(task *kbase.Task, dir *Inode, name string) typedapi.Result[*Inode] {
	if t, ok := dir.Ops.(TypedInodeOps); ok {
		return t.LookupTyped(task, dir, name)
	}
	return resultOf(dir.Ops.Lookup(task, dir, name))
}

// opsCreate is the typed-first dispatch for Create.
func opsCreate(task *kbase.Task, dir *Inode, name string, mode FileMode) typedapi.Result[*Inode] {
	if t, ok := dir.Ops.(TypedInodeOps); ok {
		return t.CreateTyped(task, dir, name, mode)
	}
	return resultOf(dir.Ops.Create(task, dir, name, mode))
}

// opsMkdir is the typed-first dispatch for Mkdir.
func opsMkdir(task *kbase.Task, dir *Inode, name string) typedapi.Result[*Inode] {
	if t, ok := dir.Ops.(TypedInodeOps); ok {
		return t.MkdirTyped(task, dir, name)
	}
	return resultOf(dir.Ops.Mkdir(task, dir, name))
}

// resultOf lifts a legacy ERR_PTR return into a Result — the decode
// half of the shim, likewise confined to this file.
func resultOf(ino *Inode) typedapi.Result[*Inode] {
	if kbase.IsErr(ino) {
		return typedapi.Err[*Inode](kbase.PtrErr(ino))
	}
	return typedapi.Ok(ino)
}

// PrivateAs downcasts ino.Private, the i_private analogue, to the
// owning file system's state type. Converted file systems use this
// accessor instead of asserting on the any-typed field directly, so
// the unavoidable downcast happens in exactly one audited place — the
// package that declares the untyped field.
func PrivateAs[T any](ino *Inode) (T, bool) {
	v, ok := ino.Private.(T)
	return v, ok
}

// SBPrivateAs is PrivateAs for the superblock's s_fs_info analogue.
func SBPrivateAs[T any](sb *SuperBlock) (T, bool) {
	v, ok := sb.Private.(T)
	return v, ok
}
