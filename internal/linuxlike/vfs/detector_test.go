package vfs_test

import (
	"testing"

	"safelinux/internal/linuxlike/fs/ramfs"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
	"safelinux/internal/safety/typedapi"
)

// TestBoundaryDetectorLearnsAndEnforces wires the §4.2 type-confusion
// detector into the VFS write path: a known-good workload teaches it
// the per-FS token types, after which a confused module is caught on
// its first crossing — before the downstream cast.
func TestBoundaryDetectorLearnsAndEnforces(t *testing.T) {
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	defer kbase.InstallRecorder(prev)

	det := typedapi.NewDetector()
	det.LearnMode = true

	// Phase 1: learn from a healthy ramfs.
	v := vfs.New(nil)
	task := kbase.NewTask()
	v.RegisterFS(&ramfs.FS{})
	v.Mount(task, "/", "ramfs", vfs.MountData{})
	v.InstrumentBoundaries(det)
	fd, _ := v.Open(task, "/train", vfs.OWrOnly|vfs.OCreate)
	for i := 0; i < 5; i++ {
		if _, err := v.Write(task, fd, []byte("training")); err != kbase.EOK {
			t.Fatalf("training write: %v", err)
		}
	}
	v.Close(fd)
	st := det.Stats()
	if len(st) != 1 || st[0].Crossings != 5 || st[0].Confusions != 0 {
		t.Fatalf("after training: %+v", st)
	}

	// Phase 2: the same detector observes a confused module.
	v2 := vfs.New(nil)
	v2.RegisterFS(&ramfs.FS{ConfuseWriteEnd: true})
	v2.Mount(task, "/", "ramfs", vfs.MountData{})
	v2.InstrumentBoundaries(det)
	fd2, _ := v2.Open(task, "/victim", vfs.OWrOnly|vfs.OCreate)
	v2.Write(task, fd2, []byte("boom"))
	v2.Close(fd2)

	found := false
	for _, s := range det.Stats() {
		if s.Boundary == "vfs.write_private.ramfs" && s.Confusions > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("detector missed the confusion: %+v", det.Stats())
	}
	if rec.Count(kbase.OopsTypeConfusion) == 0 {
		t.Fatalf("confusion not reported")
	}
}

// TestBoundaryDetectorPerFSTypes: two file systems with different
// token types train distinct boundaries; neither confuses the other.
func TestBoundaryDetectorPerFSTypes(t *testing.T) {
	det := typedapi.NewDetector()
	det.LearnMode = true
	task := kbase.NewTask()

	for _, name := range []string{"a", "b"} {
		v := vfs.New(nil)
		v.RegisterFS(&ramfs.FS{})
		v.Mount(task, "/", "ramfs", vfs.MountData{})
		v.InstrumentBoundaries(det)
		fd, _ := v.Open(task, "/"+name, vfs.OWrOnly|vfs.OCreate)
		v.Write(task, fd, []byte(name))
		v.Close(fd)
	}
	for _, s := range det.Stats() {
		if s.Confusions != 0 {
			t.Fatalf("cross-instance false positive: %+v", s)
		}
	}
}
