// Package vfs implements the virtual file system layer of the
// simulated kernel in the legacy Linux style: a shared mutable Inode
// structure passed by pointer between the VFS and file systems, an
// ERR_PTR-returning Lookup, a write_begin/write_end protocol that
// hands file-system-private state through an untyped field, and an
// i_size field whose locking contract is "maybe i_lock" (paper §4.3).
//
// The safety framework's Step-1 work (internal/safety/module) wraps
// this layer in a modular interface; Steps 2-4 replace individual
// file systems behind it.
package vfs

import (
	"safelinux/internal/linuxlike/kbase"
)

// FileMode classifies an inode.
type FileMode uint16

// Inode kinds.
const (
	ModeRegular FileMode = 1 << iota
	ModeDir
	ModeSymlink
)

// IsDir reports whether the mode is a directory.
func (m FileMode) IsDir() bool { return m&ModeDir != 0 }

// IsRegular reports whether the mode is a regular file.
func (m FileMode) IsRegular() bool { return m&ModeRegular != 0 }

// MaxNameLen bounds one path component, as NAME_MAX does.
const MaxNameLen = 255

// ILockClass is the lock class shared by every inode's i_lock.
var ILockClass = kbase.NewLockClass("inode.i_lock")

// Inode is the kernel's generic in-memory inode. It is shared
// mutably between the VFS and the owning file system, with the
// paper's §4.3 pathology preserved verbatim: ISize is documented as
// "maybe protected" by ILock — some VFS paths take the lock before
// calling into the file system, others do not, and the file system
// updates ISize itself on write paths.
type Inode struct {
	Ino   uint64
	Mode  FileMode
	Nlink uint32

	// ILock is i_lock. Three fields are "explicitly protected" by it
	// (Nlink, Ctime, Mtime) — but ISize is only maybe protected,
	// according to the relevant comment.
	ILock *kbase.SpinLock

	// ISize is the file size in bytes. Maybe protected by ILock.
	ISize int64

	Ctime uint64 // inode change time, jiffies
	Mtime uint64 // data modification time, jiffies

	Sb *SuperBlock

	// Ops is the file system's inode operation table.
	Ops InodeOps

	// FileOps is the file system's file operation table.
	FileOps FileOps

	// Private is the i_private analogue: the owning file system
	// hangs its per-inode state here as an untyped value and casts
	// it back on every call. Nothing stops another component from
	// stomping on it.
	Private any
}

// SizeRead returns ISize under ILock — the disciplined accessor that
// only some call paths use.
func (i *Inode) SizeRead(task *kbase.Task) int64 {
	i.ILock.Lock(task)
	defer i.ILock.Unlock(task)
	return i.ISize
}

// SizeWrite updates ISize under ILock.
func (i *Inode) SizeWrite(task *kbase.Task, size int64) {
	i.ILock.Lock(task)
	i.ISize = size
	i.ILock.Unlock(task)
}

// DirEntry is one directory entry as returned by ReadDir.
type DirEntry struct {
	Name string
	Ino  uint64
	Mode FileMode
}

// InodeOps is the inode_operations table a file system implements.
// Lookup and Create follow the kernel's ERR_PTR convention: they
// return a sentinel pointer (kbase.ErrPtr) on failure, which the
// caller must test with kbase.IsErr before use.
type InodeOps interface {
	// Lookup resolves name within dir. Returns the inode, or an
	// ERR_PTR sentinel (ENOENT if absent).
	Lookup(task *kbase.Task, dir *Inode, name string) *Inode
	// Create makes a new regular file or directory entry in dir.
	// Returns the new inode or an ERR_PTR sentinel.
	Create(task *kbase.Task, dir *Inode, name string, mode FileMode) *Inode
	// Unlink removes a non-directory entry.
	Unlink(task *kbase.Task, dir *Inode, name string) kbase.Errno
	// Mkdir creates a directory. Returns the new inode or ERR_PTR.
	Mkdir(task *kbase.Task, dir *Inode, name string) *Inode
	// Rmdir removes an empty directory.
	Rmdir(task *kbase.Task, dir *Inode, name string) kbase.Errno
	// Rename moves oldName in oldDir to newName in newDir,
	// replacing any existing non-directory target.
	Rename(task *kbase.Task, oldDir *Inode, oldName string, newDir *Inode, newName string) kbase.Errno
	// ReadDir lists dir.
	ReadDir(task *kbase.Task, dir *Inode) ([]DirEntry, kbase.Errno)
}

// FileOps is the file_operations table. The WriteBegin/WriteEnd pair
// reproduces the paper's §4.2 example: the file system passes custom
// state from WriteBegin to WriteEnd through an untyped value that the
// VFS merely ferries — and must cast back, trusting it was theirs.
type FileOps interface {
	// Read copies up to len(buf) bytes from offset off.
	Read(task *kbase.Task, ino *Inode, buf []byte, off int64) (int, kbase.Errno)
	// WriteBegin prepares a write of n bytes at off, returning
	// file-system-private state that the VFS passes to WriteEnd.
	WriteBegin(task *kbase.Task, ino *Inode, off int64, n int) (any, kbase.Errno)
	// WriteCopy transfers the payload for a prepared write.
	WriteCopy(task *kbase.Task, ino *Inode, off int64, data []byte, private any) (int, kbase.Errno)
	// WriteEnd completes the write started by WriteBegin.
	WriteEnd(task *kbase.Task, ino *Inode, off int64, n int, private any) kbase.Errno
	// Fsync makes the file's data and metadata durable.
	Fsync(task *kbase.Task, ino *Inode) kbase.Errno
	// Truncate sets the file size.
	Truncate(task *kbase.Task, ino *Inode, size int64) kbase.Errno
}

// SuperBlockOps is the super_operations table.
type SuperBlockOps interface {
	// Statfs reports usage.
	Statfs(task *kbase.Task) (StatFS, kbase.Errno)
	// SyncFS flushes everything to stable storage.
	SyncFS(task *kbase.Task) kbase.Errno
	// Unmount releases the file system instance.
	Unmount(task *kbase.Task) kbase.Errno
}

// StatFS is file-system-level usage information.
type StatFS struct {
	TotalBlocks uint64
	FreeBlocks  uint64
	TotalInodes uint64
	FreeInodes  uint64
	FSName      string
}

// SuperBlock is one mounted file system instance.
type SuperBlock struct {
	FSType string
	Root   *Inode
	Ops    SuperBlockOps
	// Private is the s_fs_info analogue.
	Private any
}

// FileSystemType registers a mountable file system implementation.
type FileSystemType interface {
	// Name is the fs type name ("ramfs", "extlike", ...).
	Name() string
	// Mount creates a superblock instance. The untyped data argument
	// carries mount options and backing devices, in the legacy
	// void*-ish style.
	Mount(task *kbase.Task, data any) (*SuperBlock, kbase.Errno)
}

// Stat is per-inode metadata returned by the VFS.
type Stat struct {
	Ino   uint64
	Mode  FileMode
	Size  int64
	Nlink uint32
	Ctime uint64
	Mtime uint64
}
