// Package vfs implements the virtual file system layer of the
// simulated kernel in the legacy Linux style: a shared mutable Inode
// structure passed by pointer between the VFS and file systems, a
// write_begin/write_end protocol that hands file-system-private state
// between calls, and an i_size field whose locking contract is "maybe
// i_lock" (paper §4.3). The ERR_PTR-returning operation table and the
// bare-any private fields are gone: every file system implements
// TypedInodeOps (errors travel in typedapi.Result, never inside
// pointers) and per-inode state crosses the boundary through the
// typed accessors in typed.go.
//
// The safety framework's Step-1 work (internal/safety/module) wraps
// this layer in a modular interface; Steps 2-4 replace individual
// file systems behind it.
package vfs

import (
	"sync/atomic"

	"safelinux/internal/linuxlike/kbase"
)

// FileMode classifies an inode.
type FileMode uint16

// Inode kinds.
const (
	ModeRegular FileMode = 1 << iota
	ModeDir
	ModeSymlink
)

// IsDir reports whether the mode is a directory.
func (m FileMode) IsDir() bool { return m&ModeDir != 0 }

// IsRegular reports whether the mode is a regular file.
func (m FileMode) IsRegular() bool { return m&ModeRegular != 0 }

// MaxNameLen bounds one path component, as NAME_MAX does.
const MaxNameLen = 255

// ILockClass is the lock class shared by every inode's i_lock.
var ILockClass = kbase.NewLockClass("inode.i_lock")

// Inode is the kernel's generic in-memory inode. It is shared
// mutably between the VFS and the owning file system, with the
// paper's §4.3 pathology preserved verbatim: ISize is documented as
// "maybe protected" by ILock — some VFS paths take the lock before
// calling into the file system, others do not, and the file system
// updates ISize itself on write paths.
type Inode struct {
	Ino   uint64
	Mode  FileMode
	Nlink uint32

	// ILock is i_lock. Three fields are "explicitly protected" by it
	// (Nlink, Ctime, Mtime) — but ISize is only maybe protected,
	// according to the relevant comment.
	ILock *kbase.SpinLock

	// ISize is the file size in bytes. Maybe protected by ILock.
	ISize int64

	Ctime uint64 // inode change time, jiffies
	Mtime uint64 // data modification time, jiffies

	Sb *SuperBlock

	// Ops is the file system's inode operation table.
	Ops TypedInodeOps

	// FileOps is the file system's file operation table.
	FileOps FileOps

	// private is the i_private analogue. It stays dynamically typed
	// underneath — that is the legacy design being modeled — but the
	// field is unexported, so every crossing of the boundary goes
	// through SetPrivate/PrivateAs where the one audited downcast
	// lives.
	private any

	// opens counts live descriptors referencing this inode. The VFS
	// maintains it on open/close/remap; file systems read it
	// (OpenCount) when the last link goes away to decide whether
	// storage reclaim must be deferred to the last close — the POSIX
	// orphan-file contract.
	opens atomic.Int32
}

// OpenCount returns the number of open descriptors on the inode.
func (i *Inode) OpenCount() int { return int(i.opens.Load()) }

func (i *Inode) openRef()         { i.opens.Add(1) }
func (i *Inode) openUnref() int32 { return i.opens.Add(-1) }

// SizeRead returns ISize under ILock — the disciplined accessor that
// only some call paths use.
func (i *Inode) SizeRead(task *kbase.Task) int64 {
	i.ILock.Lock(task)
	defer i.ILock.Unlock(task)
	return i.ISize
}

// SizeWrite updates ISize under ILock.
func (i *Inode) SizeWrite(task *kbase.Task, size int64) {
	i.ILock.Lock(task)
	i.ISize = size
	i.ILock.Unlock(task)
}

// DirEntry is one directory entry as returned by ReadDir.
type DirEntry struct {
	Name string
	Ino  uint64
	Mode FileMode
}

// WriteState carries a file system's private write-protocol state
// from WriteBegin through WriteCopy to WriteEnd. The VFS still only
// ferries it — the paper's §4.2 example — but the payload rides in an
// opaque envelope instead of a bare any, so the downcast happens in
// exactly one audited accessor (WriteStateAs) and the type-confusion
// detector can keep watching the inner dynamic type.
type WriteState struct {
	v any
}

// NewWriteState wraps a file system's private write state.
func NewWriteState[T any](v T) WriteState { return WriteState{v: v} }

// WriteStateAs unwraps the state as the owning file system's type.
func WriteStateAs[T any](s WriteState) (T, bool) {
	v, ok := s.v.(T)
	return v, ok
}

// FileOps is the file_operations table. The WriteBegin/WriteEnd pair
// reproduces the paper's §4.2 example: the file system passes custom
// state from WriteBegin to WriteEnd in a WriteState envelope that the
// VFS merely ferries — and the owner must unwrap, trusting it was
// theirs.
type FileOps interface {
	// Read copies up to len(buf) bytes from offset off.
	Read(task *kbase.Task, ino *Inode, buf []byte, off int64) (int, kbase.Errno)
	// WriteBegin prepares a write of n bytes at off, returning
	// file-system-private state that the VFS passes to WriteEnd.
	WriteBegin(task *kbase.Task, ino *Inode, off int64, n int) (WriteState, kbase.Errno)
	// WriteCopy transfers the payload for a prepared write.
	WriteCopy(task *kbase.Task, ino *Inode, off int64, data []byte, private WriteState) (int, kbase.Errno)
	// WriteEnd completes the write started by WriteBegin.
	WriteEnd(task *kbase.Task, ino *Inode, off int64, n int, private WriteState) kbase.Errno
	// Fsync makes the file's data and metadata durable.
	Fsync(task *kbase.Task, ino *Inode) kbase.Errno
	// Truncate sets the file size.
	Truncate(task *kbase.Task, ino *Inode, size int64) kbase.Errno
}

// ReleaseOps is an optional FileOps extension. The VFS calls Release
// when the last descriptor on an inode is closed, giving the file
// system its one chance to reclaim storage it kept alive for an
// open-but-unlinked file (POSIX: unlink of an open file defers data
// destruction to the final close). File systems without deferred
// state simply don't implement it.
type ReleaseOps interface {
	Release(task *kbase.Task, ino *Inode)
}

// SuperBlockOps is the super_operations table.
type SuperBlockOps interface {
	// Statfs reports usage.
	Statfs(task *kbase.Task) (StatFS, kbase.Errno)
	// SyncFS flushes everything to stable storage.
	SyncFS(task *kbase.Task) kbase.Errno
	// Unmount releases the file system instance.
	Unmount(task *kbase.Task) kbase.Errno
}

// StatFS is file-system-level usage information.
type StatFS struct {
	TotalBlocks uint64
	FreeBlocks  uint64
	TotalInodes uint64
	FreeInodes  uint64
	FSName      string
}

// SuperBlock is one mounted file system instance.
type SuperBlock struct {
	FSType string
	Root   *Inode
	Ops    SuperBlockOps
	// private is the s_fs_info analogue; SetSBPrivate/SBPrivateAs are
	// the audited crossings.
	private any
}

// MountData is the envelope for mount options and backing devices —
// the void*-ish data argument of mount(2), wrapped so the downcast
// happens in the owning file system's MountDataAs call rather than at
// every signature.
type MountData struct {
	v any
}

// NewMountData wraps fs-specific mount data.
func NewMountData[T any](v T) MountData { return MountData{v: v} }

// MountDataAs unwraps mount data as the file system's own type.
func MountDataAs[T any](d MountData) (T, bool) {
	v, ok := d.v.(T)
	return v, ok
}

// FileSystemType registers a mountable file system implementation.
type FileSystemType interface {
	// Name is the fs type name ("ramfs", "extlike", ...).
	Name() string
	// Mount creates a superblock instance; data carries mount options
	// and backing devices in a MountData envelope.
	Mount(task *kbase.Task, data MountData) (*SuperBlock, kbase.Errno)
}

// Stat is per-inode metadata returned by the VFS.
type Stat struct {
	Ino   uint64
	Mode  FileMode
	Size  int64
	Nlink uint32
	Ctime uint64
	Mtime uint64
}
