package vfs

import (
	"fmt"
	"sync"
	"testing"
)

// The dcache used to drop its entire map when it filled — one insert
// past the cap evicted every cached dentry and the hit rate fell off
// a cliff. Now each shard prunes ~1/8 of itself. These are white-box
// tests pinning the sharded structure and the partial eviction.

func TestDcachePartialEviction(t *testing.T) {
	d := newDcache(160) // per-shard cap: 10
	sb := &SuperBlock{}
	ino := &Inode{}
	// Overfill one specific shard.
	target := d.shardFor(1, "x")
	inserted := 0
	for i := 0; inserted < 15; i++ {
		name := fmt.Sprintf("n%d", i)
		if d.shardFor(1, name) != target {
			continue
		}
		d.insert(sb, 1, name, ino)
		inserted++
		target.mu.Lock()
		n := len(target.entries)
		target.mu.Unlock()
		if n == 0 {
			t.Fatalf("shard emptied after insert %d — eviction cliff is back", inserted)
		}
	}
	target.mu.Lock()
	n := len(target.entries)
	target.mu.Unlock()
	// Cap 10, prune len/8+1 (= 2 at the cap) per overflow: the shard
	// must stay near its cap, never collapse toward zero.
	if n < 5 {
		t.Fatalf("shard holds %d entries after overfill; partial eviction should keep most", n)
	}
	if n > 10 {
		t.Fatalf("shard holds %d entries, cap is 10", n)
	}
}

func TestDcacheShardingSpreadsKeys(t *testing.T) {
	d := newDcache(dcacheShards * 64)
	sb := &SuperBlock{}
	ino := &Inode{}
	for i := 0; i < 256; i++ {
		d.insert(sb, uint64(i%7), fmt.Sprintf("file%d", i), ino)
	}
	populated := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		if len(s.entries) > 0 {
			populated++
		}
		s.mu.Unlock()
	}
	if populated < dcacheShards/2 {
		t.Fatalf("only %d/%d shards populated — hash is not spreading", populated, dcacheShards)
	}
}

func TestDcacheConcurrentMixedOps(t *testing.T) {
	d := newDcache(256)
	sb := &SuperBlock{}
	ino := &Inode{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				name := fmt.Sprintf("f%d", i%97)
				dir := uint64(id % 3)
				switch i % 5 {
				case 0:
					d.insert(sb, dir, name, ino)
				case 1:
					d.lookup(sb, dir, name)
				case 2:
					d.invalidate(sb, dir, name)
				case 3:
					d.invalidateDir(sb, dir)
				default:
					d.stats()
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses, _ := d.stats()
	if hits+misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
