package vfs

import (
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/ktrace"
)

// Boundary is the crash-containment hook: when installed, every public
// VFS operation is routed through it, so a panic anywhere below the
// syscall surface (VFS internals, the mounted file system, the buffer
// cache it calls into) is recovered at this line and converted to a
// typed error instead of killing the kernel. The interface is
// satisfied by *compartment.Compartment (structural typing keeps this
// package free of a safety-layer import).
//
// Only the OUTERMOST public entry points route through the boundary;
// internal calls between operations use the unexported doX
// implementations directly. This matters for the drain protocol: a
// nested boundary entry during a drain would wait for the drain that
// is waiting for it.
type Boundary interface {
	Do(task *kbase.Task, op string, fn func() kbase.Errno) kbase.Errno
}

// boundaryBox wraps the interface for atomic installation: workloads
// are already running when the containment plane is wired in.
type boundaryBox struct{ b Boundary }

// SetBoundary installs (or, with nil, removes) the containment
// boundary around the public VFS surface.
func (v *VFS) SetBoundary(b Boundary) {
	if b == nil {
		v.boundary.Store(nil)
		return
	}
	v.boundary.Store(&boundaryBox{b: b})
}

// Every public operation has a pre-registered latency-plane Op: the
// VFS dispatch is where user-visible latency is defined, so this is
// where request spans root and where the per-op histograms (exported
// as vfs.<op>_ns) are fed. Ops are identities, not strings — the
// enabled path never hashes a name (see ktrace.Op).
var (
	opMount    = ktrace.NewOp("vfs:mount")
	opUnmount  = ktrace.NewOp("vfs:unmount")
	opResolve  = ktrace.NewOp("vfs:resolve")
	opOpen     = ktrace.NewOp("vfs:open")
	opClose    = ktrace.NewOp("vfs:close")
	opRead     = ktrace.NewOp("vfs:read")
	opPread    = ktrace.NewOp("vfs:pread")
	opWrite    = ktrace.NewOp("vfs:write")
	opPwrite   = ktrace.NewOp("vfs:pwrite")
	opLseek    = ktrace.NewOp("vfs:lseek")
	opFsync    = ktrace.NewOp("vfs:fsync")
	opTruncate = ktrace.NewOp("vfs:truncate")
	opStat     = ktrace.NewOp("vfs:stat")
	opMkdir    = ktrace.NewOp("vfs:mkdir")
	opRmdir    = ktrace.NewOp("vfs:rmdir")
	opUnlink   = ktrace.NewOp("vfs:unlink")
	opRename   = ktrace.NewOp("vfs:rename")
	opReadDir  = ktrace.NewOp("vfs:readdir")
	opStatfs   = ktrace.NewOp("vfs:statfs")
	opSyncAll  = ktrace.NewOp("vfs:syncall")
)

// guard routes one errno-only operation through the boundary, or runs
// it directly when no boundary is installed. It is also the span
// root / histogram site for the operation.
func (v *VFS) guard(task *kbase.Task, op *ktrace.Op, fn func() kbase.Errno) kbase.Errno {
	t := op.Begin(task)
	defer t.End()
	box := v.boundary.Load()
	if box == nil {
		return fn()
	}
	return box.b.Do(task, op.Short(), fn)
}

// guardRet routes a value-returning operation through the boundary.
// On containment the caller sees the zero value with the boundary's
// typed error (EFAULT for a contained fault, ESHUTDOWN while
// quarantined).
func guardRet[T any](v *VFS, task *kbase.Task, op *ktrace.Op, fn func() (T, kbase.Errno)) (T, kbase.Errno) {
	t := op.Begin(task)
	defer t.End()
	box := v.boundary.Load()
	if box == nil {
		return fn()
	}
	var out T
	err := box.b.Do(task, op.Short(), func() kbase.Errno {
		var e kbase.Errno
		out, e = fn()
		return e
	})
	if err != kbase.EOK {
		var zero T
		return zero, err
	}
	return out, kbase.EOK
}

// Mount mounts fstype at path with fs-specific data. Path must be "/"
// or an existing directory on an already-mounted file system.
func (v *VFS) Mount(task *kbase.Task, path, fstype string, data MountData) kbase.Errno {
	return v.guard(task, opMount, func() kbase.Errno { return v.doMount(task, path, fstype, data) })
}

// Unmount detaches the file system at path.
func (v *VFS) Unmount(task *kbase.Task, path string) kbase.Errno {
	return v.guard(task, opUnmount, func() kbase.Errno { return v.doUnmount(task, path) })
}

// Resolve walks path to an inode.
func (v *VFS) Resolve(task *kbase.Task, path string) (*Inode, kbase.Errno) {
	return guardRet(v, task, opResolve, func() (*Inode, kbase.Errno) { return v.doResolve(task, path) })
}

// Open opens path, honoring OCreate/OExcl/OTrunc, and returns a file
// descriptor.
func (v *VFS) Open(task *kbase.Task, path string, flags int) (int, kbase.Errno) {
	return guardRet(v, task, opOpen, func() (int, kbase.Errno) { return v.doOpen(task, path, flags) })
}

// Close closes a descriptor.
func (v *VFS) Close(fd int) kbase.Errno {
	return v.guard(nil, opClose, func() kbase.Errno { return v.doClose(nil, fd) })
}

// CloseAs is Close with caller-supplied task context: a supervisor
// task closing descriptors mid-migration must bypass the drained gate
// it is itself holding shut.
func (v *VFS) CloseAs(task *kbase.Task, fd int) kbase.Errno {
	return v.guard(task, opClose, func() kbase.Errno { return v.doClose(task, fd) })
}

// Read reads from the file position.
func (v *VFS) Read(task *kbase.Task, fd int, buf []byte) (int, kbase.Errno) {
	return guardRet(v, task, opRead, func() (int, kbase.Errno) { return v.doRead(task, fd, buf) })
}

// Pread reads at an explicit offset without moving the position.
func (v *VFS) Pread(task *kbase.Task, fd int, buf []byte, off int64) (int, kbase.Errno) {
	return guardRet(v, task, opPread, func() (int, kbase.Errno) { return v.doPread(task, fd, buf, off) })
}

// Write writes at the file position (or end, with OAppend) using the
// legacy write_begin / write_copy / write_end protocol.
func (v *VFS) Write(task *kbase.Task, fd int, data []byte) (int, kbase.Errno) {
	return guardRet(v, task, opWrite, func() (int, kbase.Errno) { return v.doWrite(task, fd, data) })
}

// Pwrite writes at an explicit offset.
func (v *VFS) Pwrite(task *kbase.Task, fd int, data []byte, off int64) (int, kbase.Errno) {
	return guardRet(v, task, opPwrite, func() (int, kbase.Errno) { return v.doPwrite(task, fd, data, off) })
}

// Lseek repositions the file offset.
func (v *VFS) Lseek(task *kbase.Task, fd int, off int64, whence int) (int64, kbase.Errno) {
	return guardRet(v, task, opLseek, func() (int64, kbase.Errno) { return v.doLseek(task, fd, off, whence) })
}

// Fsync flushes one file.
func (v *VFS) Fsync(task *kbase.Task, fd int) kbase.Errno {
	return v.guard(task, opFsync, func() kbase.Errno { return v.doFsync(task, fd) })
}

// Truncate sets a file's size by path.
func (v *VFS) Truncate(task *kbase.Task, path string, size int64) kbase.Errno {
	return v.guard(task, opTruncate, func() kbase.Errno { return v.doTruncate(task, path, size) })
}

// Stat returns metadata for path.
func (v *VFS) Stat(task *kbase.Task, path string) (Stat, kbase.Errno) {
	return guardRet(v, task, opStat, func() (Stat, kbase.Errno) { return v.doStat(task, path) })
}

// Mkdir creates a directory.
func (v *VFS) Mkdir(task *kbase.Task, path string) kbase.Errno {
	return v.guard(task, opMkdir, func() kbase.Errno { return v.doMkdir(task, path) })
}

// Rmdir removes an empty directory.
func (v *VFS) Rmdir(task *kbase.Task, path string) kbase.Errno {
	return v.guard(task, opRmdir, func() kbase.Errno { return v.doRmdir(task, path) })
}

// Unlink removes a file.
func (v *VFS) Unlink(task *kbase.Task, path string) kbase.Errno {
	return v.guard(task, opUnlink, func() kbase.Errno { return v.doUnlink(task, path) })
}

// Rename moves oldPath to newPath. Cross-mount renames return EXDEV.
func (v *VFS) Rename(task *kbase.Task, oldPath, newPath string) kbase.Errno {
	return v.guard(task, opRename, func() kbase.Errno { return v.doRename(task, oldPath, newPath) })
}

// ReadDir lists a directory.
func (v *VFS) ReadDir(task *kbase.Task, path string) ([]DirEntry, kbase.Errno) {
	return guardRet(v, task, opReadDir, func() ([]DirEntry, kbase.Errno) { return v.doReadDir(task, path) })
}

// Statfs reports usage of the file system owning path.
func (v *VFS) Statfs(task *kbase.Task, path string) (StatFS, kbase.Errno) {
	return guardRet(v, task, opStatfs, func() (StatFS, kbase.Errno) { return v.doStatfs(task, path) })
}

// SyncAll flushes every mounted file system.
func (v *VFS) SyncAll(task *kbase.Task) kbase.Errno {
	return v.guard(task, opSyncAll, func() kbase.Errno { return v.doSyncAll(task) })
}

// CloseAll force-closes every open descriptor and returns how many it
// closed. The containment supervisor calls this when restarting a
// crashed file system compartment: open files reference state the
// dead instance may have poisoned, so they are revoked — subsequent
// operations on those descriptors fail with EBADF, the crash-visible
// edge of an otherwise transparent restart.
func (v *VFS) CloseAll() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := len(v.files)
	// Drop the open counts but skip Release hooks: the owning
	// instance just crashed and is being rebuilt from its journal —
	// calling into its poisoned state would be worse than the
	// storage leak crash recovery already implies.
	for _, f := range v.files {
		f.Inode.openUnref()
	}
	v.files = make(map[int]*File)
	return n
}

// RemapDescriptors re-points every open descriptor whose inode lives
// on oldSb at the inode resolve returns for the descriptor's open
// path — the live hot-swap migration: the tree has been copied to the
// new file system, so every path resolves to equivalent content, and
// a descriptor held open across the swap keeps working with its
// position intact. Returns how many descriptors were remapped. A path
// that fails to resolve (an open-but-unlinked orphan has no copy)
// aborts with its error; the caller must then abandon the swap, since
// some descriptors may already point at the new file system.
func (v *VFS) RemapDescriptors(oldSb *SuperBlock, resolve func(path string) (*Inode, kbase.Errno)) (int, kbase.Errno) {
	v.mu.Lock()
	var files []*File
	for _, f := range v.files {
		if f.Inode.Sb == oldSb {
			files = append(files, f)
		}
	}
	v.mu.Unlock()
	for i, f := range files {
		ino, err := resolve(f.path)
		if err != kbase.EOK {
			return i, err
		}
		f.mu.Lock()
		// Move the open count with the descriptor. No Release on the
		// old inode: the old file system is retired wholesale after
		// the swap, storage and all.
		f.Inode.openUnref()
		ino.openRef()
		f.Inode = ino
		f.mu.Unlock()
	}
	return len(files), kbase.EOK
}

// DropMount force-detaches the mount at path without consulting the
// file system (no Unmount call into possibly-poisoned code) and
// without the open-files check — CloseAll first. Restart-path only;
// returns EINVAL if nothing is mounted there.
func (v *VFS) DropMount(path string) kbase.Errno {
	path = CleanPath(path)
	v.mu.Lock()
	idx := -1
	for i, m := range v.mounts {
		if m.path == path {
			idx = i
			break
		}
	}
	if idx < 0 {
		v.mu.Unlock()
		return kbase.EINVAL
	}
	sb := v.mounts[idx].sb
	v.mounts = append(v.mounts[:idx], v.mounts[idx+1:]...)
	v.mu.Unlock()
	v.dcache.invalidateSB(sb)
	return kbase.EOK
}
