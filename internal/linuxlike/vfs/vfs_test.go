package vfs_test

import (
	"bytes"
	"testing"

	"safelinux/internal/linuxlike/fs/ramfs"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
)

func newKernel(t *testing.T) (*vfs.VFS, *kbase.Task) {
	t.Helper()
	v := vfs.New(nil)
	task := kbase.NewTask()
	if err := v.RegisterFS(&ramfs.FS{}); err != kbase.EOK {
		t.Fatalf("RegisterFS: %v", err)
	}
	if err := v.Mount(task, "/", "ramfs", vfs.MountData{}); err != kbase.EOK {
		t.Fatalf("Mount: %v", err)
	}
	return v, task
}

func TestCleanPath(t *testing.T) {
	cases := map[string]string{
		"/":            "/",
		"/a/b":         "/a/b",
		"//a///b/":     "/a/b",
		"/a/./b":       "/a/b",
		"/a/../b":      "/b",
		"/..":          "/",
		"/a/b/../../c": "/c",
		"rel/path":     "",
		"":             "",
	}
	for in, want := range cases {
		if got := vfs.CleanPath(in); got != want {
			t.Errorf("CleanPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	v, task := newKernel(t)
	fd, err := v.Open(task, "/hello.txt", vfs.ORdWr|vfs.OCreate)
	if err != kbase.EOK {
		t.Fatalf("Open: %v", err)
	}
	payload := []byte("incremental safety")
	if n, err := v.Write(task, fd, payload); err != kbase.EOK || n != len(payload) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if _, err := v.Lseek(task, fd, 0, vfs.SeekSet); err != kbase.EOK {
		t.Fatalf("Lseek: %v", err)
	}
	got := make([]byte, len(payload))
	if n, err := v.Read(task, fd, got); err != kbase.EOK || n != len(payload) {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Read = %q, want %q", got, payload)
	}
	if err := v.Close(fd); err != kbase.EOK {
		t.Fatalf("Close: %v", err)
	}
	st, err := v.Stat(task, "/hello.txt")
	if err != kbase.EOK {
		t.Fatalf("Stat: %v", err)
	}
	if st.Size != int64(len(payload)) {
		t.Fatalf("Stat.Size = %d, want %d", st.Size, len(payload))
	}
}

func TestOpenFlagsSemantics(t *testing.T) {
	v, task := newKernel(t)
	if _, err := v.Open(task, "/missing", vfs.ORdOnly); err != kbase.ENOENT {
		t.Fatalf("Open missing: %v", err)
	}
	fd, _ := v.Open(task, "/f", vfs.OWrOnly|vfs.OCreate)
	v.Write(task, fd, []byte("abc"))
	v.Close(fd)
	if _, err := v.Open(task, "/f", vfs.OWrOnly|vfs.OCreate|vfs.OExcl); err != kbase.EEXIST {
		t.Fatalf("O_EXCL on existing: %v", err)
	}
	// O_TRUNC empties the file.
	fd, _ = v.Open(task, "/f", vfs.OWrOnly|vfs.OTrunc)
	v.Close(fd)
	st, _ := v.Stat(task, "/f")
	if st.Size != 0 {
		t.Fatalf("size after O_TRUNC = %d", st.Size)
	}
	// Read on write-only fd.
	fd, _ = v.Open(task, "/f", vfs.OWrOnly)
	if _, err := v.Read(task, fd, make([]byte, 1)); err != kbase.EBADF {
		t.Fatalf("Read on O_WRONLY: %v", err)
	}
	// Write on read-only fd.
	fd2, _ := v.Open(task, "/f", vfs.ORdOnly)
	if _, err := v.Write(task, fd2, []byte("x")); err != kbase.EBADF {
		t.Fatalf("Write on O_RDONLY: %v", err)
	}
}

func TestAppendMode(t *testing.T) {
	v, task := newKernel(t)
	fd, _ := v.Open(task, "/log", vfs.OWrOnly|vfs.OCreate)
	v.Write(task, fd, []byte("aaa"))
	v.Close(fd)
	fd, _ = v.Open(task, "/log", vfs.OWrOnly|vfs.OAppend)
	v.Write(task, fd, []byte("bbb"))
	v.Close(fd)
	fd, _ = v.Open(task, "/log", vfs.ORdOnly)
	buf := make([]byte, 16)
	n, _ := v.Read(task, fd, buf)
	if string(buf[:n]) != "aaabbb" {
		t.Fatalf("append result = %q", buf[:n])
	}
}

func TestPreadPwrite(t *testing.T) {
	v, task := newKernel(t)
	fd, _ := v.Open(task, "/p", vfs.ORdWr|vfs.OCreate)
	if _, err := v.Pwrite(task, fd, []byte("world"), 5); err != kbase.EOK {
		t.Fatalf("Pwrite: %v", err)
	}
	if _, err := v.Pwrite(task, fd, []byte("hello"), 0); err != kbase.EOK {
		t.Fatalf("Pwrite: %v", err)
	}
	buf := make([]byte, 5)
	if n, err := v.Pread(task, fd, buf, 5); err != kbase.EOK || n != 5 {
		t.Fatalf("Pread = (%d, %v)", n, err)
	}
	if string(buf) != "world" {
		t.Fatalf("Pread = %q", buf)
	}
	if _, err := v.Pread(task, fd, buf, -1); err != kbase.EINVAL {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestMkdirTreeAndReadDir(t *testing.T) {
	v, task := newKernel(t)
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := v.Mkdir(task, p); err != kbase.EOK {
			t.Fatalf("Mkdir(%s): %v", p, err)
		}
	}
	fd, _ := v.Open(task, "/a/b/file", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	ents, err := v.ReadDir(task, "/a/b")
	if err != kbase.EOK {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 2 || ents[0].Name != "c" || ents[1].Name != "file" {
		t.Fatalf("ReadDir = %+v", ents)
	}
	if err := v.Mkdir(task, "/a"); err != kbase.EEXIST {
		t.Fatalf("Mkdir existing: %v", err)
	}
	if _, err := v.ReadDir(task, "/a/b/file"); err != kbase.ENOTDIR {
		t.Fatalf("ReadDir on file: %v", err)
	}
}

func TestUnlinkAndRmdir(t *testing.T) {
	v, task := newKernel(t)
	v.Mkdir(task, "/d")
	fd, _ := v.Open(task, "/d/f", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	if err := v.Rmdir(task, "/d"); err != kbase.ENOTEMPTY {
		t.Fatalf("Rmdir non-empty: %v", err)
	}
	if err := v.Unlink(task, "/d"); err != kbase.EISDIR {
		t.Fatalf("Unlink dir: %v", err)
	}
	if err := v.Unlink(task, "/d/f"); err != kbase.EOK {
		t.Fatalf("Unlink: %v", err)
	}
	if _, err := v.Stat(task, "/d/f"); err != kbase.ENOENT {
		t.Fatalf("Stat after unlink: %v", err)
	}
	if err := v.Rmdir(task, "/d"); err != kbase.EOK {
		t.Fatalf("Rmdir: %v", err)
	}
	if err := v.Rmdir(task, "/d"); err != kbase.ENOENT {
		t.Fatalf("Rmdir gone: %v", err)
	}
}

func TestRename(t *testing.T) {
	v, task := newKernel(t)
	v.Mkdir(task, "/src")
	v.Mkdir(task, "/dst")
	fd, _ := v.Open(task, "/src/f", vfs.OWrOnly|vfs.OCreate)
	v.Write(task, fd, []byte("data"))
	v.Close(fd)
	if err := v.Rename(task, "/src/f", "/dst/g"); err != kbase.EOK {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := v.Stat(task, "/src/f"); err != kbase.ENOENT {
		t.Fatalf("old name still present: %v", err)
	}
	st, err := v.Stat(task, "/dst/g")
	if err != kbase.EOK || st.Size != 4 {
		t.Fatalf("new name: %v size=%d", err, st.Size)
	}
	// Rename a directory: paths beneath move with it.
	v.Mkdir(task, "/src/sub")
	fd, _ = v.Open(task, "/src/sub/x", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	if err := v.Rename(task, "/src/sub", "/dst/sub"); err != kbase.EOK {
		t.Fatalf("Rename dir: %v", err)
	}
	if _, err := v.Stat(task, "/dst/sub/x"); err != kbase.EOK {
		t.Fatalf("child after dir rename: %v", err)
	}
	if _, err := v.Stat(task, "/src/sub/x"); err != kbase.ENOENT {
		t.Fatalf("old child path alive: %v", err)
	}
}

func TestTruncate(t *testing.T) {
	v, task := newKernel(t)
	fd, _ := v.Open(task, "/t", vfs.OWrOnly|vfs.OCreate)
	v.Write(task, fd, []byte("0123456789"))
	v.Close(fd)
	if err := v.Truncate(task, "/t", 4); err != kbase.EOK {
		t.Fatalf("Truncate: %v", err)
	}
	st, _ := v.Stat(task, "/t")
	if st.Size != 4 {
		t.Fatalf("size = %d", st.Size)
	}
	// Extend with zeros.
	if err := v.Truncate(task, "/t", 8); err != kbase.EOK {
		t.Fatalf("Truncate extend: %v", err)
	}
	fd, _ = v.Open(task, "/t", vfs.ORdOnly)
	buf := make([]byte, 8)
	v.Read(task, fd, buf)
	if string(buf) != "0123\x00\x00\x00\x00" {
		t.Fatalf("extended content = %q", buf)
	}
	if err := v.Truncate(task, "/t", -1); err != kbase.EINVAL {
		t.Fatalf("negative truncate: %v", err)
	}
}

func TestMountAtSubdirShadowsAndEXDEV(t *testing.T) {
	v, task := newKernel(t)
	v.Mkdir(task, "/mnt")
	if err := v.Mount(task, "/mnt", "ramfs", vfs.MountData{}); err != kbase.EOK {
		t.Fatalf("Mount /mnt: %v", err)
	}
	fd, _ := v.Open(task, "/mnt/inner", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	if _, err := v.Stat(task, "/mnt/inner"); err != kbase.EOK {
		t.Fatalf("Stat on submount: %v", err)
	}
	// Cross-mount rename refused.
	fd, _ = v.Open(task, "/top", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	if err := v.Rename(task, "/top", "/mnt/top"); err != kbase.EXDEV {
		t.Fatalf("cross-mount rename: %v", err)
	}
	// Unmount refused while open.
	fd, _ = v.Open(task, "/mnt/inner", vfs.ORdOnly)
	if err := v.Unmount(task, "/mnt"); err != kbase.EBUSY {
		t.Fatalf("Unmount busy: %v", err)
	}
	v.Close(fd)
	if err := v.Unmount(task, "/mnt"); err != kbase.EOK {
		t.Fatalf("Unmount: %v", err)
	}
	if _, err := v.Stat(task, "/mnt/inner"); err != kbase.ENOENT {
		t.Fatalf("submount visible after unmount: %v", err)
	}
}

func TestMountErrors(t *testing.T) {
	v, task := newKernel(t)
	if err := v.Mount(task, "/", "nope", vfs.MountData{}); err != kbase.ENODEV {
		t.Fatalf("unknown fstype: %v", err)
	}
	if err := v.Mount(task, "/", "ramfs", vfs.MountData{}); err != kbase.EBUSY {
		t.Fatalf("double mount at /: %v", err)
	}
	if err := v.Mount(task, "relative", "ramfs", vfs.MountData{}); err != kbase.EINVAL {
		t.Fatalf("relative mount point: %v", err)
	}
	fd, _ := v.Open(task, "/file", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	if err := v.Mount(task, "/file", "ramfs", vfs.MountData{}); err != kbase.ENOTDIR {
		t.Fatalf("mount on file: %v", err)
	}
}

func TestBadFDAndDoubleClose(t *testing.T) {
	v, task := newKernel(t)
	if _, err := v.Read(task, 99, make([]byte, 1)); err != kbase.EBADF {
		t.Fatalf("Read bad fd: %v", err)
	}
	if err := v.Close(99); err != kbase.EBADF {
		t.Fatalf("Close bad fd: %v", err)
	}
	fd, _ := v.Open(task, "/x", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	if err := v.Close(fd); err != kbase.EBADF {
		t.Fatalf("double close: %v", err)
	}
}

func TestDcacheServesRepeatLookups(t *testing.T) {
	v, task := newKernel(t)
	v.Mkdir(task, "/dir")
	fd, _ := v.Open(task, "/dir/f", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	for i := 0; i < 10; i++ {
		if _, err := v.Stat(task, "/dir/f"); err != kbase.EOK {
			t.Fatalf("Stat: %v", err)
		}
	}
	hits, _, _ := v.DcacheStats()
	if hits == 0 {
		t.Fatalf("dcache never hit")
	}
	// Negative caching: repeated misses are also served.
	for i := 0; i < 3; i++ {
		if _, err := v.Stat(task, "/dir/none"); err != kbase.ENOENT {
			t.Fatalf("Stat missing: %v", err)
		}
	}
}

func TestOpenDirForWriteRefused(t *testing.T) {
	v, task := newKernel(t)
	v.Mkdir(task, "/d")
	if _, err := v.Open(task, "/d", vfs.OWrOnly); err != kbase.EISDIR {
		t.Fatalf("Open dir for write: %v", err)
	}
	if fd, err := v.Open(task, "/d", vfs.ORdOnly); err != kbase.EOK {
		t.Fatalf("Open dir read-only: %v", err)
	} else {
		v.Close(fd)
	}
}

func TestLseekWhence(t *testing.T) {
	v, task := newKernel(t)
	fd, _ := v.Open(task, "/s", vfs.ORdWr|vfs.OCreate)
	v.Write(task, fd, []byte("0123456789"))
	if pos, err := v.Lseek(task, fd, -3, vfs.SeekEnd); err != kbase.EOK || pos != 7 {
		t.Fatalf("SeekEnd = (%d, %v)", pos, err)
	}
	if pos, err := v.Lseek(task, fd, 1, vfs.SeekCur); err != kbase.EOK || pos != 8 {
		t.Fatalf("SeekCur = (%d, %v)", pos, err)
	}
	if _, err := v.Lseek(task, fd, -100, vfs.SeekCur); err != kbase.EINVAL {
		t.Fatalf("negative seek: %v", err)
	}
	if _, err := v.Lseek(task, fd, 0, 42); err != kbase.EINVAL {
		t.Fatalf("bad whence: %v", err)
	}
}

func TestPathTooLong(t *testing.T) {
	v, task := newKernel(t)
	long := make([]byte, vfs.MaxNameLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := v.Open(task, "/"+string(long), vfs.OCreate|vfs.OWrOnly); err != kbase.ENAMETOOLONG {
		t.Fatalf("long name: %v", err)
	}
}

func TestStatfsAndSyncAll(t *testing.T) {
	v, task := newKernel(t)
	fd, _ := v.Open(task, "/a", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	sf, err := v.Statfs(task, "/")
	if err != kbase.EOK {
		t.Fatalf("Statfs: %v", err)
	}
	if sf.FSName != "ramfs" || sf.TotalInodes < 2 {
		t.Fatalf("Statfs = %+v", sf)
	}
	if err := v.SyncAll(task); err != kbase.EOK {
		t.Fatalf("SyncAll: %v", err)
	}
}
