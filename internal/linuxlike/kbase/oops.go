package kbase

import (
	"fmt"
	"sync"
)

// Oops capture.
//
// The fault-injection campaigns need to observe kernel failures
// without tearing down the test process. In-kernel code reports fatal
// conditions through Oops (recoverable, per-task) and BUG
// (unrecoverable invariant violation). The harness installs an
// OopsRecorder; with no recorder installed both panic, which is the
// honest default for a real kernel.

// OopsKind classifies a captured failure.
type OopsKind string

// Failure classes recognized by the recorder. These correspond to the
// bug classes in the paper's §2 CVE categorization.
const (
	OopsNullDeref     OopsKind = "null-deref"
	OopsUseAfterFree  OopsKind = "use-after-free"
	OopsDoubleFree    OopsKind = "double-free"
	OopsOutOfBounds   OopsKind = "out-of-bounds"
	OopsTypeConfusion OopsKind = "type-confusion"
	OopsDataRace      OopsKind = "data-race"
	OopsDeadlock      OopsKind = "deadlock"
	OopsLeak          OopsKind = "memory-leak"
	OopsSemantic      OopsKind = "semantic"
	OopsCorruption    OopsKind = "corruption"
	OopsGeneric       OopsKind = "generic"
)

// OopsEvent is one captured kernel failure.
type OopsEvent struct {
	Kind   OopsKind
	Module string
	Msg    string
	// Trace is the flight-recorder dump captured at the oops site: the
	// most recent trace events, newest last, each pre-rendered as one
	// line. Populated only while a trace provider is installed (see
	// SetOopsTraceFn; ktrace.EnableFlightRecorder installs one).
	Trace []string
}

func (e OopsEvent) String() string {
	return fmt.Sprintf("oops[%s] in %s: %s", e.Kind, e.Module, e.Msg)
}

// OopsRecorder receives kernel failures instead of crashing the
// process.
type OopsRecorder struct {
	mu     sync.Mutex
	events []OopsEvent
}

var (
	recorderMu sync.RWMutex
	recorder   *OopsRecorder

	// oopsTraceFn, when installed, is invoked at every Oops/BUG site to
	// snapshot the flight recorder into the event. oopsObserver, when
	// installed, sees every failure as it happens (before the recorder
	// captures it) — ktrace uses it to emit the kernel:oops tracepoint,
	// so the crash itself lands in the trace stream.
	oopsHookMu   sync.RWMutex
	oopsTraceFn  func() []string
	oopsObserver func(kind OopsKind, module string)
)

// SetOopsTraceFn installs f as the flight-recorder snapshot provider
// consulted at every Oops/BUG, returning the previous provider. Pass
// nil to uninstall.
func SetOopsTraceFn(f func() []string) func() []string {
	oopsHookMu.Lock()
	defer oopsHookMu.Unlock()
	prev := oopsTraceFn
	oopsTraceFn = f
	return prev
}

// SetOopsObserver installs f to be called at every Oops/BUG site,
// returning the previous observer. Pass nil to uninstall.
func SetOopsObserver(f func(kind OopsKind, module string)) func(kind OopsKind, module string) {
	oopsHookMu.Lock()
	defer oopsHookMu.Unlock()
	prev := oopsObserver
	oopsObserver = f
	return prev
}

// finalizeOops runs the observer and attaches the flight-recorder
// dump. The observer runs first so the oops event itself is the last
// entry of the captured trace.
func finalizeOops(e *OopsEvent) {
	oopsHookMu.RLock()
	obs, tf := oopsObserver, oopsTraceFn
	oopsHookMu.RUnlock()
	if obs != nil {
		obs(e.Kind, e.Module)
	}
	if tf != nil {
		e.Trace = tf()
	}
}

// InstallRecorder installs rec as the kernel oops sink and returns the
// previous recorder (possibly nil).
func InstallRecorder(rec *OopsRecorder) *OopsRecorder {
	recorderMu.Lock()
	defer recorderMu.Unlock()
	prev := recorder
	recorder = rec
	return prev
}

// RecorderInstalled reports whether an oops recorder is currently
// installed — crash-containment boundaries consult this before
// reporting a recovered panic through Oops (which would itself panic
// with no recorder, defeating the containment).
func RecorderInstalled() bool {
	recorderMu.RLock()
	defer recorderMu.RUnlock()
	return recorder != nil
}

// PanicReport is the typed panic value BUG throws after running the
// oops machinery. A crash-containment boundary that recovers one knows
// the kernel:oops tracepoint was already emitted, the flight recorder
// already snapshotted, and the recorder (if any) already updated — so
// it must convert the panic to a typed error WITHOUT reporting a
// second oops. Recovering any other panic value means the failure has
// not been reported yet.
type PanicReport struct{ Event OopsEvent }

// String renders the same "BUG: ..." line the untyped panic used to
// carry, so logs and recovered-panic messages are unchanged.
func (p *PanicReport) String() string { return "BUG: " + p.Event.String() }

// Error makes a recovered PanicReport usable as an error.
func (p *PanicReport) Error() string { return p.String() }

// Events returns a copy of all recorded events.
func (r *OopsRecorder) Events() []OopsEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]OopsEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns the number of recorded events of the given kind, or
// all events if kind is empty.
func (r *OopsRecorder) Count(kind OopsKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if kind == "" {
		return len(r.events)
	}
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Reset clears recorded events.
func (r *OopsRecorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

func (r *OopsRecorder) record(e OopsEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Oops reports a recoverable kernel failure. With a recorder installed
// the event is captured and execution continues (the caller is
// responsible for unwinding); otherwise it panics.
func Oops(kind OopsKind, module, format string, args ...any) {
	e := OopsEvent{Kind: kind, Module: module, Msg: fmt.Sprintf(format, args...)}
	finalizeOops(&e)
	recorderMu.RLock()
	rec := recorder
	recorderMu.RUnlock()
	if rec != nil {
		rec.record(e)
		return
	}
	panic(e.String())
}

// BUG reports an unrecoverable invariant violation. It always panics;
// the recorder, if any, captures the event first so campaigns can
// still attribute the failure. The panic value is a *PanicReport so a
// compartment boundary recovering it knows the oops path already ran.
func BUG(module, format string, args ...any) {
	e := OopsEvent{Kind: OopsGeneric, Module: module, Msg: fmt.Sprintf(format, args...)}
	finalizeOops(&e)
	recorderMu.RLock()
	rec := recorder
	recorderMu.RUnlock()
	if rec != nil {
		rec.record(e)
	}
	panic(&PanicReport{Event: e})
}

// WarnOn records a non-fatal warning event if cond is true, mirroring
// WARN_ON. Returns cond for inline use.
func WarnOn(cond bool, module, format string, args ...any) bool {
	if cond {
		Oops(OopsGeneric, module, "WARN_ON: "+format, args...)
	}
	return cond
}
