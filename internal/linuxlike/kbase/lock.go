package kbase

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Lock primitives with optional validation.
//
// The simulated kernel uses SpinLock and KMutex everywhere a real
// kernel would. Both wrap sync.Mutex but additionally register with a
// LockValidator (a small lockdep) that tracks the lock-ordering graph
// and detects potential deadlocks by cycle detection, plus
// double-unlock and unlock-of-unlocked misuse. Validation can be
// switched off globally for benchmarks via SetLockValidation.

var lockValidationEnabled = true
var lockValidationMu sync.Mutex

// SetLockValidation toggles global lockdep-style validation and
// returns the previous setting. It is not safe to toggle while locks
// are held.
func SetLockValidation(on bool) bool {
	lockValidationMu.Lock()
	defer lockValidationMu.Unlock()
	prev := lockValidationEnabled
	lockValidationEnabled = on
	return prev
}

func lockValidationOn() bool {
	lockValidationMu.Lock()
	defer lockValidationMu.Unlock()
	return lockValidationEnabled
}

// LockClass identifies a family of locks for ordering purposes, e.g.
// all inode i_lock instances share one class, as in Linux lockdep.
type LockClass struct {
	name  string
	id    int
	subs  []*LockClass // lazily created nested subclasses
	stats classStats   // lockstat counters (see lockstat.go)
}

var (
	classMu   sync.Mutex
	classes   []*LockClass
	classSeen = make(map[string]*LockClass)
)

// NewLockClass registers (or returns the existing) lock class with the
// given name.
func NewLockClass(name string) *LockClass {
	classMu.Lock()
	defer classMu.Unlock()
	return newLockClassLocked(name)
}

func newLockClassLocked(name string) *LockClass {
	if c, ok := classSeen[name]; ok {
		return c
	}
	c := &LockClass{name: name, id: len(classes)}
	classes = append(classes, c)
	classSeen[name] = c
	return c
}

// Name returns the class name.
func (c *LockClass) Name() string { return c.name }

// Nested returns the subclass of this class for nesting level sub, as
// Linux's mutex_lock_nested uses to annotate places where two locks of
// the same class are legitimately taken in a fixed order (e.g. parent
// directory before child directory). Subclass 0 is the class itself;
// subclass n > 0 is registered as "name#n" and participates in the
// ordering graph as its own node, so class->class#1 is a valid edge
// while class->class would be flagged.
func (c *LockClass) Nested(sub int) *LockClass {
	if sub <= 0 {
		return c
	}
	classMu.Lock()
	defer classMu.Unlock()
	for len(c.subs) < sub {
		c.subs = append(c.subs, nil)
	}
	if c.subs[sub-1] == nil {
		c.subs[sub-1] = newLockClassLocked(fmt.Sprintf("%s#%d", c.name, sub))
	}
	return c.subs[sub-1]
}

// LockValidator records the observed ordering between lock classes and
// reports violations. One global instance serves the whole kernel,
// mirroring lockdep.
type LockValidator struct {
	mu       sync.Mutex
	after    map[int]map[int]bool // class a held while acquiring b => after[a][b]
	holders  map[int64][]*LockClass
	reports  []string
	maxDepth int
}

var globalValidator = &LockValidator{
	after:   make(map[int]map[int]bool),
	holders: make(map[int64][]*LockClass),
}

// Validator returns the kernel-wide lock validator.
func Validator() *LockValidator { return globalValidator }

// Reports returns the accumulated violation reports.
func (v *LockValidator) Reports() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, len(v.reports))
	copy(out, v.reports)
	return out
}

// Reset clears ordering state and reports (for tests).
func (v *LockValidator) Reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.after = make(map[int]map[int]bool)
	v.holders = make(map[int64][]*LockClass)
	v.reports = nil
	v.maxDepth = 0
}

// MaxDepth returns the deepest observed lock nesting.
func (v *LockValidator) MaxDepth() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.maxDepth
}

// OrderingEdges returns the observed class-ordering edges as
// "a->b" strings, sorted, for audit output.
func (v *LockValidator) OrderingEdges() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	classMu.Lock()
	defer classMu.Unlock()
	var out []string
	for a, m := range v.after {
		for b := range m {
			out = append(out, classes[a].name+"->"+classes[b].name)
		}
	}
	sort.Strings(out)
	return out
}

func (v *LockValidator) acquire(task int64, c *LockClass) {
	v.mu.Lock()
	defer v.mu.Unlock()
	held := v.holders[task]
	for _, h := range held {
		edge := v.after[h.id]
		if edge == nil {
			edge = make(map[int]bool)
			v.after[h.id] = edge
		}
		if !edge[c.id] && v.pathExists(c.id, h.id) {
			v.reports = append(v.reports, fmt.Sprintf(
				"possible deadlock: acquiring %q while holding %q inverts existing order %q->%q",
				c.name, h.name, c.name, h.name))
		}
		edge[c.id] = true
	}
	v.holders[task] = append(held, c)
	if d := len(v.holders[task]); d > v.maxDepth {
		v.maxDepth = d
	}
}

// pathExists reports whether the ordering graph already has a path
// from to dst, meaning "from is taken before dst" somewhere.
func (v *LockValidator) pathExists(from, to int) bool {
	if from == to {
		return true
	}
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range v.after[n] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

func (v *LockValidator) release(task int64, c *LockClass) {
	v.mu.Lock()
	defer v.mu.Unlock()
	held := v.holders[task]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == c {
			v.holders[task] = append(held[:i:i], held[i+1:]...)
			return
		}
	}
	v.reports = append(v.reports, fmt.Sprintf("unlock of %q not held by task %d", c.name, task))
}

// taskID identifies the current "kernel task". Goroutines have no
// stable exported ID, so tasks register themselves; unregistered
// goroutines share task 0, which keeps validation useful for
// single-threaded tests while staying cheap.
var (
	taskMu   sync.Mutex
	taskIDs        = make(map[*Task]int64)
	nextTask int64 = 1
)

// Task represents a kernel thread of execution for lock tracking.
type Task struct {
	id int64
	// super marks a trusted-core (supervisor) task: crash-containment
	// boundaries let it through directly, which is how the compartment
	// supervisor restarts a subsystem and how a hot swap copies state
	// while ordinary callers are held at the drained boundary.
	super bool
	// trace/span carry the task's current tracing context (ktrace span
	// plane). They live here — as bare words, not richer types —
	// because kbase sits below ktrace in the import graph, and the
	// task is the only thing that travels with a request across every
	// subsystem boundary.
	trace atomic.Uint64
	span  atomic.Uint64
}

// NewTask registers a new kernel task.
func NewTask() *Task {
	taskMu.Lock()
	defer taskMu.Unlock()
	t := &Task{id: nextTask}
	nextTask++
	taskIDs[t] = t.id
	return t
}

// NewSupervisorTask registers a trusted-core task that bypasses
// compartment boundaries (see Task.Supervisor).
func NewSupervisorTask() *Task {
	t := NewTask()
	t.super = true
	return t
}

// ID returns the task id.
func (t *Task) ID() int64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Supervisor reports whether this is a trusted-core task that
// compartment boundaries must not gate.
func (t *Task) Supervisor() bool { return t != nil && t.super }

// SpanCtx returns the task's current (trace, span) tracing context;
// (0, 0) — no active trace — for a nil task.
func (t *Task) SpanCtx() (trace, span uint64) {
	if t == nil {
		return 0, 0
	}
	return t.trace.Load(), t.span.Load()
}

// SetSpanCtx installs a tracing context on the task (no-op on nil).
// Set by the span plane on boundary entry and restored on exit.
func (t *Task) SetSpanCtx(trace, span uint64) {
	if t == nil {
		return
	}
	t.trace.Store(trace)
	t.span.Store(span)
}

// SpinLock is the kernel spinlock. In simulation it is a mutex; the
// distinction matters only for documentation and lock classes.
type SpinLock struct {
	mu        sync.Mutex
	class     *LockClass
	task      *Task
	holdStart time.Time // lockstat hold sample; guarded by mu
}

// NewSpinLock creates a spinlock in the given class.
func NewSpinLock(class *LockClass) *SpinLock { return &SpinLock{class: class} }

// Lock acquires the spinlock on behalf of task (nil allowed).
func (l *SpinLock) Lock(task *Task) {
	if lockValidationOn() && l.class != nil {
		globalValidator.acquire(task.ID(), l.class)
	}
	if l.class != nil && lockStatEnabled.Load() {
		s := &l.class.stats
		s.acquisitions.Add(1)
		if !l.mu.TryLock() {
			t0 := time.Now()
			l.mu.Lock()
			s.noteWait(time.Since(t0))
		}
		l.holdStart = time.Now()
	} else {
		l.mu.Lock()
		l.holdStart = time.Time{}
	}
	l.task = task
}

// Unlock releases the spinlock.
func (l *SpinLock) Unlock(task *Task) {
	if l.class != nil && !l.holdStart.IsZero() {
		l.class.stats.noteHold(time.Since(l.holdStart))
		l.holdStart = time.Time{}
	}
	l.task = nil
	l.mu.Unlock()
	if lockValidationOn() && l.class != nil {
		globalValidator.release(task.ID(), l.class)
	}
}

// KMutex is the kernel sleeping mutex.
type KMutex struct {
	mu        sync.Mutex
	class     *LockClass
	held      *LockClass // class actually acquired (may be a Nested subclass)
	statClass *LockClass // class charged by lockstat; guarded by mu
	holdStart time.Time  // lockstat hold sample; guarded by mu
}

// NewKMutex creates a mutex in the given class.
func NewKMutex(class *LockClass) *KMutex { return &KMutex{class: class} }

// Lock acquires the mutex on behalf of task.
func (m *KMutex) Lock(task *Task) { m.LockNested(task, 0) }

// LockNested acquires the mutex under subclass sub of its lock class,
// for call sites that nest two locks of one class in a guaranteed
// order (mutex_lock_nested in Linux). The matching Unlock releases
// whatever subclass was acquired.
func (m *KMutex) LockNested(task *Task, sub int) {
	var acq *LockClass
	if lockValidationOn() && m.class != nil {
		acq = m.class.Nested(sub)
		globalValidator.acquire(task.ID(), acq)
	}
	if m.class != nil && lockStatEnabled.Load() {
		sc := m.class
		if sub > 0 {
			sc = m.class.Nested(sub)
		}
		s := &sc.stats
		s.acquisitions.Add(1)
		if !m.mu.TryLock() {
			t0 := time.Now()
			m.mu.Lock()
			s.noteWait(time.Since(t0))
		}
		m.statClass = sc
		m.holdStart = time.Now()
	} else {
		m.mu.Lock()
		m.statClass = nil
		m.holdStart = time.Time{}
	}
	m.held = acq
}

// Unlock releases the mutex.
func (m *KMutex) Unlock(task *Task) {
	if m.statClass != nil && !m.holdStart.IsZero() {
		m.statClass.stats.noteHold(time.Since(m.holdStart))
		m.statClass = nil
		m.holdStart = time.Time{}
	}
	acq := m.held
	m.held = nil
	m.mu.Unlock()
	if acq != nil {
		globalValidator.release(task.ID(), acq)
	}
}

// RWSem is the kernel reader/writer semaphore.
type RWSem struct {
	mu        sync.RWMutex
	class     *LockClass
	holdStart time.Time // lockstat write-hold sample; guarded by mu (write side)
}

// NewRWSem creates a rwsem in the given class.
func NewRWSem(class *LockClass) *RWSem { return &RWSem{class: class} }

// DownRead acquires shared. Lockstat counts shared acquisitions and
// wait time but not hold time: concurrent readers would race on any
// per-sem hold sample, and read holds do not exclude anyone anyway.
func (s *RWSem) DownRead(task *Task) {
	if lockValidationOn() && s.class != nil {
		globalValidator.acquire(task.ID(), s.class)
	}
	if s.class != nil && lockStatEnabled.Load() {
		st := &s.class.stats
		st.readAcquires.Add(1)
		if !s.mu.TryRLock() {
			t0 := time.Now()
			s.mu.RLock()
			st.noteWait(time.Since(t0))
		}
	} else {
		s.mu.RLock()
	}
}

// UpRead releases shared.
func (s *RWSem) UpRead(task *Task) {
	s.mu.RUnlock()
	if lockValidationOn() && s.class != nil {
		globalValidator.release(task.ID(), s.class)
	}
}

// DownWrite acquires exclusive.
func (s *RWSem) DownWrite(task *Task) {
	if lockValidationOn() && s.class != nil {
		globalValidator.acquire(task.ID(), s.class)
	}
	if s.class != nil && lockStatEnabled.Load() {
		st := &s.class.stats
		st.acquisitions.Add(1)
		if !s.mu.TryLock() {
			t0 := time.Now()
			s.mu.Lock()
			st.noteWait(time.Since(t0))
		}
		s.holdStart = time.Now()
	} else {
		s.mu.Lock()
		s.holdStart = time.Time{}
	}
}

// UpWrite releases exclusive.
func (s *RWSem) UpWrite(task *Task) {
	if s.class != nil && !s.holdStart.IsZero() {
		s.class.stats.noteHold(time.Since(s.holdStart))
		s.holdStart = time.Time{}
	}
	s.mu.Unlock()
	if lockValidationOn() && s.class != nil {
		globalValidator.release(task.ID(), s.class)
	}
}
