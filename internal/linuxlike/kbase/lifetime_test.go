package kbase

import (
	"strings"
	"testing"
	"testing/quick"
)

func withRecorder(t *testing.T) *OopsRecorder {
	t.Helper()
	rec := &OopsRecorder{}
	prev := InstallRecorder(rec)
	t.Cleanup(func() { InstallRecorder(prev) })
	return rec
}

func TestArenaUseAfterFree(t *testing.T) {
	rec := withRecorder(t)
	a := NewArena("testmod")
	obj := &fakeInode{ino: 1}
	Alloc(a, obj)
	if !Access(a, obj) {
		t.Fatalf("live object reported dead")
	}
	Free(a, obj)
	if Access(a, obj) {
		t.Fatalf("freed object reported live")
	}
	if rec.Count(OopsUseAfterFree) != 1 {
		t.Fatalf("use-after-free oops count = %d, want 1", rec.Count(OopsUseAfterFree))
	}
}

func TestArenaDoubleFree(t *testing.T) {
	rec := withRecorder(t)
	a := NewArena("testmod")
	obj := &fakeInode{ino: 2}
	Alloc(a, obj)
	Free(a, obj)
	Free(a, obj)
	if rec.Count(OopsDoubleFree) != 1 {
		t.Fatalf("double-free oops count = %d, want 1", rec.Count(OopsDoubleFree))
	}
}

func TestArenaFreeUnallocated(t *testing.T) {
	rec := withRecorder(t)
	a := NewArena("testmod")
	Free(a, &fakeInode{})
	if rec.Count(OopsGeneric) != 1 {
		t.Fatalf("generic oops count = %d, want 1", rec.Count(OopsGeneric))
	}
}

func TestArenaLeakCheck(t *testing.T) {
	rec := withRecorder(t)
	a := NewArena("testmod")
	Alloc(a, &fakeInode{ino: 1})
	Alloc(a, &fakeInode{ino: 2})
	if n := a.CheckLeaks(); n != 2 {
		t.Fatalf("CheckLeaks = %d, want 2", n)
	}
	if rec.Count(OopsLeak) != 1 {
		t.Fatalf("leak oops count = %d", rec.Count(OopsLeak))
	}
}

func TestArenaStats(t *testing.T) {
	withRecorder(t)
	a := NewArena("testmod")
	objs := []*fakeInode{{ino: 1}, {ino: 2}, {ino: 3}}
	for _, o := range objs {
		Alloc(a, o)
	}
	Free(a, objs[0])
	allocs, frees := a.Stats()
	if allocs != 3 || frees != 1 {
		t.Fatalf("Stats = (%d, %d), want (3, 1)", allocs, frees)
	}
	if a.Live() != 2 {
		t.Fatalf("Live = %d, want 2", a.Live())
	}
}

func TestArenaReallocAfterFree(t *testing.T) {
	withRecorder(t)
	a := NewArena("testmod")
	obj := &fakeInode{ino: 9}
	Alloc(a, obj)
	Free(a, obj)
	Alloc(a, obj) // slab reuse of the same address
	if !Access(a, obj) {
		t.Fatalf("reallocated object reported dead")
	}
}

func TestArenaAllocLivePanics(t *testing.T) {
	withRecorder(t)
	a := NewArena("testmod")
	obj := &fakeInode{}
	Alloc(a, obj)
	defer func() {
		if recover() == nil {
			t.Fatalf("Alloc of live object did not panic")
		}
	}()
	Alloc(a, obj)
}

func TestOopsWithoutRecorderPanics(t *testing.T) {
	prev := InstallRecorder(nil)
	defer InstallRecorder(prev)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Oops without recorder did not panic")
		}
		if !strings.Contains(r.(string), "null-deref") {
			t.Fatalf("panic message %q lacks kind", r)
		}
	}()
	Oops(OopsNullDeref, "m", "boom")
}

func TestBUGAlwaysPanics(t *testing.T) {
	rec := withRecorder(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("BUG did not panic")
		}
		if rec.Count("") != 1 {
			t.Fatalf("BUG not recorded before panic")
		}
	}()
	BUG("m", "invariant %d", 42)
}

func TestWarnOn(t *testing.T) {
	rec := withRecorder(t)
	if WarnOn(false, "m", "no") {
		t.Fatalf("WarnOn(false) = true")
	}
	if !WarnOn(true, "m", "yes") {
		t.Fatalf("WarnOn(true) = false")
	}
	if rec.Count("") != 1 {
		t.Fatalf("WarnOn recorded %d events, want 1", rec.Count(""))
	}
}

// Property: the arena never loses track — after any sequence of
// alloc/free pairs, live == allocs - frees.
func TestArenaAccountingProperty(t *testing.T) {
	withRecorder(t)
	f := func(ops []bool) bool {
		a := NewArena("prop")
		var live []*fakeInode
		var id uint64
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				id++
				o := &fakeInode{ino: id}
				Alloc(a, o)
				live = append(live, o)
			} else {
				o := live[len(live)-1]
				live = live[:len(live)-1]
				Free(a, o)
			}
		}
		allocs, frees := a.Stats()
		return a.Live() == int(allocs-frees) && a.Live() == len(live)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
