package kbase

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// lockstat: per-LockClass acquisition, contention, wait-time, and
// hold-time accounting, the measurement counterpart of the lockdep
// ordering validator. PR 1 made the lock hierarchy *checkable*; this
// makes it *measurable* — CONFIG_LOCK_STAT for the simulated kernel.
//
// Accounting is off by default and gated exactly like validation: the
// lock fast path pays one atomic load when lockstat is disabled. When
// enabled, contention is detected with TryLock (an uncontended
// acquisition costs no clock read for the wait side), wait time is
// the blocking duration of the fallback Lock, and hold time runs from
// acquisition to release. Counters are per-class atomics, so the
// accounting itself adds no shared lock to the paths it measures.

var lockStatEnabled atomic.Bool

// SetLockStat toggles lockstat accounting globally and returns the
// previous setting. Toggling while locks are held skews (but cannot
// corrupt) in-flight hold samples.
func SetLockStat(on bool) bool {
	return lockStatEnabled.Swap(on)
}

// LockStatOn reports whether lockstat accounting is enabled.
func LockStatOn() bool { return lockStatEnabled.Load() }

// LockHistBuckets is the bucket count of the per-class log2 wait/hold
// histograms: bucket i counts samples with bits.Len64(ns) == i, i.e.
// ns in [2^(i-1), 2^i) (bucket 0 is exactly ns == 0). Coarser than
// ktrace's log-linear histograms on purpose — this is the fully
// inlined lock path, so the histogram must cost one extra atomic add.
const LockHistBuckets = 65

type lockHist [LockHistBuckets]atomic.Uint64

func (h *lockHist) note(ns uint64) { h[bits.Len64(ns)].Add(1) }

func (h *lockHist) snapshot() (out [LockHistBuckets]uint64) {
	for i := range h {
		out[i] = h[i].Load()
	}
	return out
}

func (h *lockHist) reset() {
	for i := range h {
		h[i].Store(0)
	}
}

// classStats is the per-LockClass counter block. All fields are
// atomics: emitters never share a cache line dance with a stats lock.
type classStats struct {
	acquisitions atomic.Uint64
	contended    atomic.Uint64
	waitNs       atomic.Uint64
	maxWaitNs    atomic.Uint64
	holdNs       atomic.Uint64
	maxHoldNs    atomic.Uint64
	readAcquires atomic.Uint64 // RWSem shared-side acquisitions
	waitHist     lockHist
	holdHist     lockHist
}

func (s *classStats) noteWait(d time.Duration) {
	ns := uint64(d)
	s.contended.Add(1)
	s.waitNs.Add(ns)
	storeMax(&s.maxWaitNs, ns)
	s.waitHist.note(ns)
}

func (s *classStats) noteHold(d time.Duration) {
	ns := uint64(d)
	s.holdNs.Add(ns)
	storeMax(&s.maxHoldNs, ns)
	s.holdHist.note(ns)
}

func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// LockClassStats is one class's lockstat snapshot.
type LockClassStats struct {
	Class        string
	Acquisitions uint64 // exclusive acquisitions (incl. RWSem write side)
	ReadAcquires uint64 // RWSem shared-side acquisitions
	Contended    uint64 // acquisitions that had to block
	WaitNs       uint64 // total blocking time
	MaxWaitNs    uint64
	HoldNs       uint64 // total exclusive hold time
	MaxHoldNs    uint64
	// Log2 latency distributions (see LockHistBuckets): WaitHist over
	// blocking waits, HoldHist over exclusive holds.
	WaitHist [LockHistBuckets]uint64
	HoldHist [LockHistBuckets]uint64
}

// LockStats returns a snapshot for every class that has seen at least
// one acquisition since the last reset, sorted by class name.
func LockStats() []LockClassStats {
	classMu.Lock()
	snap := make([]*LockClass, len(classes))
	copy(snap, classes)
	classMu.Unlock()
	var out []LockClassStats
	for _, c := range snap {
		s := &c.stats
		st := LockClassStats{
			Class:        c.name,
			Acquisitions: s.acquisitions.Load(),
			ReadAcquires: s.readAcquires.Load(),
			Contended:    s.contended.Load(),
			WaitNs:       s.waitNs.Load(),
			MaxWaitNs:    s.maxWaitNs.Load(),
			HoldNs:       s.holdNs.Load(),
			MaxHoldNs:    s.maxHoldNs.Load(),
			WaitHist:     s.waitHist.snapshot(),
			HoldHist:     s.holdHist.snapshot(),
		}
		if st.Acquisitions == 0 && st.ReadAcquires == 0 {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ResetLockStats zeroes every class's counters.
func ResetLockStats() {
	classMu.Lock()
	snap := make([]*LockClass, len(classes))
	copy(snap, classes)
	classMu.Unlock()
	for _, c := range snap {
		s := &c.stats
		s.acquisitions.Store(0)
		s.contended.Store(0)
		s.waitNs.Store(0)
		s.maxWaitNs.Store(0)
		s.holdNs.Store(0)
		s.maxHoldNs.Store(0)
		s.readAcquires.Store(0)
		s.waitHist.reset()
		s.holdHist.reset()
	}
}

// The per-primitive instrumentation lives inline in lock.go so the
// lockstat-disabled path stays a direct sync.Mutex call with one
// atomic load in front of it — no interface dispatch, no closure.
