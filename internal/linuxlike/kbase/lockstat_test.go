package kbase

import (
	"sync"
	"testing"
	"time"
)

// withLockStat runs a test with lockstat on and validation off (the
// configuration the CLI and benches use), restoring both after.
func withLockStat(t *testing.T) {
	t.Helper()
	prevLV := SetLockValidation(false)
	prevLS := SetLockStat(true)
	ResetLockStats()
	t.Cleanup(func() {
		SetLockStat(prevLS)
		SetLockValidation(prevLV)
	})
}

func findClass(t *testing.T, name string) LockClassStats {
	t.Helper()
	for _, s := range LockStats() {
		if s.Class == name {
			return s
		}
	}
	t.Fatalf("class %q not in LockStats()", name)
	return LockClassStats{}
}

func TestLockStatDisabledCountsNothing(t *testing.T) {
	prevLS := SetLockStat(false)
	defer SetLockStat(prevLS)
	ResetLockStats()
	cls := NewLockClass("lockstat.test.disabled")
	l := NewSpinLock(cls)
	task := NewTask()
	for i := 0; i < 100; i++ {
		l.Lock(task)
		l.Unlock(task)
	}
	for _, s := range LockStats() {
		if s.Class == "lockstat.test.disabled" {
			t.Fatalf("disabled lockstat recorded traffic: %+v", s)
		}
	}
}

// TestLockStatContention drives a deliberately contended spinlock from
// many goroutines, each holding it long enough that others must block,
// and checks every counter moves the right way.
func TestLockStatContention(t *testing.T) {
	withLockStat(t)
	cls := NewLockClass("lockstat.test.contended")
	l := NewSpinLock(cls)

	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := NewTask()
			for i := 0; i < perG; i++ {
				l.Lock(task)
				time.Sleep(20 * time.Microsecond) // hold window forces overlap
				l.Unlock(task)
			}
		}()
	}
	wg.Wait()

	s := findClass(t, "lockstat.test.contended")
	if s.Acquisitions != goroutines*perG {
		t.Fatalf("acquisitions = %d, want %d", s.Acquisitions, goroutines*perG)
	}
	if s.Contended == 0 {
		t.Fatal("no contention recorded on a deliberately contended lock")
	}
	if s.Contended > s.Acquisitions {
		t.Fatalf("contended %d > acquisitions %d", s.Contended, s.Acquisitions)
	}
	if s.WaitNs == 0 || s.MaxWaitNs == 0 {
		t.Fatalf("contention with zero wait time: %+v", s)
	}
	if s.WaitNs < s.MaxWaitNs {
		t.Fatalf("wait total %d < wait max %d", s.WaitNs, s.MaxWaitNs)
	}
	if s.HoldNs == 0 || s.MaxHoldNs == 0 {
		t.Fatalf("no hold time recorded: %+v", s)
	}
	// Each hold was >= 20µs, so the total must be at least the sum.
	if min := uint64(goroutines * perG * 20_000); s.HoldNs < min {
		t.Fatalf("hold total %dns < floor %dns", s.HoldNs, min)
	}
}

// TestLockStatHoldAccounting checks the uncontended path: acquisitions
// and hold time tick, contention does not.
func TestLockStatHoldAccounting(t *testing.T) {
	withLockStat(t)
	cls := NewLockClass("lockstat.test.hold")
	l := NewSpinLock(cls)
	task := NewTask()
	l.Lock(task)
	time.Sleep(time.Millisecond)
	l.Unlock(task)

	s := findClass(t, "lockstat.test.hold")
	if s.Acquisitions != 1 || s.Contended != 0 {
		t.Fatalf("uncontended lock: %+v", s)
	}
	if s.HoldNs < uint64(time.Millisecond) {
		t.Fatalf("hold %dns < the 1ms the lock was held", s.HoldNs)
	}
	if s.MaxHoldNs != s.HoldNs {
		t.Fatalf("single hold: max %d != total %d", s.MaxHoldNs, s.HoldNs)
	}
}

// TestLockStatKMutexNested: LockNested(sub) charges the subclass, so
// the PR 1 dir_inode / dir_inode#1 split is visible per subclass.
func TestLockStatKMutexNested(t *testing.T) {
	withLockStat(t)
	cls := NewLockClass("lockstat.test.kmutex")
	m1 := NewKMutex(cls)
	m2 := NewKMutex(cls)
	task := NewTask()

	m1.Lock(task)
	m2.LockNested(task, 1)
	m2.Unlock(task)
	m1.Unlock(task)

	base := findClass(t, "lockstat.test.kmutex")
	sub := findClass(t, "lockstat.test.kmutex#1")
	if base.Acquisitions != 1 {
		t.Fatalf("base acquisitions = %d, want 1", base.Acquisitions)
	}
	if sub.Acquisitions != 1 {
		t.Fatalf("subclass acquisitions = %d, want 1", sub.Acquisitions)
	}
	if base.HoldNs == 0 || sub.HoldNs == 0 {
		t.Fatalf("missing hold time: base=%+v sub=%+v", base, sub)
	}
}

// TestLockStatRWSem: write side gets full accounting, read side counts
// acquisitions.
func TestLockStatRWSem(t *testing.T) {
	withLockStat(t)
	cls := NewLockClass("lockstat.test.rwsem")
	s := NewRWSem(cls)
	task := NewTask()

	s.DownWrite(task)
	s.UpWrite(task)
	for i := 0; i < 5; i++ {
		s.DownRead(task)
		s.UpRead(task)
	}

	st := findClass(t, "lockstat.test.rwsem")
	if st.Acquisitions != 1 {
		t.Fatalf("write acquisitions = %d, want 1", st.Acquisitions)
	}
	if st.ReadAcquires != 5 {
		t.Fatalf("read acquires = %d, want 5", st.ReadAcquires)
	}
	if st.HoldNs == 0 {
		t.Fatal("write hold not recorded")
	}
}

func TestResetLockStats(t *testing.T) {
	withLockStat(t)
	cls := NewLockClass("lockstat.test.reset")
	l := NewSpinLock(cls)
	task := NewTask()
	l.Lock(task)
	l.Unlock(task)
	if findClass(t, "lockstat.test.reset").Acquisitions != 1 {
		t.Fatal("setup acquisition not recorded")
	}
	ResetLockStats()
	for _, s := range LockStats() {
		if s.Class == "lockstat.test.reset" {
			t.Fatalf("reset left traffic: %+v", s)
		}
	}
}
