package kbase

import (
	"sync"
	"testing"
)

// fireLog collects (owner, jiffy) pairs from Advance callbacks.
type fireLog struct {
	at map[int]uint64
}

func advanceTo(w *TimerWheel[int], log *fireLog, target uint64) {
	// Step one jiffy at a time, recording the wheel clock at each
	// fire, the way the simulator drives it.
	for now := w.Now(); now != target; now++ {
		j := now + 1
		w.Advance(j, func(id int) { log.at[id] = j })
	}
}

func TestWheelExactExpiry(t *testing.T) {
	// Deltas straddling every tier boundary must fire at exactly their
	// armed jiffy — the protocol machinery depends on exact deadlines.
	deltas := []uint64{1, 2, 63, 64, 65, 127, 4095, 4096, 4097, 262143, 262144, 262145, 1 << 19}
	for _, start := range []uint64{0, 1, 63, 64, 1000003} {
		w := NewTimerWheel[int](start)
		log := &fireLog{at: map[int]uint64{}}
		timers := make([]WheelTimer[int], len(deltas))
		for i, d := range deltas {
			timers[i].Owner = i
			w.Arm(&timers[i], start+d)
		}
		advanceTo(w, log, start+(1<<19)+1)
		for i, d := range deltas {
			if got, ok := log.at[i]; !ok || got != start+d {
				t.Fatalf("start=%d delta=%d: fired at %d (ok=%v), want %d", start, d, got, ok, start+d)
			}
		}
		if w.Len() != 0 {
			t.Fatalf("start=%d: %d timers left armed", start, w.Len())
		}
	}
}

func TestWheelCascadeCorrectnessRandom(t *testing.T) {
	// Seeded soak: hundreds of timers at random deadlines, none may
	// fire early, late, twice, or never.
	rng := NewRng(42)
	const n = 500
	const horizon = 300000
	w := NewTimerWheel[int](0)
	log := &fireLog{at: map[int]uint64{}}
	timers := make([]WheelTimer[int], n)
	want := make([]uint64, n)
	for i := range timers {
		timers[i].Owner = i
		want[i] = 1 + uint64(rng.Intn(horizon))
		w.Arm(&timers[i], want[i])
	}
	fired := 0
	for j := uint64(1); j <= horizon; j++ {
		fired += w.Advance(j, func(id int) {
			if prev, dup := log.at[id]; dup {
				t.Fatalf("timer %d fired twice (at %d and %d)", id, prev, j)
			}
			log.at[id] = j
		})
	}
	if fired != n {
		t.Fatalf("fired %d of %d timers", fired, n)
	}
	for i := range timers {
		if log.at[i] != want[i] {
			t.Fatalf("timer %d fired at %d, want %d", i, log.at[i], want[i])
		}
	}
	st := w.Stats()
	if st.Cascades == 0 || st.Moved == 0 {
		t.Fatalf("expected cascades over a %d-jiffy horizon, got %+v", uint64(horizon), st)
	}
}

func TestWheelCancelAndRearm(t *testing.T) {
	w := NewTimerWheel[int](0)
	log := &fireLog{at: map[int]uint64{}}
	var a, b, c WheelTimer[int]
	a.Owner, b.Owner, c.Owner = 0, 1, 2
	w.Arm(&a, 10)
	w.Arm(&b, 10)
	w.Arm(&c, 100)
	w.Cancel(&b)  // canceled before expiry: never fires
	w.Arm(&c, 20) // re-arm moves the deadline
	w.Arm(&a, 10) // re-arm at the same expiry is a no-op
	if !a.Armed() || b.Armed() || !c.Armed() {
		t.Fatalf("armed states wrong: a=%v b=%v c=%v", a.Armed(), b.Armed(), c.Armed())
	}
	advanceTo(w, log, 200)
	if got := log.at[0]; got != 10 {
		t.Fatalf("a fired at %d, want 10", got)
	}
	if _, ok := log.at[1]; ok {
		t.Fatal("canceled timer fired")
	}
	if got := log.at[2]; got != 20 {
		t.Fatalf("re-armed c fired at %d, want 20", got)
	}
	// Cancel of an unarmed timer is a no-op.
	w.Cancel(&b)
}

func TestWheelPastDeadlineClampsToNextJiffy(t *testing.T) {
	w := NewTimerWheel[int](1000)
	log := &fireLog{at: map[int]uint64{}}
	var a, b WheelTimer[int]
	a.Owner, b.Owner = 0, 1
	w.Arm(&a, 1000) // "now": fires on the next advance
	w.Arm(&b, 50)   // long past: same clamp
	advanceTo(w, log, 1002)
	if log.at[0] != 1001 || log.at[1] != 1001 {
		t.Fatalf("clamped timers fired at %v, want both 1001", log.at)
	}
}

func TestWheelRearmFromFireCallback(t *testing.T) {
	// A periodic timer re-armed from its own fire callback — the RTO
	// re-arm pattern — must keep exact periods, including re-arms that
	// land back in the currently-firing slot region.
	w := NewTimerWheel[int](0)
	var tm WheelTimer[int]
	tm.Owner = 7
	var fires []uint64
	period := uint64(64) // same level-0 slot every time
	w.Arm(&tm, period)
	for j := uint64(1); j <= 5*period; j++ {
		w.Advance(j, func(id int) {
			fires = append(fires, j)
			w.Arm(&tm, j+period) // callbacks run unlocked: Arm is safe
		})
	}
	if len(fires) != 5 {
		t.Fatalf("got %d fires %v, want 5", len(fires), fires)
	}
	for i, f := range fires {
		if f != uint64(i+1)*period {
			t.Fatalf("fire %d at %d, want %d", i, f, uint64(i+1)*period)
		}
	}
}

func TestWheelJiffyWraparound(t *testing.T) {
	// The wheel survives the uint64 clock wrapping mid-horizon:
	// deltas and slot indices are all mod-2^64.
	start := ^uint64(0) - 100
	w := NewTimerWheel[int](start)
	log := &fireLog{at: map[int]uint64{}}
	deltas := []uint64{1, 50, 100, 101, 150, 4097} // some land after the wrap
	timers := make([]WheelTimer[int], len(deltas))
	for i, d := range deltas {
		timers[i].Owner = i
		w.Arm(&timers[i], start+d)
	}
	for i := uint64(1); i <= 5000; i++ {
		j := start + i
		w.Advance(j, func(id int) { log.at[id] = j })
	}
	for i, d := range deltas {
		if log.at[i] != start+d {
			t.Fatalf("delta %d across wrap: fired at %d, want %d", d, log.at[i], start+d)
		}
	}
}

func TestWheelEmptyFastPathKeepsPlacement(t *testing.T) {
	// An empty wheel jumps its clock; timers armed after the jump must
	// still fire exactly.
	w := NewTimerWheel[int](0)
	w.Advance(1<<40, func(int) { t.Fatal("fired on empty wheel") })
	log := &fireLog{at: map[int]uint64{}}
	var tm WheelTimer[int]
	w.Arm(&tm, 1<<40+77)
	advanceTo(w, log, 1<<40+100)
	if log.at[0] != 1<<40+77 {
		t.Fatalf("fired at %d, want %d", log.at[0], uint64(1<<40+77))
	}
}

func TestWheelConcurrentArmCancelRace(t *testing.T) {
	// Arm/cancel/re-arm from multiple goroutines while another
	// advances: -race coverage of the wheel lock. Fired counts can't
	// be asserted exactly under racing cancels; the invariant is that
	// every timer ends either fired or canceled and the wheel drains.
	w := NewTimerWheel[int](0)
	const workers = 4
	const perWorker = 200
	var fired sync.Map
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j := uint64(1); j <= 3000; j++ {
			w.Advance(j, func(id int) { fired.Store(id, j) })
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := NewRng(uint64(g) + 9)
			timers := make([]WheelTimer[int], perWorker)
			for i := range timers {
				timers[i].Owner = g*perWorker + i
				w.Arm(&timers[i], uint64(1+rng.Intn(2000)))
			}
			for i := range timers {
				switch rng.Intn(3) {
				case 0:
					w.Cancel(&timers[i])
				case 1:
					w.Arm(&timers[i], uint64(1+rng.Intn(2500)))
				}
			}
		}(g)
	}
	wg.Wait()
	<-done
	// Drain whatever is still armed (re-arms may have landed beyond
	// the advancing goroutine's horizon).
	w.Advance(1<<20, func(id int) { fired.Store(id, uint64(0)) })
	if w.Len() != 0 {
		t.Fatalf("%d timers still armed after full drain", w.Len())
	}
}
