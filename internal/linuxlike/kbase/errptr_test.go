package kbase

import "testing"

type fakeInode struct {
	ino  uint64
	size int64
}

func TestErrPtrRoundTrip(t *testing.T) {
	p := ErrPtr[fakeInode](EIO)
	if !IsErr(p) {
		t.Fatalf("IsErr(ErrPtr(EIO)) = false")
	}
	if got := PtrErr(p); got != EIO {
		t.Fatalf("PtrErr = %v, want EIO", got)
	}
}

func TestErrPtrSentinelsAreSingletonsPerErrno(t *testing.T) {
	a := ErrPtr[fakeInode](ENOENT)
	b := ErrPtr[fakeInode](ENOENT)
	if a != b {
		t.Fatalf("ErrPtr returned distinct sentinels for the same errno")
	}
	c := ErrPtr[fakeInode](EIO)
	if a == c {
		t.Fatalf("ErrPtr returned the same sentinel for distinct errnos")
	}
}

func TestErrPtrDistinctPerType(t *testing.T) {
	type other struct{ x int }
	a := ErrPtr[fakeInode](EIO)
	b := ErrPtr[other](EIO)
	if any(a) == any(b) {
		t.Fatalf("sentinels for different types compared equal")
	}
	if !IsErr(b) {
		t.Fatalf("per-type sentinel not recognized")
	}
}

func TestIsErrRejectsRealPointersAndNil(t *testing.T) {
	real := &fakeInode{ino: 7}
	if IsErr(real) {
		t.Fatalf("IsErr(real pointer) = true")
	}
	if IsErr[fakeInode](nil) {
		t.Fatalf("IsErr(nil) = true")
	}
	if !IsErrOrNil[fakeInode](nil) {
		t.Fatalf("IsErrOrNil(nil) = false")
	}
	if got := PtrErr(real); got != EOK {
		t.Fatalf("PtrErr(real pointer) = %v, want EOK", got)
	}
}

func TestErrPtrEOKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("ErrPtr(EOK) did not panic")
		}
	}()
	ErrPtr[fakeInode](EOK)
}

// TestErrPtrSilentMisuse demonstrates the bug class the idiom invites:
// dereferencing an error sentinel yields a zeroed object, not a trap.
func TestErrPtrSilentMisuse(t *testing.T) {
	p := ErrPtr[fakeInode](EIO)
	if p.ino != 0 || p.size != 0 {
		t.Fatalf("sentinel pointee not zeroed: %+v", *p)
	}
}

func TestErrnoStrings(t *testing.T) {
	if EIO.Error() != "EIO" {
		t.Fatalf("EIO.Error() = %q", EIO.Error())
	}
	if Errno(9999).Error() != "errno(9999)" {
		t.Fatalf("unknown errno rendered %q", Errno(9999).Error())
	}
	if EOK.IsError() {
		t.Fatalf("EOK.IsError() = true")
	}
	if !ENOSPC.IsError() {
		t.Fatalf("ENOSPC.IsError() = false")
	}
	if EOK.OrNil() != nil {
		t.Fatalf("EOK.OrNil() != nil")
	}
	if EIO.OrNil() == nil {
		t.Fatalf("EIO.OrNil() == nil")
	}
}
