package kbase

import (
	"strings"
	"sync"
	"testing"
)

func TestLockOrderInversionDetected(t *testing.T) {
	Validator().Reset()
	ca := NewLockClass("test-order-a")
	cb := NewLockClass("test-order-b")
	la, lb := NewKMutex(ca), NewKMutex(cb)
	t1, t2 := NewTask(), NewTask()

	// Establish a->b.
	la.Lock(t1)
	lb.Lock(t1)
	lb.Unlock(t1)
	la.Unlock(t1)

	// Invert: b->a must be reported.
	lb.Lock(t2)
	la.Lock(t2)
	la.Unlock(t2)
	lb.Unlock(t2)

	reports := Validator().Reports()
	found := false
	for _, r := range reports {
		if strings.Contains(r, "possible deadlock") &&
			strings.Contains(r, "test-order-a") && strings.Contains(r, "test-order-b") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lock inversion not reported; reports = %v", reports)
	}
}

func TestLockSameOrderNotReported(t *testing.T) {
	Validator().Reset()
	ca := NewLockClass("test-same-a")
	cb := NewLockClass("test-same-b")
	la, lb := NewKMutex(ca), NewKMutex(cb)
	task := NewTask()
	for i := 0; i < 3; i++ {
		la.Lock(task)
		lb.Lock(task)
		lb.Unlock(task)
		la.Unlock(task)
	}
	if reports := Validator().Reports(); len(reports) != 0 {
		t.Fatalf("consistent ordering reported: %v", reports)
	}
}

func TestUnlockNotHeldReported(t *testing.T) {
	Validator().Reset()
	c := NewLockClass("test-unheld")
	task := NewTask()
	// Release without acquire at the validator level.
	globalValidator.release(task.ID(), c)
	reports := Validator().Reports()
	if len(reports) != 1 || !strings.Contains(reports[0], "not held") {
		t.Fatalf("unlock-not-held not reported: %v", reports)
	}
}

func TestValidatorTracksDepthAndEdges(t *testing.T) {
	Validator().Reset()
	ca := NewLockClass("depth-a")
	cb := NewLockClass("depth-b")
	cc := NewLockClass("depth-c")
	la, lb, lc := NewSpinLock(ca), NewSpinLock(cb), NewSpinLock(cc)
	task := NewTask()
	la.Lock(task)
	lb.Lock(task)
	lc.Lock(task)
	lc.Unlock(task)
	lb.Unlock(task)
	la.Unlock(task)
	if d := Validator().MaxDepth(); d != 3 {
		t.Fatalf("MaxDepth = %d, want 3", d)
	}
	edges := Validator().OrderingEdges()
	want := []string{"depth-a->depth-b", "depth-a->depth-c", "depth-b->depth-c"}
	for _, w := range want {
		found := false
		for _, e := range edges {
			if e == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %q missing from %v", w, edges)
		}
	}
}

func TestLockValidationToggle(t *testing.T) {
	Validator().Reset()
	prev := SetLockValidation(false)
	defer SetLockValidation(prev)
	ca := NewLockClass("toggle-a")
	cb := NewLockClass("toggle-b")
	la, lb := NewKMutex(ca), NewKMutex(cb)
	task := NewTask()
	la.Lock(task)
	lb.Lock(task)
	lb.Unlock(task)
	la.Unlock(task)
	lb.Lock(task)
	la.Lock(task)
	la.Unlock(task)
	lb.Unlock(task)
	if reports := Validator().Reports(); len(reports) != 0 {
		t.Fatalf("validation disabled but reports recorded: %v", reports)
	}
}

func TestRWSemSharedReaders(t *testing.T) {
	Validator().Reset()
	s := NewRWSem(NewLockClass("rwsem-test"))
	var wg sync.WaitGroup
	hits := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := NewTask()
			s.DownRead(task)
			hits <- struct{}{}
			s.UpRead(task)
		}()
	}
	wg.Wait()
	if len(hits) != 4 {
		t.Fatalf("readers completed = %d, want 4", len(hits))
	}
}

func TestNewLockClassDedup(t *testing.T) {
	a := NewLockClass("dedup-class")
	b := NewLockClass("dedup-class")
	if a != b {
		t.Fatalf("same-name lock classes not deduplicated")
	}
	if a.Name() != "dedup-class" {
		t.Fatalf("Name = %q", a.Name())
	}
}
