package kbase

import (
	"reflect"
	"sync"
)

// The ERR_PTR idiom.
//
// Linux functions that return a pointer on success frequently encode a
// failure by casting a negative errno into the pointer value; callers
// must remember to test IS_ERR before dereferencing. The paper (§4.2)
// singles this pattern out as a source of type-confusion bugs. We
// reproduce the idiom faithfully enough to exhibit the bug class: an
// error "pointer" is a real, dereferenceable *T whose pointee is a
// zeroed sentinel object, so forgetting the IS_ERR check does not trap
// — it silently yields garbage state, exactly like the kernel bug.

type errPtrKey struct {
	typ reflect.Type
	err Errno
}

var (
	errPtrMu      sync.RWMutex
	errPtrByKey   = make(map[errPtrKey]any) // -> *T sentinel
	errPtrReverse = make(map[any]Errno)     // *T sentinel -> errno
)

// ErrPtr returns the sentinel *T encoding err, mimicking ERR_PTR().
// Calling it with EOK is a caller bug and panics (Linux would hand
// back a NULL-adjacent pointer; we make the misuse loud).
func ErrPtr[T any](err Errno) *T {
	if err == EOK {
		panic("kbase: ErrPtr(EOK)")
	}
	key := errPtrKey{typ: reflect.TypeOf((*T)(nil)), err: err}
	errPtrMu.RLock()
	p, ok := errPtrByKey[key]
	errPtrMu.RUnlock()
	if ok {
		return p.(*T)
	}
	errPtrMu.Lock()
	defer errPtrMu.Unlock()
	if p, ok := errPtrByKey[key]; ok {
		return p.(*T)
	}
	sentinel := new(T)
	errPtrByKey[key] = sentinel
	errPtrReverse[sentinel] = err
	return sentinel
}

// IsErr reports whether p is an error-encoding sentinel, mimicking
// IS_ERR(). A nil pointer is not an error sentinel (as in Linux).
func IsErr[T any](p *T) bool {
	if p == nil {
		return false
	}
	errPtrMu.RLock()
	_, ok := errPtrReverse[any(p)]
	errPtrMu.RUnlock()
	return ok
}

// PtrErr extracts the errno from an error-encoding sentinel, mimicking
// PTR_ERR(). For a non-sentinel pointer it returns EOK — silently, as
// the C macro would produce a meaningless integer; callers that probe
// unconditionally inherit the same fragility as the original idiom.
func PtrErr[T any](p *T) Errno {
	if p == nil {
		return EOK
	}
	errPtrMu.RLock()
	e := errPtrReverse[any(p)]
	errPtrMu.RUnlock()
	return e
}

// IsErrOrNil mimics IS_ERR_OR_NULL().
func IsErrOrNil[T any](p *T) bool { return p == nil || IsErr(p) }
