package kbase

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d", c.Now())
	}
	if got := c.Advance(5); got != 5 {
		t.Fatalf("Advance returned %d", got)
	}
	c.Advance(3)
	if c.Now() != 8 {
		t.Fatalf("Now = %d, want 8", c.Now())
	}
}

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRng(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRng(42).Uint64() == c.Uint64() && i > 0 {
			continue
		}
		same = false
	}
	if same {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestRngIntnRange(t *testing.T) {
	r := NewRng(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
	}
}

func TestRngIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) did not panic")
		}
	}()
	NewRng(1).Intn(0)
}

func TestRngFloat64Range(t *testing.T) {
	r := NewRng(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestRngBoolProbabilityExtremes(t *testing.T) {
	r := NewRng(11)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatalf("Bool(0) returned true")
		}
		if !r.Bool(1.1) {
			t.Fatalf("Bool(>1) returned false")
		}
	}
}

func TestRngPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRng(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRngBytesFills(t *testing.T) {
	r := NewRng(13)
	b := make([]byte, 33)
	r.Bytes(b)
	zero := 0
	for _, v := range b {
		if v == 0 {
			zero++
		}
	}
	if zero == len(b) {
		t.Fatalf("Bytes left buffer all-zero")
	}
}

func TestRngForkIndependence(t *testing.T) {
	parent := NewRng(99)
	child := parent.Fork()
	// The child stream must not simply replay the parent stream.
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatalf("fork replayed parent stream")
	}
}
