// Package kbase provides the core substrate of the simulated
// Linux-like kernel: error codes and the error-pointer idiom, lock
// primitives with lock-order tracking, object lifetimes, and
// oops/panic capture.
//
// The package intentionally reproduces the C design patterns the paper
// critiques (ERR_PTR casts, ad-hoc locking contracts) so that the
// safety framework in internal/safety has the same shape of problem to
// fix that the authors face in Linux.
package kbase

import "fmt"

// Errno is a kernel error code. The simulated kernel follows the Linux
// convention of small negative integers; Errno stores the positive
// magnitude and renders with the conventional E-name.
type Errno int

// Kernel error codes used throughout the simulated kernel. Values
// match Linux's asm-generic/errno-base.h where they exist there.
const (
	EOK          Errno = 0   // no error
	EPERM        Errno = 1   // operation not permitted
	ENOENT       Errno = 2   // no such file or directory
	EINTR        Errno = 4   // interrupted
	EIO          Errno = 5   // I/O error
	EBADF        Errno = 9   // bad file descriptor
	EAGAIN       Errno = 11  // try again
	ENOMEM       Errno = 12  // out of memory
	EACCES       Errno = 13  // permission denied
	EFAULT       Errno = 14  // bad address
	EBUSY        Errno = 16  // device or resource busy
	EEXIST       Errno = 17  // file exists
	EXDEV        Errno = 18  // cross-device link
	ENODEV       Errno = 19  // no such device
	ENOTDIR      Errno = 20  // not a directory
	EISDIR       Errno = 21  // is a directory
	EINVAL       Errno = 22  // invalid argument
	ENFILE       Errno = 23  // file table overflow
	EMFILE       Errno = 24  // too many open files
	EFBIG        Errno = 27  // file too large
	ENOSPC       Errno = 28  // no space left on device
	EROFS        Errno = 30  // read-only file system
	EPIPE        Errno = 32  // broken pipe
	ENAMETOOLONG Errno = 36  // file name too long
	ENOSYS       Errno = 38  // function not implemented
	ENOTEMPTY    Errno = 39  // directory not empty
	ELOOP        Errno = 40  // too many symbolic links
	EPROTO       Errno = 71  // protocol error
	EOVERFLOW    Errno = 75  // value too large
	EMSGSIZE     Errno = 90  // message too long
	EADDRINUSE   Errno = 98  // address already in use (port space exhausted)
	ENETUNREACH  Errno = 101 // network is unreachable (partitioned link)
	ECONNRESET   Errno = 104 // connection reset by peer
	ENOBUFS      Errno = 105 // no buffer space available
	EISCONN      Errno = 106 // already connected
	ENOTCONN     Errno = 107 // not connected
	ESHUTDOWN    Errno = 108 // endpoint shut down (quarantined compartment)
	ETIMEDOUT    Errno = 110 // connection timed out
	ECONNREFUSED Errno = 111 // connection refused
	EALREADY     Errno = 114 // operation already in progress
	EINPROGRESS  Errno = 115 // operation in progress
	ESTALE       Errno = 116 // stale file handle
	EUCLEAN      Errno = 117 // structure needs cleaning (fs corruption)
)

var errnoNames = map[Errno]string{
	EOK: "EOK", EPERM: "EPERM", ENOENT: "ENOENT", EINTR: "EINTR",
	EIO: "EIO", EBADF: "EBADF", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM",
	EACCES: "EACCES", EFAULT: "EFAULT", EBUSY: "EBUSY", EEXIST: "EEXIST",
	EXDEV: "EXDEV", ENODEV: "ENODEV", ENOTDIR: "ENOTDIR", EISDIR: "EISDIR",
	EINVAL: "EINVAL", ENFILE: "ENFILE", EMFILE: "EMFILE", EFBIG: "EFBIG",
	ENOSPC: "ENOSPC", EROFS: "EROFS", EPIPE: "EPIPE",
	ENAMETOOLONG: "ENAMETOOLONG", ENOSYS: "ENOSYS", ENOTEMPTY: "ENOTEMPTY",
	ELOOP: "ELOOP", EPROTO: "EPROTO", EOVERFLOW: "EOVERFLOW",
	EMSGSIZE: "EMSGSIZE", EADDRINUSE: "EADDRINUSE", ENETUNREACH: "ENETUNREACH",
	ECONNRESET: "ECONNRESET", ENOBUFS: "ENOBUFS", ESHUTDOWN: "ESHUTDOWN",
	EISCONN: "EISCONN", ENOTCONN: "ENOTCONN", ETIMEDOUT: "ETIMEDOUT",
	ECONNREFUSED: "ECONNREFUSED", EALREADY: "EALREADY",
	EINPROGRESS: "EINPROGRESS", ESTALE: "ESTALE", EUCLEAN: "EUCLEAN",
}

// Error implements the error interface so an Errno can flow through Go
// error returns at the boundary between the simulated kernel and test
// harnesses.
func (e Errno) Error() string {
	if name, ok := errnoNames[e]; ok {
		return name
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// String returns the conventional E-name.
func (e Errno) String() string { return e.Error() }

// IsError reports whether e denotes a failure (non-zero).
func (e Errno) IsError() bool { return e != EOK }

// OrNil converts an Errno to a Go error, mapping EOK to nil. This is
// the escape hatch for harness code; in-kernel code passes Errno
// values directly, as Linux does.
func (e Errno) OrNil() error {
	if e == EOK {
		return nil
	}
	return e
}
