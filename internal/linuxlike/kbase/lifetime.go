package kbase

import (
	"sync"
)

// Object lifetime tracking (a miniature KASAN).
//
// Legacy modules manage object lifetimes manually through KAlloc /
// KFree, as kernel C does with kmalloc/kfree. The Arena tracks each
// object's state so that use-after-free, double-free, and leaks are
// detectable — the way KASAN and kmemleak detect them in real kernels.
// Safe modules do not use the Arena at all; their allocations are
// governed by the ownership framework, which rules these bug classes
// out by construction rather than detecting them after the fact.

// ObjState is the lifecycle state of a tracked object.
type ObjState uint8

// Object lifecycle states.
const (
	ObjLive ObjState = iota
	ObjFreed
)

// Arena tracks manually-managed kernel objects for one subsystem.
type Arena struct {
	module string
	mu     sync.Mutex
	state  map[any]ObjState
	allocs uint64
	frees  uint64
}

// NewArena creates an arena whose reports are attributed to module.
func NewArena(module string) *Arena {
	return &Arena{module: module, state: make(map[any]ObjState)}
}

// Alloc registers obj as live. Passing an already-live object is a
// substrate bug and panics. Go has no generic methods, so the typed
// entry points are package functions over the arena; the dynamically
// typed tracking map stays an internal detail.
func Alloc[T comparable](a *Arena, obj T) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.state[obj]; ok && s == ObjLive {
		panic("kbase: Arena Alloc of live object")
	}
	a.state[obj] = ObjLive
	a.allocs++
}

// Free marks obj freed. Freeing an already-freed object raises a
// double-free oops; freeing an unknown object raises a generic oops.
func Free[T comparable](a *Arena, obj T) {
	a.mu.Lock()
	s, ok := a.state[obj]
	if ok && s == ObjLive {
		a.state[obj] = ObjFreed
		a.frees++
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	if ok && s == ObjFreed {
		Oops(OopsDoubleFree, a.module, "double free of %T", obj)
		return
	}
	Oops(OopsGeneric, a.module, "free of unallocated %T", obj)
}

// Access validates that obj is live before a use. A freed object
// raises a use-after-free oops and returns false; callers in legacy
// style typically ignore the return value, which is the point.
func Access[T comparable](a *Arena, obj T) bool {
	a.mu.Lock()
	s, ok := a.state[obj]
	a.mu.Unlock()
	if !ok {
		return true // untracked objects are out of scope
	}
	if s == ObjFreed {
		Oops(OopsUseAfterFree, a.module, "use after free of %T", obj)
		return false
	}
	return true
}

// Live returns the number of currently live objects.
func (a *Arena) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, s := range a.state {
		if s == ObjLive {
			n++
		}
	}
	return n
}

// Stats returns total allocations and frees.
func (a *Arena) Stats() (allocs, frees uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs, a.frees
}

// CheckLeaks raises a memory-leak oops if any object is still live and
// returns the number of leaked objects (a kmemleak sweep at module
// unload).
func (a *Arena) CheckLeaks() int {
	n := a.Live()
	if n > 0 {
		Oops(OopsLeak, a.module, "%d objects leaked at unload", n)
	}
	return n
}
