package kbase

import "sync"

// Hierarchical timer wheel, in the shape of the kernel's timers: a
// stack of levels, each 64 slots wide, where level L buckets deadlines
// at a granularity of 64^L jiffies. Arming, canceling and re-arming a
// timer are O(1); advancing the clock touches only the slots that
// expire, cascading higher-level buckets down exactly when the
// lower-level wheel wraps. That makes a million idle connections cost
// nothing per tick — an unarmed timer is not in any slot — and a
// retransmission timer costs one unlink/link per re-arm instead of a
// sorted walk of every connection.
//
// Unlike the kernel's lazy wheel (which fires high-level timers up to
// a granularity early), this wheel cascades entries to level 0 before
// their deadline, so every timer fires at exactly its armed jiffy.
// The simulator's protocol machinery depends on exact deadlines: the
// differential sweep would diverge on a timer that fired a jiffy
// early.
//
// Timers are intrusive: the owner embeds a WheelTimer in its own
// struct, so arm/cancel allocate nothing. The Owner field carries the
// typed back-pointer (a *TCB, a *Conn) handed to the fire callback.
//
// Arm and Cancel are safe for concurrent use, including from inside a
// fire callback: Advance detaches each jiffy's expiring timers under
// the lock, then fires them with the lock released, so callbacks
// re-arm freely (the RTO pattern). Advance itself must not be called
// concurrently with another Advance, and the OnCascade hook runs with
// the lock held.

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelLevels = 6              // horizon 64^6 ≈ 6.9e10 jiffies
	wheelMask   = wheelSlots - 1
)

// WheelTimer is one intrusive timer node. Embed it (by value) in the
// timed object and pass its address to Arm/Cancel. The zero value is
// an unarmed timer.
type WheelTimer[T any] struct {
	next, prev *WheelTimer[T]
	head       *wheelSlot[T] // non-nil while armed
	expiry     uint64
	// Owner is the typed back-pointer handed to the fire callback.
	Owner T
}

// Armed reports whether the timer currently sits in a wheel slot.
func (t *WheelTimer[T]) Armed() bool { return t.head != nil }

// Expiry returns the armed deadline (meaningful only while Armed).
func (t *WheelTimer[T]) Expiry() uint64 { return t.expiry }

// wheelSlot is one bucket: a doubly-linked list of timers.
type wheelSlot[T any] struct {
	list *WheelTimer[T] // insertion-ordered: list is the oldest
	tail *WheelTimer[T]
}

func (s *wheelSlot[T]) push(t *WheelTimer[T]) {
	t.head = s
	t.next = nil
	t.prev = s.tail
	if s.tail != nil {
		s.tail.next = t
	} else {
		s.list = t
	}
	s.tail = t
}

func (s *wheelSlot[T]) unlink(t *WheelTimer[T]) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		s.list = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		s.tail = t.prev
	}
	t.next, t.prev, t.head = nil, nil, nil
}

// WheelStats counts wheel activity since creation.
type WheelStats struct {
	Arms     uint64 // Arm calls (including re-arms)
	Cancels  uint64 // Cancel calls that removed an armed timer
	Fired    uint64 // timers delivered to the fire callback
	Cascades uint64 // non-empty higher-level slots pulled down
	Moved    uint64 // timers moved by cascades
}

// TimerWheel is the hierarchical wheel. Create with NewTimerWheel.
type TimerWheel[T any] struct {
	mu     sync.Mutex
	now    uint64 // all timers with expiry <= now have fired
	armed  int
	levels [wheelLevels][wheelSlots]wheelSlot[T]
	stats  WheelStats
	firing []*WheelTimer[T] // Advance's scratch batch, reused across calls

	// OnCascade, when set, observes each non-empty cascade (level,
	// timers moved). It runs with the wheel lock held: emit a
	// tracepoint or record a histogram, nothing more.
	OnCascade func(level, moved int)
}

// NewTimerWheel creates a wheel whose clock reads now; timers armed at
// expiry <= now are clamped to now+1.
func NewTimerWheel[T any](now uint64) *TimerWheel[T] {
	return &TimerWheel[T]{now: now}
}

// Now returns the wheel clock.
func (w *TimerWheel[T]) Now() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// Len returns the number of armed timers.
func (w *TimerWheel[T]) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.armed
}

// Stats returns a snapshot of wheel counters.
func (w *TimerWheel[T]) Stats() WheelStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// slotFor places an expiry relative to the wheel clock: level 0 holds
// deadlines within 64 jiffies, level L within 64^(L+1). Deltas beyond
// the horizon park at the top level and re-cascade until they drain.
// All arithmetic is mod 2^64, so a clock wrap mid-horizon places (and
// later fires) timers correctly.
func (w *TimerWheel[T]) slotFor(expiry uint64) *wheelSlot[T] {
	delta := expiry - w.now
	for lvl := 0; lvl < wheelLevels-1; lvl++ {
		if delta <= uint64(wheelSlots)<<(wheelBits*lvl) {
			return &w.levels[lvl][(expiry>>(wheelBits*lvl))&wheelMask]
		}
	}
	lvl := wheelLevels - 1
	return &w.levels[lvl][(expiry>>(wheelBits*lvl))&wheelMask]
}

// Arm schedules (or re-schedules) t to fire at expiry. Expiries at or
// before the wheel clock clamp to the next jiffy — a timer can never
// fire in the past, only on the next Advance.
func (w *TimerWheel[T]) Arm(t *WheelTimer[T], expiry uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.armLocked(t, expiry)
}

func (w *TimerWheel[T]) armLocked(t *WheelTimer[T], expiry uint64) {
	if t.head != nil {
		if t.expiry == expiry {
			return // already armed there
		}
		t.head.unlink(t)
		w.armed--
	}
	if expiry-w.now == 0 || expiry-w.now > 1<<63 {
		expiry = w.now + 1 // clamp past/now deadlines to the next jiffy
	}
	t.expiry = expiry
	w.slotFor(expiry).push(t)
	w.armed++
	w.stats.Arms++
}

// Cancel removes t from the wheel if armed. Safe on an unarmed timer.
func (w *TimerWheel[T]) Cancel(t *WheelTimer[T]) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if t.head == nil {
		return
	}
	t.head.unlink(t)
	w.armed--
	w.stats.Cancels++
}

// cascade pulls one higher-level slot down: every timer re-inserts at
// its exact expiry, landing one or more levels lower. The list is
// detached wholesale first — a beyond-horizon timer that re-parks in
// the same slot must land on a fresh list, not splice into the walk.
func (w *TimerWheel[T]) cascade(lvl int, idx uint64) {
	s := &w.levels[lvl][idx]
	t := s.list
	if t == nil {
		return
	}
	s.list, s.tail = nil, nil
	moved := 0
	for t != nil {
		next := t.next
		t.next, t.prev, t.head = nil, nil, nil
		w.slotFor(t.expiry).push(t)
		moved++
		t = next
	}
	w.stats.Cascades++
	w.stats.Moved += uint64(moved)
	if w.OnCascade != nil {
		w.OnCascade(lvl, moved)
	}
}

// Advance moves the wheel clock to target, firing every timer whose
// expiry falls in (now, target] in deadline order (insertion order
// within a jiffy). Each jiffy's expiring timers are detached under the
// lock and fired with the lock released, so the fire callback may
// Arm or Cancel freely; a re-arm at or before the current jiffy lands
// on the next one. A timer canceled by an earlier callback in the same
// jiffy's batch still fires (it had already expired) — owners guard
// with their own state, as the TCB's closed check does. Returns the
// number fired.
func (w *TimerWheel[T]) Advance(target uint64, fire func(owner T)) int {
	w.mu.Lock()
	if target-w.now > 1<<63 {
		w.mu.Unlock()
		return 0 // target is behind the wheel clock: nothing to do
	}
	fired := 0
	for w.now != target {
		if w.armed == 0 {
			// Empty wheel: slot state is derived from absolute
			// expiries, so the clock can jump.
			w.now = target
			break
		}
		w.now++
		j := w.now
		// Cascade every level whose lower wheel just wrapped. Level L
		// wraps when the low 6L bits of the clock hit zero.
		for lvl := 1; lvl < wheelLevels; lvl++ {
			if j&((1<<(wheelBits*lvl))-1) != 0 {
				break
			}
			w.cascade(lvl, (j>>(wheelBits*lvl))&wheelMask)
		}
		// Detach the level-0 slot's expired timers. Cascading keeps the
		// invariant that everything here expires at exactly j; entries
		// at j+64k (same slot, later lap) are skipped by the guard.
		batch := w.firing[:0]
		s := &w.levels[0][j&wheelMask]
		for t := s.list; t != nil; {
			next := t.next
			if t.expiry == j {
				s.unlink(t)
				w.armed--
				batch = append(batch, t)
			}
			t = next
		}
		if len(batch) == 0 {
			continue
		}
		w.stats.Fired += uint64(len(batch))
		fired += len(batch)
		w.mu.Unlock()
		for _, t := range batch {
			fire(t.Owner)
		}
		w.mu.Lock()
		w.firing = batch[:0]
	}
	w.mu.Unlock()
	return fired
}
