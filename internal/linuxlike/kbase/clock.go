package kbase

import (
	"sync"
	"sync/atomic"
)

// Simulated time and deterministic randomness.
//
// All simulation components draw time from a Clock and randomness from
// an Rng so that every experiment is reproducible from a seed. The
// clock is a simple jiffies counter advanced by the I/O and network
// models; nothing in the simulated kernel reads wall-clock time.

// Clock is a monotonically advancing jiffies counter.
type Clock struct {
	jiffies atomic.Uint64
}

// NewClock returns a clock at jiffy 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current jiffy.
func (c *Clock) Now() uint64 { return c.jiffies.Load() }

// Advance moves the clock forward by n jiffies and returns the new
// time.
func (c *Clock) Advance(n uint64) uint64 { return c.jiffies.Add(n) }

// Rng is a small, fast, deterministic PRNG (splitmix64). It is
// goroutine-safe; simulation components that need independent streams
// should Fork.
type Rng struct {
	mu    sync.Mutex
	state uint64
}

// NewRng returns a generator seeded with seed.
func NewRng(seed uint64) *Rng { return &Rng{state: seed} }

// Uint64 returns the next value.
func (r *Rng) Uint64() uint64 {
	r.mu.Lock()
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("kbase: Rng.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rng) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent stream.
func (r *Rng) Fork() *Rng { return NewRng(r.Uint64()) }

// Bytes fills b with pseudo-random bytes.
func (r *Rng) Bytes(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
