package kbase

import (
	"math/bits"
	"sync"
	"testing"
	"time"
)

// TestLockStatHoldHistogram: every hold lands in the log2 bucket its
// duration selects (bucket i ⇔ bits.Len64(ns) == i) and the bucket
// totals match the acquisition count.
func TestLockStatHoldHistogram(t *testing.T) {
	withLockStat(t)
	cls := NewLockClass("lockstat.test.holdhist")
	l := NewSpinLock(cls)
	task := NewTask()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		l.Lock(task)
		l.Unlock(task)
	}
	l.Lock(task)
	time.Sleep(2 * time.Millisecond)
	l.Unlock(task)

	s := findClass(t, "lockstat.test.holdhist")
	var total uint64
	for _, c := range s.HoldHist {
		total += c
	}
	if total != rounds+1 {
		t.Fatalf("hold histogram holds %d samples, want %d", total, rounds+1)
	}
	// The 2ms hold must be in a bucket covering >= 1ms.
	msBucket := bits.Len64(uint64(time.Millisecond))
	var slow uint64
	for i := msBucket; i < LockHistBuckets; i++ {
		slow += s.HoldHist[i]
	}
	if slow == 0 {
		t.Fatalf("2ms hold not in any >=2^%d bucket: %v", msBucket-1, s.HoldHist)
	}
}

// TestLockStatWaitHistogram: blocked acquisitions populate WaitHist and
// its total equals Contended exactly.
func TestLockStatWaitHistogram(t *testing.T) {
	withLockStat(t)
	cls := NewLockClass("lockstat.test.waithist")
	l := NewSpinLock(cls)

	const goroutines = 4
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := NewTask()
			for i := 0; i < perG; i++ {
				l.Lock(task)
				time.Sleep(20 * time.Microsecond)
				l.Unlock(task)
			}
		}()
	}
	wg.Wait()

	s := findClass(t, "lockstat.test.waithist")
	if s.Contended == 0 {
		t.Skip("no contention observed on this run; nothing to verify")
	}
	var total uint64
	for _, c := range s.WaitHist {
		total += c
	}
	if total != s.Contended {
		t.Fatalf("wait histogram holds %d samples, Contended is %d", total, s.Contended)
	}
}

func TestLockStatResetClearsHistograms(t *testing.T) {
	withLockStat(t)
	cls := NewLockClass("lockstat.test.histreset")
	l := NewSpinLock(cls)
	task := NewTask()
	l.Lock(task)
	l.Unlock(task)
	ResetLockStats()
	for _, s := range LockStats() {
		if s.Class != "lockstat.test.histreset" {
			continue
		}
		for i, c := range s.HoldHist {
			if c != 0 {
				t.Fatalf("ResetLockStats left hold bucket %d = %d", i, c)
			}
		}
	}
}
