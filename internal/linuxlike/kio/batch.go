package kio

import (
	"sync"

	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/ktrace"
	"safelinux/internal/safety/own"
)

// Batch is a submission queue under construction: enqueue SQEs, then
// Submit to dispatch them. A Batch is single-goroutine state; Submit
// may be called repeatedly (each call dispatches the SQEs enqueued
// since the last one) and every call returns the same Ticket, so a
// producer can overlap enqueueing with in-flight I/O.
type Batch struct {
	e       *Engine
	pending []*sqe
	t       *Ticket
	// lastWrite maps block -> index in t's submit order of the most
	// recent un-superseded write, for duplicate-block merge. A read
	// of the block or a barrier pins earlier writes (clears the
	// entry): the read must observe the earlier write through the
	// device cache, and a barrier promises its durability.
	lastWrite map[uint64]*sqe
}

// NewBatch starts an empty batch.
func (e *Engine) NewBatch() *Batch {
	return &Batch{e: e, t: newTicket(), lastWrite: make(map[uint64]*sqe)}
}

// Read enqueues a read of block into buf, which must be exactly one
// block long and stay untouched until the SQE completes. user is
// returned verbatim in the CQE.
func (b *Batch) Read(block uint64, buf []byte, user uint64) kbase.Errno {
	if len(buf) != b.e.backend.BlockSize() {
		return kbase.EINVAL
	}
	if block >= b.e.backend.Blocks() {
		return kbase.EINVAL
	}
	delete(b.lastWrite, block)
	b.enqueue(&sqe{op: OpRead, block: block, user: user, buf: buf})
	return kbase.EOK
}

// Write enqueues a write of data to block on the legacy copying path:
// the batch copies data now (the caller may reuse the buffer
// immediately), exactly the one defensive copy every synchronous
// blockdev.Write performs. Stats().BytesCopied accounts it.
func (b *Batch) Write(block uint64, data []byte, user uint64) kbase.Errno {
	if len(data) != b.e.backend.BlockSize() {
		return kbase.EINVAL
	}
	if block >= b.e.backend.Blocks() {
		return kbase.EINVAL
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.e.copied.Add(uint64(len(cp)))
	b.e.copies.Add(1)
	b.enqueueWrite(&sqe{op: OpWrite, block: block, user: user, buf: cp})
	return kbase.EOK
}

// WriteOwned enqueues a write of an owned page on the zero-copy path:
// ownership moves into the engine (the caller's handles go stale at
// this call, per sharing model 1), the payload slice travels to the
// device without a copy, and the completion CQE returns a fresh page.
// The page must hold exactly one block.
func (b *Batch) WriteOwned(block uint64, page own.Owned[[]byte], user uint64) kbase.Errno {
	if block >= b.e.backend.Blocks() {
		return kbase.EINVAL
	}
	moved := page.Move()
	if !moved.Valid() {
		return kbase.EINVAL // stale/freed/borrowed handle; violation already recorded
	}
	var buf []byte
	moved.Read(func(p []byte) { buf = p })
	if len(buf) != b.e.backend.BlockSize() {
		// Wrong-size page: the engine owns it now and must not leak
		// it. Free and reject.
		moved.Free()
		return kbase.EINVAL
	}
	b.e.avoided.Add(1)
	b.enqueueWrite(&sqe{op: OpWrite, block: block, user: user, buf: buf, owned: true, page: moved})
	return kbase.EOK
}

// Barrier enqueues a flush SQE with a completion dependency on every
// SQE dispatched before it (IO_DRAIN semantics): the dispatcher
// drains all in-flight work, then flushes the device, making every
// earlier write durable before anything after the barrier starts.
func (b *Batch) Barrier(user uint64) {
	clear(b.lastWrite)
	b.enqueue(&sqe{op: OpFlush, user: user})
}

// enqueueWrite enqueues a write SQE, merging a duplicate-block
// predecessor: if an earlier write to the same block is still pending
// in this batch with no read of the block or barrier between, the
// earlier SQE completes immediately as Merged (its payload can never
// be observed — the device write cache is last-write-wins and no
// barrier pinned it).
func (b *Batch) enqueueWrite(s *sqe) {
	if prev, ok := b.lastWrite[s.block]; ok {
		for i, p := range b.pending {
			if p == prev {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				b.e.completeMerged(prev)
				break
			}
		}
	}
	b.lastWrite[s.block] = s
	b.enqueue(s)
}

func (b *Batch) enqueue(s *sqe) {
	s.t = b.t
	s.idx = b.t.addSlot()
	if ktrace.TimingSample() {
		s.tNs = ktrace.NowNs()
	}
	b.pending = append(b.pending, s)
	b.e.submitted.Add(1)
	if tpSubmit.Enabled() {
		tpSubmit.Emit(0, s.block, uint64(s.op))
	}
}

// Submit dispatches every SQE enqueued since the last Submit and
// returns the batch's Ticket. Submitting on a closed engine completes
// the SQEs immediately with ENODEV; a containment boundary that
// rejects the dispatch (contained fault, quarantined engine) likewise
// completes every SQE with its typed errno through the normal CQE
// path, so no submitter is left blocked in Wait.
func (b *Batch) Submit() *Ticket {
	if len(b.pending) == 0 {
		return b.t
	}
	batch := b.pending
	b.pending = nil
	clear(b.lastWrite)
	if box := b.e.boundary.Load(); box != nil {
		if err := box.b.Run("submit", func() kbase.Errno {
			b.e.batches.Add(1)
			b.e.send(batch)
			return kbase.EOK
		}); err != kbase.EOK {
			for _, s := range batch {
				b.e.complete(s, err)
			}
		}
		return b.t
	}
	b.e.batches.Add(1)
	b.e.send(batch)
	return b.t
}

// Ticket joins a batch's completions: Wait blocks until every SQE
// submitted through the batch so far has completed and returns the
// CQEs in submit order.
type Ticket struct {
	mu      sync.Mutex
	cond    *sync.Cond
	results []CQE
	done    int
}

func newTicket() *Ticket {
	t := &Ticket{}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func (t *Ticket) addSlot() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.results = append(t.results, CQE{})
	return len(t.results) - 1
}

func (t *Ticket) deliver(idx int, cqe CQE) {
	t.mu.Lock()
	t.results[idx] = cqe
	t.done++
	if t.done == len(t.results) {
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// Done reports whether every submitted SQE has completed (polling).
func (t *Ticket) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done == len(t.results)
}

// Wait blocks until all SQEs submitted so far complete, then returns
// their CQEs in submit order. The slice is shared across Wait calls;
// callers must not mutate it.
func (t *Ticket) Wait() []CQE {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.done != len(t.results) {
		t.cond.Wait()
	}
	return t.results
}

// Err waits for completion and returns the first non-EOK result in
// submit order (EOK when everything succeeded).
func (t *Ticket) Err() kbase.Errno {
	for _, cqe := range t.Wait() {
		if cqe.Err != kbase.EOK {
			return cqe.Err
		}
	}
	return kbase.EOK
}
