package kio

import "sync"
import "sync/atomic"

// The completion ring.
//
// Producers use the ktrace ring discipline — one fetch-add on a
// sequence counter to reserve a slot, one atomic pointer store to
// publish — so completing workers never contend on a lock. Unlike the
// trace ring, the CQ has a consuming reader with ordering guarantees
// (io_uring's CQ head), so slots form a single power-of-two array
// indexed by sequence rather than ktrace's striped shards: the reader
// walks sequences in order, and a slot whose published sequence has
// already lapped the cursor means completions outran reaping — those
// entries are gone and counted as overflows, the flight-recorder
// wraparound semantics applied to completions.

// cqSlot is one published completion: the sequence it was reserved
// under plus the payload.
type cqSlot struct {
	seq uint64
	cqe CQE
}

type cq struct {
	seq       atomic.Uint64 // last reserved sequence (first is 1)
	mask      uint64
	slots     []atomic.Pointer[cqSlot]
	overflows atomic.Uint64

	// reader state: single consumer, serialized by mu so concurrent
	// Reap calls do not interleave cursors.
	mu     sync.Mutex
	cursor uint64 // last sequence consumed
}

func newCQ(capacity int) *cq {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &cq{mask: uint64(n - 1), slots: make([]atomic.Pointer[cqSlot], n)}
}

// push publishes one completion. Lock-free: fetch-add reserve, pointer
// publish, wraparound overwrite.
func (q *cq) push(cqe CQE) {
	s := q.seq.Add(1)
	q.slots[s&q.mask].Store(&cqSlot{seq: s, cqe: cqe})
}

// reap consumes up to maxN completions in sequence order. It stops
// early at a slot whose producer has reserved but not yet published
// (that completion will be seen by the next reap); it skips over
// overwritten entries, counting them as overflows.
func (q *cq) reap(maxN int) []CQE {
	if maxN <= 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []CQE
	for len(out) < maxN {
		want := q.cursor + 1
		latest := q.seq.Load()
		if want > latest {
			break // nothing reserved beyond the cursor
		}
		if latest > q.mask {
			// The oldest sequence that can still be live in the ring.
			if oldest := latest - q.mask; want < oldest {
				q.overflows.Add(oldest - want)
				q.cursor = oldest - 1
				continue
			}
		}
		slot := q.slots[want&q.mask].Load()
		if slot == nil || slot.seq < want {
			break // reserved but not yet published; retry next reap
		}
		if slot.seq > want {
			// Lapped between the sequence load and the slot load; the
			// next iteration's oldest-live check accounts the loss.
			continue
		}
		out = append(out, slot.cqe)
		q.cursor = want
	}
	return out
}
