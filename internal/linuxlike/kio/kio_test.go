package kio

import (
	"bytes"
	"sync"
	"testing"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/safety/own"
)

func testEngine(t *testing.T, blocks uint64, cfg Config) (*Engine, *blockdev.Device) {
	t.Helper()
	dev := blockdev.New(blockdev.Config{Blocks: blocks, BlockSize: 64, Rng: kbase.NewRng(7)})
	e := New(dev, cfg)
	t.Cleanup(e.Close)
	return e, dev
}

func fill(n int, b byte) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestWriteReadRoundTrip(t *testing.T) {
	e, _ := testEngine(t, 32, Config{})
	b := e.NewBatch()
	want := fill(e.BlockSize(), 0xAB)
	if err := b.Write(3, want, 1); err != kbase.EOK {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, e.BlockSize())
	if err := b.Read(3, got, 2); err != kbase.EOK {
		t.Fatalf("Read: %v", err)
	}
	cqes := b.Submit().Wait()
	if len(cqes) != 2 {
		t.Fatalf("got %d CQEs, want 2", len(cqes))
	}
	for i, cqe := range cqes {
		if cqe.Err != kbase.EOK {
			t.Fatalf("CQE %d: %v", i, cqe.Err)
		}
	}
	if cqes[0].User != 1 || cqes[1].User != 2 {
		t.Fatalf("user tags out of order: %d, %d", cqes[0].User, cqes[1].User)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read after write through the engine mismatched")
	}
}

func TestBarrierMakesWritesDurable(t *testing.T) {
	e, dev := testEngine(t, 32, Config{Workers: 4})
	b := e.NewBatch()
	payload := make(map[uint64][]byte)
	for blk := uint64(0); blk < 20; blk++ {
		payload[blk] = fill(e.BlockSize(), byte(blk+1))
		if err := b.Write(blk, payload[blk], blk); err != kbase.EOK {
			t.Fatalf("Write(%d): %v", blk, err)
		}
	}
	b.Barrier(99)
	if err := b.Submit().Err(); err != kbase.EOK {
		t.Fatalf("batch: %v", err)
	}
	// Every write was flushed by the barrier: a crash that drops the
	// write cache must not lose them.
	dev.CrashApplyNone()
	buf := make([]byte, e.BlockSize())
	for blk, want := range payload {
		if err := dev.Read(blk, buf); err != kbase.EOK {
			t.Fatalf("Read(%d): %v", blk, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %d not durable after barrier", blk)
		}
	}
	if got := e.Stats().Barriers; got != 1 {
		t.Fatalf("Barriers = %d, want 1", got)
	}
}

func TestZeroCopyOwnershipPath(t *testing.T) {
	ck := own.NewChecker(own.PolicyRecord)
	e, dev := testEngine(t, 32, Config{Checker: ck})

	page := own.New(ck, "test:page", fill(e.BlockSize(), 0x5A))
	b := e.NewBatch()
	if err := b.WriteOwned(7, page, 1); err != kbase.EOK {
		t.Fatalf("WriteOwned: %v", err)
	}
	// Ownership moved at the call: the caller's handle is stale now.
	if page.Valid() {
		t.Fatal("submitter handle still valid after ownership-move submit")
	}
	b.Barrier(2)
	cqes := b.Submit().Wait()
	if cqes[0].Err != kbase.EOK {
		t.Fatalf("write CQE: %v", cqes[0].Err)
	}
	// The completion returns a fresh page, which the submitter now owns
	// (and is obliged to free).
	if !cqes[0].Page.Valid() {
		t.Fatal("owned completion carries no replacement page")
	}
	cqes[0].Page.Free()

	st := e.Stats()
	if st.CopiesAvoided != 1 {
		t.Fatalf("CopiesAvoided = %d, want 1", st.CopiesAvoided)
	}
	if st.BytesCopied != 0 || st.CopiesPerformed != 0 {
		t.Fatalf("ownership path copied: BytesCopied=%d CopiesPerformed=%d",
			st.BytesCopied, st.CopiesPerformed)
	}
	buf := make([]byte, e.BlockSize())
	dev.Read(7, buf)
	if !bytes.Equal(buf, fill(e.BlockSize(), 0x5A)) {
		t.Fatal("moved payload did not reach the device")
	}
	if n := ck.Count(); n != 0 {
		t.Fatalf("checker recorded %d violations: %v", n, ck.Violations())
	}
	if leaks := ck.CheckLeaks(); len(leaks) != 0 {
		t.Fatalf("ownership path leaked: %v", leaks)
	}
}

func TestCopyPathCountsCopies(t *testing.T) {
	e, _ := testEngine(t, 32, Config{})
	b := e.NewBatch()
	data := fill(e.BlockSize(), 0x11)
	for blk := uint64(0); blk < 5; blk++ {
		b.Write(blk, data, blk)
	}
	if err := b.Submit().Err(); err != kbase.EOK {
		t.Fatalf("batch: %v", err)
	}
	st := e.Stats()
	if st.CopiesPerformed != 5 {
		t.Fatalf("CopiesPerformed = %d, want 5", st.CopiesPerformed)
	}
	if want := uint64(5 * e.BlockSize()); st.BytesCopied != want {
		t.Fatalf("BytesCopied = %d, want %d", st.BytesCopied, want)
	}
	// The caller's buffer is reusable immediately: mutate it and check
	// the device kept the original payload.
	b2 := e.NewBatch()
	b2.Write(10, data, 0)
	data[0] = 0xFF
	b2.Barrier(0)
	if err := b2.Submit().Err(); err != kbase.EOK {
		t.Fatalf("batch2: %v", err)
	}
	got := make([]byte, e.BlockSize())
	b3 := e.NewBatch()
	b3.Read(10, got, 0)
	if err := b3.Submit().Err(); err != kbase.EOK {
		t.Fatalf("read: %v", err)
	}
	if got[0] != 0x11 {
		t.Fatal("copying path aliased the caller's buffer")
	}
}

func TestWriteOwnedWrongSizeFreesPage(t *testing.T) {
	ck := own.NewChecker(own.PolicyRecord)
	e, _ := testEngine(t, 32, Config{Checker: ck})
	page := own.New(ck, "bad:page", make([]byte, 3))
	b := e.NewBatch()
	if err := b.WriteOwned(1, page, 0); err != kbase.EINVAL {
		t.Fatalf("wrong-size WriteOwned: %v, want EINVAL", err)
	}
	if leaks := ck.CheckLeaks(); len(leaks) != 0 {
		t.Fatalf("rejected page leaked: %v", leaks)
	}
	// A stale handle (already moved) is rejected and recorded.
	p2 := own.New(ck, "stale:page", make([]byte, e.BlockSize()))
	moved := p2.Move()
	if err := b.WriteOwned(1, p2, 0); err != kbase.EINVAL {
		t.Fatalf("stale WriteOwned: %v, want EINVAL", err)
	}
	if ck.CountKind(own.VUseAfterMove) == 0 {
		t.Fatal("stale-handle submit recorded no use-after-move violation")
	}
	moved.Free()
}

func TestDuplicateWriteMerge(t *testing.T) {
	e, dev := testEngine(t, 32, Config{})
	b := e.NewBatch()
	b.Write(5, fill(e.BlockSize(), 0x01), 1)
	b.Write(5, fill(e.BlockSize(), 0x02), 2) // supersedes the first
	b.Barrier(3)
	cqes := b.Submit().Wait()
	if !cqes[0].Merged {
		t.Fatal("superseded write not marked Merged")
	}
	if cqes[1].Merged {
		t.Fatal("surviving write marked Merged")
	}
	if e.Stats().Merged != 1 {
		t.Fatalf("Merged = %d, want 1", e.Stats().Merged)
	}
	buf := make([]byte, e.BlockSize())
	dev.Read(5, buf)
	if buf[0] != 0x02 {
		t.Fatal("merge did not keep the last write")
	}
	// A read between duplicate writes pins the earlier one: both must
	// execute, and the read observes the first payload.
	b2 := e.NewBatch()
	got := make([]byte, e.BlockSize())
	b2.Write(6, fill(e.BlockSize(), 0x0A), 1)
	b2.Read(6, got, 2)
	b2.Write(6, fill(e.BlockSize(), 0x0B), 3)
	cqes = b2.Submit().Wait()
	for i, cqe := range cqes {
		if cqe.Merged {
			t.Fatalf("CQE %d merged across a read of the block", i)
		}
		if cqe.Err != kbase.EOK {
			t.Fatalf("CQE %d: %v", i, cqe.Err)
		}
	}
	if got[0] != 0x0A {
		t.Fatal("read between duplicate writes saw the wrong payload")
	}
	// A barrier also pins: the first write's durability was promised.
	b3 := e.NewBatch()
	b3.Write(7, fill(e.BlockSize(), 0x0C), 1)
	b3.Barrier(2)
	b3.Write(7, fill(e.BlockSize(), 0x0D), 3)
	cqes = b3.Submit().Wait()
	if cqes[0].Merged {
		t.Fatal("write merged across a barrier")
	}
}

func TestReapPollingMode(t *testing.T) {
	e, _ := testEngine(t, 64, Config{})
	b := e.NewBatch()
	for blk := uint64(0); blk < 10; blk++ {
		b.Write(blk, fill(e.BlockSize(), byte(blk)), blk)
	}
	b.Submit().Wait()
	var got []CQE
	for len(got) < 10 {
		cqes := e.Reap(4)
		if cqes == nil && len(got) < 10 {
			continue
		}
		if len(cqes) > 4 {
			t.Fatalf("Reap(4) returned %d", len(cqes))
		}
		got = append(got, cqes...)
	}
	if len(got) != 10 {
		t.Fatalf("reaped %d CQEs, want 10", len(got))
	}
	seen := make(map[uint64]bool)
	for _, cqe := range got {
		seen[cqe.User] = true
	}
	if len(seen) != 10 {
		t.Fatalf("reaped %d distinct completions, want 10", len(seen))
	}
	if e.Stats().Reaped != 10 {
		t.Fatalf("Reaped = %d, want 10", e.Stats().Reaped)
	}
	if e.Reap(4) != nil {
		t.Fatal("empty ring reaped non-nil")
	}
}

func TestCQOverflowCounted(t *testing.T) {
	e, _ := testEngine(t, 256, Config{CQSlots: 8})
	b := e.NewBatch()
	for blk := uint64(0); blk < 100; blk++ {
		b.Write(blk, fill(e.BlockSize(), 1), blk)
	}
	b.Submit().Wait()
	reaped := len(e.Reap(1000))
	st := e.Stats()
	if uint64(reaped)+st.CQOverflows != 100 {
		t.Fatalf("reaped %d + overflows %d != 100", reaped, st.CQOverflows)
	}
	if st.CQOverflows == 0 {
		t.Fatal("an 8-slot ring absorbed 100 completions without overflow")
	}
}

func TestCallbackMode(t *testing.T) {
	var mu sync.Mutex
	var calls []CQE
	cfg := Config{OnComplete: func(cqe CQE) {
		mu.Lock()
		calls = append(calls, cqe)
		mu.Unlock()
	}}
	e, _ := testEngine(t, 32, cfg)
	b := e.NewBatch()
	for blk := uint64(0); blk < 8; blk++ {
		b.Write(blk, fill(e.BlockSize(), 1), blk)
	}
	b.Barrier(100)
	b.Submit().Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 9 {
		t.Fatalf("callback fired %d times, want 9", len(calls))
	}
}

func TestErrorReporting(t *testing.T) {
	e, dev := testEngine(t, 32, Config{})
	dev.MarkBad(4)
	b := e.NewBatch()
	b.Write(3, fill(e.BlockSize(), 1), 1)
	b.Write(4, fill(e.BlockSize(), 1), 2)
	b.Write(5, fill(e.BlockSize(), 1), 3)
	t1 := b.Submit()
	if err := t1.Err(); err != kbase.EIO {
		t.Fatalf("Err = %v, want EIO", err)
	}
	cqes := t1.Wait()
	if cqes[0].Err != kbase.EOK || cqes[1].Err != kbase.EIO || cqes[2].Err != kbase.EOK {
		t.Fatalf("per-CQE errors wrong: %v %v %v", cqes[0].Err, cqes[1].Err, cqes[2].Err)
	}
	// Enqueue-time validation.
	if err := b.Write(99, fill(e.BlockSize(), 1), 0); err != kbase.EINVAL {
		t.Fatalf("out-of-range Write: %v", err)
	}
	if err := b.Read(1, make([]byte, 3), 0); err != kbase.EINVAL {
		t.Fatalf("short Read: %v", err)
	}
}

func TestIncrementalSubmitSharedTicket(t *testing.T) {
	e, _ := testEngine(t, 64, Config{})
	b := e.NewBatch()
	b.Write(1, fill(e.BlockSize(), 1), 1)
	t1 := b.Submit()
	b.Write(2, fill(e.BlockSize(), 2), 2)
	t2 := b.Submit()
	if t1 != t2 {
		t.Fatal("Submit returned distinct tickets for one batch")
	}
	cqes := t2.Wait()
	if len(cqes) != 2 {
		t.Fatalf("ticket joined %d CQEs, want 2", len(cqes))
	}
	if cqes[0].User != 1 || cqes[1].User != 2 {
		t.Fatal("CQEs out of submit order")
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	dev := blockdev.New(blockdev.Config{Blocks: 64, BlockSize: 64, Rng: kbase.NewRng(7)})
	e := New(dev, Config{})
	b := e.NewBatch()
	for blk := uint64(0); blk < 32; blk++ {
		b.Write(blk, fill(e.BlockSize(), byte(blk)), blk)
	}
	tk := b.Submit()
	e.Close()
	// Close drained the in-flight batch.
	if err := tk.Err(); err != kbase.EOK {
		t.Fatalf("pre-Close batch: %v", err)
	}
	// New submissions fail fast.
	b2 := e.NewBatch()
	b2.Write(1, fill(e.BlockSize(), 1), 0)
	if err := b2.Submit().Err(); err != kbase.ENODEV {
		t.Fatalf("post-Close submit: %v, want ENODEV", err)
	}
	e.Close() // idempotent
}

// TestConcurrentBatches hammers the engine from many goroutines, each
// with its own batch and disjoint block range — the -race target for
// the dispatcher/worker/CQ machinery.
func TestConcurrentBatches(t *testing.T) {
	ck := own.NewChecker(own.PolicyRecord)
	e, _ := testEngine(t, 1024, Config{Workers: 8, CQSlots: 4096, Checker: ck})
	const gor = 8
	const perG = 16
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 100)
			for round := 0; round < perG; round++ {
				b := e.NewBatch()
				for blk := base; blk < base+10; blk++ {
					if round%2 == 0 {
						page := own.New(ck, "stress:page", fill(e.BlockSize(), byte(round)))
						if err := b.WriteOwned(blk, page, blk); err != kbase.EOK {
							t.Errorf("WriteOwned: %v", err)
							return
						}
					} else {
						if err := b.Write(blk, fill(e.BlockSize(), byte(round)), blk); err != kbase.EOK {
							t.Errorf("Write: %v", err)
							return
						}
					}
				}
				b.Barrier(0)
				cqes := b.Submit().Wait()
				for _, cqe := range cqes {
					if cqe.Err != kbase.EOK {
						t.Errorf("CQE: %v", cqe.Err)
					}
					if cqe.Page.Valid() {
						cqe.Page.Free()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for e.Reap(100) != nil {
	}
	if n := ck.Count(); n != 0 {
		t.Fatalf("checker recorded %d violations: %v", n, ck.Violations()[:min(5, n)])
	}
	if leaks := ck.CheckLeaks(); len(leaks) != 0 {
		t.Fatalf("%d pages leaked", len(leaks))
	}
	st := e.Stats()
	if st.Completed < st.Submitted {
		t.Fatalf("completed %d < submitted %d", st.Completed, st.Submitted)
	}
}

// TestPerBlockOrderAcrossBatches verifies writes to one block from
// successive batches apply in submit order (shard-affine workers).
func TestPerBlockOrderAcrossBatches(t *testing.T) {
	e, dev := testEngine(t, 16, Config{Workers: 4})
	var last *Ticket
	for i := 0; i < 50; i++ {
		b := e.NewBatch()
		b.Write(3, fill(e.BlockSize(), byte(i)), uint64(i))
		last = b.Submit()
	}
	last.Wait()
	// Drain everything (earlier tickets may still be in flight only if
	// ordering broke; the wait above is the ordering assertion's
	// premise: batch 49 ran last on block 3's worker).
	b := e.NewBatch()
	b.Barrier(0)
	b.Submit().Wait()
	buf := make([]byte, e.BlockSize())
	dev.Read(3, buf)
	if buf[0] != 49 {
		t.Fatalf("block 3 holds write %d, want 49 (per-block order broken)", buf[0])
	}
}

func TestBackendWithoutFastPaths(t *testing.T) {
	// A Backend that is only spec.DiskLike-shaped: no WriteOwned, no
	// Plug. The engine must fall back to plain Write/Read.
	dev := blockdev.New(blockdev.Config{Blocks: 32, BlockSize: 64, Rng: kbase.NewRng(7)})
	e := New(plainBackend{dev}, Config{})
	defer e.Close()
	b := e.NewBatch()
	want := fill(e.BlockSize(), 0x7E)
	b.Write(2, want, 1)
	b.Barrier(2)
	if err := b.Submit().Err(); err != kbase.EOK {
		t.Fatalf("batch: %v", err)
	}
	got := make([]byte, e.BlockSize())
	dev.Read(2, got)
	if !bytes.Equal(got, want) {
		t.Fatal("plain-backend write lost")
	}
}

type plainBackend struct{ d *blockdev.Device }

func (p plainBackend) BlockSize() int                          { return p.d.BlockSize() }
func (p plainBackend) Blocks() uint64                          { return p.d.Blocks() }
func (p plainBackend) Read(b uint64, buf []byte) kbase.Errno   { return p.d.Read(b, buf) }
func (p plainBackend) Write(b uint64, data []byte) kbase.Errno { return p.d.Write(b, data) }
func (p plainBackend) Flush() kbase.Errno                      { return p.d.Flush() }
