package kio

import (
	"safelinux/internal/linuxlike/kbase"
)

// Crash containment for the async I/O engine: Submit — the boundary
// every caller crosses to reach the engine — routes through an
// installable containment hook. A fault contained there (or a
// quarantined engine compartment) must not strand submitters blocked
// in Ticket.Wait, so the rejected SQEs are completed immediately with
// the boundary's typed errno through the normal CQE path: Ticket
// slots, polling ring, and callback all observe the failure exactly
// like a device error. Satisfied by *compartment.Compartment via its
// Run method.
type Boundary interface {
	Run(op string, fn func() kbase.Errno) kbase.Errno
}

type boundaryBox struct{ b Boundary }

// SetBoundary installs (or, with nil, removes) the containment
// boundary around batch submission.
func (e *Engine) SetBoundary(b Boundary) {
	if b == nil {
		e.boundary.Store(nil)
		return
	}
	e.boundary.Store(&boundaryBox{b: b})
}
