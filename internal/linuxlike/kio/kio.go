// Package kio is an io_uring-style asynchronous block I/O engine over
// the simulated device stack: callers enqueue read/write/flush
// submission-queue entries (SQEs) on a Batch, Submit hands them to a
// dispatcher that fans work out to a configurable worker pool
// (per-shard ordering preserved, write runs submitted through the
// device plug so each shard lock is taken once per group), and every
// completion is published as a CQE — into a lock-free completion ring
// reaped by polling (Reap), through an optional callback
// (Config.OnComplete), and into the submitter's Ticket for
// Wait/Err-style joins.
//
// The engine exists to turn the paper's §4.3 performance claim into a
// measured number: ownership-sharing interfaces are semantically
// equivalent to message passing but avoid the copies. The legacy
// submit path (Batch.Write) defensively copies the payload exactly
// once, like every synchronous blockdev.Write does; the ownership
// path (Batch.WriteOwned) instead *moves* an own.Owned page into the
// engine — the caller's handles go stale at the move, the engine
// fulfils the model-1 free obligation at completion and hands back a
// fresh page in the CQE — and the payload reaches the device's
// durable image with zero copies. Stats().BytesCopied and
// CopiesAvoided count both paths, so the claim is counter-verified
// rather than asserted.
//
// Barrier SQEs (Batch.Barrier) are the io_uring IO_DRAIN analogue:
// the dispatcher stalls the barrier until every previously dispatched
// SQE has completed, executes the device flush itself, and only then
// dispatches what follows. The journal's overlapped commit hangs its
// commit-record ordering off exactly this.
package kio

import (
	"sync"
	"sync/atomic"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/ktrace"
	"safelinux/internal/safety/own"
)

// Tracepoints (args documented in DESIGN.md's catalog).
var (
	tpSubmit   = ktrace.New("kio:submit")   // a0=block, a1=op
	tpComplete = ktrace.New("kio:complete") // a0=block, a1=errno
	tpReap     = ktrace.New("kio:reap")     // a0=CQEs reaped
	tpBarrier  = ktrace.New("kio:barrier")  // a0=SQEs drained ahead of the barrier
)

// OpBatch is the latency-plane op for one submit→wait batch (exported
// so the journal's overlapped commit and the buffer cache's async
// sync can span their batches as children of the caller's trace).
var OpBatch = ktrace.NewOp("kio:batch")

// Op is the SQE operation code.
type Op uint8

// SQE operation codes.
const (
	OpRead  Op = iota // read one block into the caller's buffer
	OpWrite           // write one block (copying or ownership-move)
	OpFlush           // barrier: drain, then device flush
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	}
	return "?"
}

// Backend is the device the engine drives — the same shape as
// spec.DiskLike, so both the raw blockdev and the verified-stack
// AxiomaticDisk plug in. When the concrete backend additionally
// implements WriteOwned (zero-copy submission) or Plug (batched
// shard-grouped submission), the engine detects and uses those fast
// paths dynamically.
type Backend interface {
	BlockSize() int
	Blocks() uint64
	Read(block uint64, buf []byte) kbase.Errno
	Write(block uint64, data []byte) kbase.Errno
	Flush() kbase.Errno
}

// ownedWriter is the optional zero-copy submission fast path
// (blockdev.Device implements it).
type ownedWriter interface {
	WriteOwned(block uint64, data []byte) kbase.Errno
}

// plugger is the optional batched-submission fast path
// (blockdev.Device implements it).
type plugger interface {
	Plug() *blockdev.Plug
}

// Config tunes an Engine.
type Config struct {
	// Workers is the completion worker pool size (default 4). Blocks
	// hash to workers by device shard, so per-block ordering is
	// preserved regardless of pool size.
	Workers int
	// CQSlots is the completion-ring capacity, rounded up to a power
	// of two (default 1024). When completions outrun reaping the
	// oldest unreaped CQEs are overwritten and counted as overflows —
	// Ticket joins and callbacks never lose completions, only the
	// polling ring does.
	CQSlots int
	// OnComplete, when set, is invoked on the completing worker for
	// every CQE (callback mode). CQEs are still published to the
	// polling ring.
	OnComplete func(CQE)
	// Checker, when set, supplies the ownership checker used to mint
	// the fresh pages WriteOwned completions return. When nil, owned
	// completions return no page (CQE.Page is the zero handle).
	Checker *own.Checker
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.CQSlots <= 0 {
		c.CQSlots = 1024
	}
}

// Stats counts engine activity. BytesCopied/CopiesPerformed cover the
// legacy copying submit path; CopiesAvoided counts ownership-move
// submits that would each have copied one block on that path — the
// §4.3 zero-copy claim is the pair (CopiesAvoided > 0, BytesCopied
// unchanged).
type Stats struct {
	Submitted       uint64 // SQEs accepted
	Completed       uint64 // CQEs published
	Reaped          uint64 // CQEs consumed via Reap
	Merged          uint64 // duplicate-block writes merged at submit
	Batches         uint64 // Submit calls that dispatched at least one SQE
	Barriers        uint64 // flush SQEs executed
	BytesCopied     uint64 // payload bytes copied by Batch.Write
	CopiesPerformed uint64 // Batch.Write submissions (one copy each)
	CopiesAvoided   uint64 // Batch.WriteOwned submissions (zero copies)
	CQOverflows     uint64 // CQEs overwritten before being reaped
}

// CQE is one completion-queue entry.
type CQE struct {
	Op    Op
	Block uint64
	User  uint64 // the submitter's tag, returned verbatim
	Err   kbase.Errno
	// Page is a fresh owned page handed back on ownership-move write
	// completions (when the engine has a Checker): the submitter gave
	// up its page at WriteOwned, the engine freed the moved cell at
	// completion, and this replaces it — the recycling half of the
	// message-passing protocol. The zero handle otherwise.
	Page own.Owned[[]byte]
	// Merged marks a write completed by being superseded: a later
	// write to the same block in the same batch absorbed it before it
	// reached the device (write-cache semantics — only a barrier
	// promises durability).
	Merged bool
}

// sqe is one submission-queue entry, engine-internal.
type sqe struct {
	op    Op
	block uint64
	user  uint64
	buf   []byte // read destination or write payload (engine-owned for writes)
	owned bool   // write payload arrived by ownership move
	page  own.Owned[[]byte]
	t     *Ticket
	idx   int   // slot in t.results
	tNs   int64 // submit timestamp for the sqe latency histogram (0 = unsampled)
}

// Engine is the async I/O engine. All methods are safe for concurrent
// use; individual Batches are single-goroutine state.
type Engine struct {
	cfg     Config
	backend Backend
	ow      ownedWriter // nil when backend lacks the zero-copy path
	pl      plugger     // nil when backend lacks the plug path

	submitCh chan []*sqe
	workerCh []chan []*sqe
	inflight sync.WaitGroup // dispatched worker groups; Add/Wait on dispatcher only
	done     chan struct{}  // closed when the dispatcher has drained

	cq *cq

	// smu serializes Submit sends against Close closing submitCh.
	smu    sync.RWMutex
	closed bool

	// boundary, when installed, wraps batch submission in a
	// crash-containment compartment (see boundary.go).
	boundary atomic.Pointer[boundaryBox]

	submitted atomic.Uint64
	completed atomic.Uint64
	reaped    atomic.Uint64
	merged    atomic.Uint64
	batches   atomic.Uint64
	barriers  atomic.Uint64
	copied    atomic.Uint64
	copies    atomic.Uint64
	avoided   atomic.Uint64

	// sqeHist is the submit-to-complete latency distribution of
	// sampled SQEs (see ktrace.TimingSample), exported as the
	// kio.sqe_ns histogram metric.
	sqeHist *ktrace.Histogram
}

// New starts an engine over backend. Close must be called to stop the
// dispatcher and worker goroutines.
func New(backend Backend, cfg Config) *Engine {
	cfg.fill()
	e := &Engine{
		cfg:      cfg,
		backend:  backend,
		submitCh: make(chan []*sqe, 64),
		workerCh: make([]chan []*sqe, cfg.Workers),
		done:     make(chan struct{}),
		cq:       newCQ(cfg.CQSlots),
		sqeHist:  ktrace.NewHistogram(),
	}
	if ow, ok := backend.(ownedWriter); ok {
		e.ow = ow
	}
	if pl, ok := backend.(plugger); ok {
		e.pl = pl
	}
	for i := range e.workerCh {
		e.workerCh[i] = make(chan []*sqe, 8)
		go e.worker(e.workerCh[i])
	}
	go e.dispatch()
	return e
}

// BlockSize returns the backend's block size.
func (e *Engine) BlockSize() int { return e.backend.BlockSize() }

// Close drains every queued submission, stops the dispatcher and
// workers, and waits for them. Submissions after Close complete
// immediately with ENODEV.
func (e *Engine) Close() {
	e.smu.Lock()
	already := e.closed
	e.closed = true
	if !already {
		close(e.submitCh)
	}
	e.smu.Unlock()
	<-e.done
}

// send hands a batch to the dispatcher, or fails it with ENODEV when
// the engine is closed.
func (e *Engine) send(batch []*sqe) {
	e.smu.RLock()
	if e.closed {
		e.smu.RUnlock()
		for _, s := range batch {
			e.complete(s, kbase.ENODEV)
		}
		return
	}
	e.submitCh <- batch
	e.smu.RUnlock()
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:       e.submitted.Load(),
		Completed:       e.completed.Load(),
		Reaped:          e.reaped.Load(),
		Merged:          e.merged.Load(),
		Batches:         e.batches.Load(),
		Barriers:        e.barriers.Load(),
		BytesCopied:     e.copied.Load(),
		CopiesPerformed: e.copies.Load(),
		CopiesAvoided:   e.avoided.Load(),
		CQOverflows:     e.cq.overflows.Load(),
	}
}

// CollectMetrics enumerates the engine counters for the ktrace metrics
// registry (register with m.Register("kio", e.CollectMetrics)).
func (e *Engine) CollectMetrics(emit func(name string, value uint64)) {
	s := e.Stats()
	emit("submitted", s.Submitted)
	emit("completed", s.Completed)
	emit("reaped", s.Reaped)
	emit("merged", s.Merged)
	emit("batches", s.Batches)
	emit("barriers", s.Barriers)
	emit("bytes_copied", s.BytesCopied)
	emit("copies_performed", s.CopiesPerformed)
	emit("copies_avoided", s.CopiesAvoided)
	emit("cq_overflows", s.CQOverflows)
}

// dispatch is the single dispatcher goroutine: it consumes submitted
// batches in order, fans non-barrier runs out to the workers (grouped
// by worker so per-block FIFO order is preserved), and executes
// barriers itself after draining everything in flight.
func (e *Engine) dispatch() {
	defer func() {
		for _, ch := range e.workerCh {
			close(ch)
		}
		e.inflight.Wait()
		close(e.done)
	}()
	for batch := range e.submitCh {
		i := 0
		for i < len(batch) {
			if batch[i].op == OpFlush {
				e.inflight.Wait()
				tpBarrier.Emit(0, uint64(i), 0)
				e.barriers.Add(1)
				e.complete(batch[i], e.backend.Flush())
				i++
				continue
			}
			// A run of non-barrier SQEs: group by worker. Blocks hash
			// to workers through their device shard, so two SQEs on
			// one block always reach the same worker, in order.
			groups := make([][]*sqe, e.cfg.Workers)
			j := i
			for j < len(batch) && batch[j].op != OpFlush {
				w := e.workerFor(batch[j].block)
				groups[w] = append(groups[w], batch[j])
				j++
			}
			for w, g := range groups {
				if len(g) == 0 {
					continue
				}
				e.inflight.Add(1)
				e.workerCh[w] <- g
			}
			i = j
		}
	}
}

func (e *Engine) workerFor(block uint64) int {
	return int(block%blockdev.NumShards) % e.cfg.Workers
}

// worker executes dispatched groups. Reads run one at a time; write
// runs are submitted through the device plug (one shard-lock
// acquisition per shard per run) when the backend supports it.
func (e *Engine) worker(ch chan []*sqe) {
	for g := range ch {
		e.runGroup(g)
		e.inflight.Done()
	}
}

// runGroup executes one worker group in order, accumulating
// consecutive writes into a plug and draining it before any read so a
// read of a just-written block observes the write through the device
// cache, exactly as the synchronous call sequence would.
func (e *Engine) runGroup(g []*sqe) {
	var plug *blockdev.Plug
	var plugged []*sqe
	drain := func() {
		if len(plugged) == 0 {
			return
		}
		results, _ := plug.Unplug()
		for k, s := range plugged {
			e.complete(s, results[k])
		}
		plugged = plugged[:0]
	}
	for _, s := range g {
		switch s.op {
		case OpRead:
			drain()
			e.complete(s, e.backend.Read(s.block, s.buf))
		case OpWrite:
			if e.pl != nil {
				if plug == nil {
					plug = e.pl.Plug()
				}
				if err := plug.WriteOwned(s.block, s.buf); err != kbase.EOK {
					e.complete(s, err)
					continue
				}
				plugged = append(plugged, s)
				continue
			}
			if e.ow != nil {
				e.complete(s, e.ow.WriteOwned(s.block, s.buf))
			} else {
				// Copying backend: it copies internally; the engine
				// still submitted without one.
				e.complete(s, e.backend.Write(s.block, s.buf))
			}
		}
	}
	drain()
}

// SQEHist returns the engine's submit-to-complete latency histogram.
func (e *Engine) SQEHist() *ktrace.Histogram { return e.sqeHist }

// noteLatency records a sampled SQE's submit-to-complete time.
func (e *Engine) noteLatency(s *sqe) {
	if s.tNs != 0 {
		e.sqeHist.Record(uint64(ktrace.NowNs() - s.tNs))
	}
}

// complete publishes one completion: Ticket slot, polling ring,
// optional callback, tracepoint.
func (e *Engine) complete(s *sqe, err kbase.Errno) {
	e.noteLatency(s)
	cqe := CQE{Op: s.op, Block: s.block, User: s.user, Err: err}
	if s.owned {
		// Model-1 obligation: the engine received ownership at submit
		// and must free it; a fresh page goes back in the CQE so the
		// submitter's pool stays whole.
		s.page.Free()
		if e.cfg.Checker != nil {
			cqe.Page = own.New(e.cfg.Checker, "kio:page", make([]byte, e.backend.BlockSize()))
		}
	}
	e.completed.Add(1)
	if tpComplete.Enabled() {
		tpComplete.Emit(0, s.block, uint64(err))
	}
	s.t.deliver(s.idx, cqe)
	e.cq.push(cqe)
	if e.cfg.OnComplete != nil {
		e.cfg.OnComplete(cqe)
	}
}

// completeMerged publishes a merged-write completion (no device I/O).
func (e *Engine) completeMerged(s *sqe) {
	e.noteLatency(s)
	cqe := CQE{Op: s.op, Block: s.block, User: s.user, Err: kbase.EOK, Merged: true}
	if s.owned {
		s.page.Free()
		if e.cfg.Checker != nil {
			cqe.Page = own.New(e.cfg.Checker, "kio:page", make([]byte, e.backend.BlockSize()))
		}
	}
	e.merged.Add(1)
	e.completed.Add(1)
	if tpComplete.Enabled() {
		tpComplete.Emit(0, s.block, 0)
	}
	s.t.deliver(s.idx, cqe)
	e.cq.push(cqe)
	if e.cfg.OnComplete != nil {
		e.cfg.OnComplete(cqe)
	}
}

// Reap consumes up to maxN completions from the polling ring in
// completion order. It returns nil when the ring is empty. Reap is
// the polling mode of the CQ; Ticket.Wait and OnComplete observe the
// same completions independently, so a deployment picks whichever
// mode fits and the others stay consistent.
func (e *Engine) Reap(maxN int) []CQE {
	out := e.cq.reap(maxN)
	if n := len(out); n > 0 {
		e.reaped.Add(uint64(n))
		if tpReap.Enabled() {
			tpReap.Emit(0, uint64(n), 0)
		}
	}
	return out
}
