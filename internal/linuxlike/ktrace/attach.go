package ktrace

import (
	"sync/atomic"

	"safelinux/internal/linuxlike/ebpflike"
	"safelinux/internal/linuxlike/kbase"
)

// ebpflike programs as tracepoint probes.
//
// This is the paper's §5 contrast made into a working feature: the
// verified register machine cannot host a file system, but it is
// exactly the right shape for dynamic observability — a filter or
// aggregator attached to a tracepoint, guaranteed to terminate and to
// touch nothing outside the event record handed to it. The event's
// fixed binary context (Event.CtxBytes) is the verified window.

// Probe is one ebpflike program attached to a tracepoint. The
// program's return value is the verdict: nonzero keeps the event,
// zero filters it out of the ring (the tracepoint's Filtered counter
// ticks instead of Hits).
type Probe struct {
	tp   *Tracepoint
	prog *ebpflike.Program

	matched  atomic.Uint64 // verdict nonzero
	dropped  atomic.Uint64 // verdict zero
	runErrs  atomic.Uint64 // program runtime faults (event kept, fail-open)
	detached atomic.Bool
}

// Attach installs a verified program on a tracepoint and enables the
// tracepoint (reference counted; Detach drops the reference). The
// program must have been verified against a context no larger than
// EventCtxSize, or EINVAL is returned — the verifier's bounds are
// only meaningful for the window the event actually provides.
func Attach(tp *Tracepoint, prog *ebpflike.Program) (*Probe, kbase.Errno) {
	if tp == nil || prog == nil {
		return nil, kbase.EINVAL
	}
	if prog.CtxSize() <= 0 || prog.CtxSize() > EventCtxSize {
		return nil, kbase.EINVAL
	}
	p := &Probe{tp: tp, prog: prog}
	regMu.Lock()
	old := tp.probes.Load()
	var next []*Probe
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, p)
	tp.probes.Store(&next)
	regMu.Unlock()
	tp.Enable()
	return p, kbase.EOK
}

// Detach removes the probe from its tracepoint and drops the enable
// reference Attach took. Idempotent.
func (p *Probe) Detach() {
	if p.detached.Swap(true) {
		return
	}
	regMu.Lock()
	if old := p.tp.probes.Load(); old != nil {
		next := make([]*Probe, 0, len(*old))
		for _, q := range *old {
			if q != p {
				next = append(next, q)
			}
		}
		if len(next) == 0 {
			p.tp.probes.Store(nil)
		} else {
			p.tp.probes.Store(&next)
		}
	}
	regMu.Unlock()
	p.tp.Disable()
}

// ProbeGuard is the crash-containment hook for probe evaluation:
// when installed, every program run crosses it, so a panic inside the
// ebpflike machine quarantines the observability compartment (fail
// open: the event is kept) instead of crashing the emitting kernel
// path. Satisfied by compartment.Compartment.GuardProbe. The guard's
// compartment must be quiet — probe evaluation happens inside
// tracepoint emission, and a boundary that emitted tracepoints from
// here would recurse.
type ProbeGuard func(run func() bool) bool

var probeGuard atomic.Pointer[ProbeGuard]

// SetProbeGuard installs (or, with nil, removes) the containment
// guard around ebpflike probe evaluation.
func SetProbeGuard(g ProbeGuard) {
	if g == nil {
		probeGuard.Store(nil)
		return
	}
	probeGuard.Store(&g)
}

// keep runs the program over the event and returns the verdict. A
// runtime fault (register-relative out-of-bounds read, division by a
// zero register) keeps the event and counts an error: a broken
// observer must not hide kernel activity. The same fail-open rule
// extends to the containment guard: a contained panic or a
// quarantined observability compartment keeps the event.
func (p *Probe) keep(ev *Event) bool {
	if g := probeGuard.Load(); g != nil {
		return (*g)(func() bool { return p.run(ev) })
	}
	return p.run(ev)
}

func (p *Probe) run(ev *Event) bool {
	ctx := ev.CtxBytes()
	ret, err := p.prog.Run(ctx[:])
	if err != kbase.EOK {
		p.runErrs.Add(1)
		return true
	}
	if ret == 0 {
		p.dropped.Add(1)
		return false
	}
	p.matched.Add(1)
	return true
}

// Tracepoint returns the tracepoint the probe is attached to.
func (p *Probe) Tracepoint() *Tracepoint { return p.tp }

// Matched returns how many events the program kept.
func (p *Probe) Matched() uint64 { return p.matched.Load() }

// Dropped returns how many events the program filtered out.
func (p *Probe) Dropped() uint64 { return p.dropped.Load() }

// RunErrs returns how many runs faulted at runtime.
func (p *Probe) RunErrs() uint64 { return p.runErrs.Load() }
