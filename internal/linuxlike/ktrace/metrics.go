package ktrace

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The unified metrics plane.
//
// Before ktrace every subsystem grew its own Stats() accessor with
// its own struct, and nothing could enumerate "all the counters of
// this kernel". A Metrics registry inverts that: subsystems register
// a collector that emits (name, value) pairs, and the registry renders
// them all as a /proc-style text table or JSON. The old Stats()
// accessors survive as thin shims over the same counters, so existing
// callers keep working while the registry becomes the one surface
// tooling reads.
//
// v2 makes the registry typed. A Metric is either a counter or a
// histogram (percentile export), and aggregation semantics are
// explicit instead of accidental:
//
//   - Two *collectors* under one subsystem emitting the same name is
//     intentional aggregation (two mounted file systems, two TCP
//     endpoints): values sum, and Metric.Sources says how many
//     instances contributed.
//   - One collector emitting the same name twice in a single Gather is
//     a bug in that collector — historically it was silently summed
//     into a lie. The sum still happens (dropping data would be
//     worse), but GatherChecked reports each case as a typed
//     DupEmission so tests and the CLI can fail on it.

// CollectorFunc enumerates a subsystem's counters by calling emit for
// each. Collectors must be safe to call at any time from any
// goroutine; they read live atomics or take the subsystem's own locks.
type CollectorFunc func(emit func(name string, value uint64))

// HistSourceFunc enumerates a subsystem's histograms by calling emit
// with a point-in-time view of each. Like CollectorFunc it must be
// callable any time from any goroutine; the name set may be dynamic
// (e.g. one histogram per live lock class).
type HistSourceFunc func(emit func(name string, view HistView))

// Kind discriminates metric types.
type Kind uint8

const (
	// KindCounter is a monotonic (or at least summable) uint64.
	KindCounter Kind = iota
	// KindHistogram is a latency distribution exported as percentiles.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Metric is one gathered sample.
type Metric struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Kind      Kind   `json:"kind"`
	// Value is the counter value; for histograms it mirrors
	// Hist.Count so kind-blind consumers still see activity.
	Value uint64 `json:"value"`
	// Sources is how many registered collectors contributed to this
	// sample — >1 marks an intentional cross-instance sum.
	Sources int       `json:"sources,omitempty"`
	Hist    *HistView `json:"hist,omitempty"`
}

// DupEmission records one collector emitting the same metric name
// more than once within a single gather — a subsystem bug the old
// registry silently summed over.
type DupEmission struct {
	Subsystem string
	Name      string
	Count     int // emissions of this name by the one collector
}

func (d DupEmission) Error() string {
	return fmt.Sprintf("ktrace: collector for %q emitted %q %d times in one gather",
		d.Subsystem, d.Name, d.Count)
}

// ErrDupRegistration is returned when a histogram is registered under
// a (subsystem, name) that already has one.
var ErrDupRegistration = errors.New("ktrace: duplicate histogram registration")

// Metrics is a registry of subsystem collectors and histograms.
type Metrics struct {
	mu          sync.Mutex
	collectors  map[string][]CollectorFunc
	hists       map[string]map[string]*Histogram
	histSources map[string][]HistSourceFunc
	includeOps  bool
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		collectors:  make(map[string][]CollectorFunc),
		hists:       make(map[string]map[string]*Histogram),
		histSources: make(map[string][]HistSourceFunc),
	}
}

// Register adds a collector under a subsystem name. Multiple
// collectors may share a subsystem (e.g. two mounted file systems);
// their samples are summed, with Metric.Sources counting the
// contributing instances.
func (m *Metrics) Register(subsystem string, c CollectorFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.collectors[subsystem] = append(m.collectors[subsystem], c)
}

// RegisterHistogram adds a histogram metric under (subsystem, name).
// Unlike counters, two histograms cannot share a name — percentiles
// of a merged stream are not the merge of percentiles — so a second
// registration returns ErrDupRegistration.
func (m *Metrics) RegisterHistogram(subsystem, name string, h *Histogram) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sub := m.hists[subsystem]
	if sub == nil {
		sub = make(map[string]*Histogram)
		m.hists[subsystem] = sub
	}
	if _, ok := sub[name]; ok {
		return fmt.Errorf("%w: %s.%s", ErrDupRegistration, subsystem, name)
	}
	sub[name] = h
	return nil
}

// RegisterHistSource adds a dynamic histogram enumerator under a
// subsystem (for name sets not known at registration, e.g. lock
// classes).
func (m *Metrics) RegisterHistSource(subsystem string, fn HistSourceFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.histSources[subsystem] = append(m.histSources[subsystem], fn)
}

// RegisterOps includes every declared boundary Op's latency histogram
// in this registry, as <op-subsystem>.<op>_ns — the enumeration is
// live, so ops declared after this call still appear.
func (m *Metrics) RegisterOps() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.includeOps = true
}

// Gather runs every collector and returns the samples sorted by
// (subsystem, name). See GatherChecked for duplicate-emission
// reporting.
func (m *Metrics) Gather() []Metric {
	out, _ := m.GatherChecked()
	return out
}

// GatherChecked is Gather plus the list of within-collector duplicate
// emissions detected during this gather (empty when every collector
// is well behaved).
func (m *Metrics) GatherChecked() ([]Metric, []DupEmission) {
	m.mu.Lock()
	subs := make(map[string][]CollectorFunc, len(m.collectors))
	for k, v := range m.collectors {
		subs[k] = append([]CollectorFunc(nil), v...)
	}
	hists := make(map[string]map[string]*Histogram, len(m.hists))
	for k, v := range m.hists {
		inner := make(map[string]*Histogram, len(v))
		for n, h := range v {
			inner[n] = h
		}
		hists[k] = inner
	}
	hsrcs := make(map[string][]HistSourceFunc, len(m.histSources))
	for k, v := range m.histSources {
		hsrcs[k] = append([]HistSourceFunc(nil), v...)
	}
	includeOps := m.includeOps
	m.mu.Unlock()

	var out []Metric
	var dups []DupEmission

	type cell struct {
		val     uint64
		sources int
	}
	for sub, cs := range subs {
		vals := make(map[string]*cell)
		for _, c := range cs {
			perCall := make(map[string]int)
			c(func(name string, value uint64) {
				perCall[name]++
				cl := vals[name]
				if cl == nil {
					cl = &cell{}
					vals[name] = cl
				}
				cl.val += value
			})
			for name, n := range perCall {
				vals[name].sources++
				if n > 1 {
					dups = append(dups, DupEmission{Subsystem: sub, Name: name, Count: n})
				}
			}
		}
		for name, cl := range vals {
			out = append(out, Metric{
				Subsystem: sub, Name: name, Kind: KindCounter,
				Value: cl.val, Sources: cl.sources,
			})
		}
	}

	emitHist := func(sub, name string, view HistView) {
		v := view
		out = append(out, Metric{
			Subsystem: sub, Name: name, Kind: KindHistogram,
			Value: v.Count, Sources: 1, Hist: &v,
		})
	}
	for sub, byName := range hists {
		for name, h := range byName {
			emitHist(sub, name, h.View())
		}
	}
	for sub, fns := range hsrcs {
		for _, fn := range fns {
			fn(func(name string, view HistView) { emitHist(sub, name, view) })
		}
	}
	if includeOps {
		for _, op := range Ops() {
			emitHist(op.Subsystem(), op.Short()+"_ns", op.Hist().View())
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Subsystem != out[j].Subsystem {
			return out[i].Subsystem < out[j].Subsystem
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	sort.Slice(dups, func(i, j int) bool {
		if dups[i].Subsystem != dups[j].Subsystem {
			return dups[i].Subsystem < dups[j].Subsystem
		}
		return dups[i].Name < dups[j].Name
	})
	return out, dups
}

// RenderText renders the /proc-style table: one "subsystem.name value"
// line per counter, one "subsystem.name count=… p50=… …" line per
// histogram, sorted.
func (m *Metrics) RenderText() string {
	var b strings.Builder
	for _, s := range m.Gather() {
		if s.Kind == KindHistogram && s.Hist != nil {
			h := s.Hist
			fmt.Fprintf(&b, "%s.%s count=%d p50=%d p90=%d p99=%d p999=%d max=%d\n",
				s.Subsystem, s.Name, h.Count, h.P50, h.P90, h.P99, h.P999, h.Max)
			continue
		}
		fmt.Fprintf(&b, "%s.%s %d\n", s.Subsystem, s.Name, s.Value)
	}
	return b.String()
}

// RenderJSON renders the samples as a nested JSON object
// {subsystem: {name: value}}; histogram values are objects with
// count/sum/max and the exported percentiles.
func (m *Metrics) RenderJSON() ([]byte, error) {
	obj := make(map[string]map[string]any)
	for _, s := range m.Gather() {
		sub := obj[s.Subsystem]
		if sub == nil {
			sub = make(map[string]any)
			obj[s.Subsystem] = sub
		}
		if s.Kind == KindHistogram && s.Hist != nil {
			sub[s.Name] = s.Hist
		} else {
			sub[s.Name] = s.Value
		}
	}
	return json.MarshalIndent(obj, "", "  ")
}

// Lookup returns the gathered value of one metric and whether it was
// present (for histograms, the sample count).
func (m *Metrics) Lookup(subsystem, name string) (uint64, bool) {
	for _, s := range m.Gather() {
		if s.Subsystem == subsystem && s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// LookupHist returns the gathered percentile view of one histogram
// metric and whether it was present.
func (m *Metrics) LookupHist(subsystem, name string) (HistView, bool) {
	for _, s := range m.Gather() {
		if s.Subsystem == subsystem && s.Name == name && s.Kind == KindHistogram && s.Hist != nil {
			return *s.Hist, true
		}
	}
	return HistView{}, false
}

// Quantile returns quantile q of one histogram metric (snapped to the
// nearest exported percentile) and whether the metric was present.
func (m *Metrics) Quantile(subsystem, name string, q float64) (uint64, bool) {
	v, ok := m.LookupHist(subsystem, name)
	if !ok {
		return 0, false
	}
	return v.QuantileOf(q), true
}

// RegisterBuiltin registers ktrace's own planes on a registry: per-
// tracepoint hit/filter counters and span-plane counters under
// "ktrace", the lockstat table (counters + wait/hold histograms)
// under "lockstat", and every declared boundary Op's latency
// histogram under its own subsystem.
func RegisterBuiltin(m *Metrics) {
	m.Register("ktrace", CollectTracepoints)
	m.Register("ktrace", collectSpanPlane)
	m.RegisterOps()
	RegisterLockStat(m)
}

// CollectTracepoints emits hits and filtered counts for every
// declared tracepoint that has seen at least one event.
func CollectTracepoints(emit func(name string, value uint64)) {
	for _, tp := range List() {
		h, f := tp.Hits(), tp.Filtered()
		if h == 0 && f == 0 {
			continue
		}
		emit(tp.Name()+".hits", h)
		if f > 0 {
			emit(tp.Name()+".filtered", f)
		}
	}
}

// collectSpanPlane emits the span plane's own health counters.
func collectSpanPlane(emit func(name string, value uint64)) {
	if s := spansStarted.Load(); s > 0 {
		emit("spans.started", s)
	}
	if s := spansSlow.Load(); s > 0 {
		emit("spans.slow", s)
	}
}
