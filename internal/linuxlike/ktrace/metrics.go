package ktrace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The unified metrics plane.
//
// Before ktrace every subsystem grew its own Stats() accessor with
// its own struct, and nothing could enumerate "all the counters of
// this kernel". A Metrics registry inverts that: subsystems register
// a collector that emits (name, value) pairs, and the registry renders
// them all as a /proc-style text table or JSON. The old Stats()
// accessors survive as thin shims over the same counters, so existing
// callers keep working while the registry becomes the one surface
// tooling reads.

// CollectorFunc enumerates a subsystem's counters by calling emit for
// each. Collectors must be safe to call at any time from any
// goroutine; they read live atomics or take the subsystem's own locks.
type CollectorFunc func(emit func(name string, value uint64))

// Metric is one gathered sample.
type Metric struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Value     uint64 `json:"value"`
}

// Metrics is a registry of subsystem collectors.
type Metrics struct {
	mu         sync.Mutex
	collectors map[string][]CollectorFunc
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{collectors: make(map[string][]CollectorFunc)}
}

// Register adds a collector under a subsystem name. Multiple
// collectors may share a subsystem (e.g. two mounted file systems);
// their samples are merged.
func (m *Metrics) Register(subsystem string, c CollectorFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.collectors[subsystem] = append(m.collectors[subsystem], c)
}

// Gather runs every collector and returns the samples sorted by
// (subsystem, name). Samples with the same subsystem and name (two
// instances of one subsystem) are summed.
func (m *Metrics) Gather() []Metric {
	m.mu.Lock()
	subs := make(map[string][]CollectorFunc, len(m.collectors))
	for k, v := range m.collectors {
		subs[k] = append([]CollectorFunc(nil), v...)
	}
	m.mu.Unlock()

	acc := make(map[string]map[string]uint64)
	for sub, cs := range subs {
		vals := make(map[string]uint64)
		for _, c := range cs {
			c(func(name string, value uint64) { vals[name] += value })
		}
		acc[sub] = vals
	}
	var out []Metric
	for sub, vals := range acc {
		for name, v := range vals {
			out = append(out, Metric{Subsystem: sub, Name: name, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subsystem != out[j].Subsystem {
			return out[i].Subsystem < out[j].Subsystem
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RenderText renders the /proc-style table: one "subsystem.name value"
// line per sample, sorted.
func (m *Metrics) RenderText() string {
	var b strings.Builder
	for _, s := range m.Gather() {
		fmt.Fprintf(&b, "%s.%s %d\n", s.Subsystem, s.Name, s.Value)
	}
	return b.String()
}

// RenderJSON renders the samples as a nested JSON object
// {subsystem: {name: value}}.
func (m *Metrics) RenderJSON() ([]byte, error) {
	obj := make(map[string]map[string]uint64)
	for _, s := range m.Gather() {
		sub := obj[s.Subsystem]
		if sub == nil {
			sub = make(map[string]uint64)
			obj[s.Subsystem] = sub
		}
		sub[s.Name] = s.Value
	}
	return json.MarshalIndent(obj, "", "  ")
}

// Lookup returns the gathered value of one metric and whether it was
// present.
func (m *Metrics) Lookup(subsystem, name string) (uint64, bool) {
	for _, s := range m.Gather() {
		if s.Subsystem == subsystem && s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// RegisterBuiltin registers ktrace's own planes on a registry: per-
// tracepoint hit/filter counters under "ktrace", and the lockstat
// table under "lockstat" (see RegisterLockStat for the naming).
func RegisterBuiltin(m *Metrics) {
	m.Register("ktrace", CollectTracepoints)
	RegisterLockStat(m)
}

// CollectTracepoints emits hits and filtered counts for every
// declared tracepoint that has seen at least one event.
func CollectTracepoints(emit func(name string, value uint64)) {
	for _, tp := range List() {
		h, f := tp.Hits(), tp.Filtered()
		if h == 0 && f == 0 {
			continue
		}
		emit(tp.Name()+".hits", h)
		if f > 0 {
			emit(tp.Name()+".filtered", f)
		}
	}
}
