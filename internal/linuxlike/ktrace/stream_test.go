package ktrace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"safelinux/internal/linuxlike/kbase"
)

func TestConsumerStreamsInOrder(t *testing.T) {
	r := testRing(t, 64)
	tp := New("stream:order")
	tp.Enable()
	defer tp.Disable()

	c := r.NewConsumer()
	if evs := c.Poll(0); len(evs) != 0 {
		t.Fatalf("fresh consumer delivered %d events", len(evs))
	}
	const emits = 100
	for i := 0; i < emits; i++ {
		tp.Emit(0, uint64(i), 0)
	}
	evs := c.Poll(0)
	if len(evs) != emits {
		t.Fatalf("delivered %d events, want %d", len(evs), emits)
	}
	for i, e := range evs {
		if e.A0 != uint64(i) {
			t.Fatalf("event %d: a0 = %d, want in-order delivery", i, e.A0)
		}
	}
	if c.Dropped() != 0 {
		t.Fatalf("dropped %d with no wraparound", c.Dropped())
	}
	// Batched polls respect max and resume where they left off.
	for i := 0; i < 10; i++ {
		tp.Emit(0, uint64(emits+i), 0)
	}
	first := c.Poll(4)
	rest := c.Poll(0)
	if len(first) != 4 || len(rest) != 6 {
		t.Fatalf("batched polls = %d + %d, want 4 + 6", len(first), len(rest))
	}
	if rest[0].A0 != first[3].A0+1 {
		t.Fatal("cursor did not resume after a bounded poll")
	}
}

// TestConsumerWraparoundDrops: a sequential emitter laps an idle
// consumer; the drop count must be exactly emits - capacity, from
// sequence arithmetic alone.
func TestConsumerWraparoundDrops(t *testing.T) {
	r := testRing(t, 8) // capacity 128
	tp := New("stream:wrap")
	tp.Enable()
	defer tp.Disable()

	c := r.NewConsumer()
	const emits = 1000
	for i := 0; i < emits; i++ {
		tp.Emit(0, uint64(i), 0)
	}
	evs := c.Poll(0)
	capN := r.Cap()
	if len(evs) != capN {
		t.Fatalf("delivered %d, want the surviving %d", len(evs), capN)
	}
	if got, want := c.Dropped(), uint64(emits-capN); got != want {
		t.Fatalf("dropped = %d, want exactly %d", got, want)
	}
	if evs[0].A0 != uint64(emits-capN) {
		t.Fatalf("oldest survivor a0 = %d, want %d", evs[0].A0, emits-capN)
	}
	if evs[len(evs)-1].A0 != emits-1 {
		t.Fatalf("newest survivor a0 = %d, want %d", evs[len(evs)-1].A0, emits-1)
	}
	// delivered + dropped == emitted: nothing double counted.
	if uint64(len(evs))+c.Dropped() != uint64(emits) {
		t.Fatalf("accounting leak: %d delivered + %d dropped != %d emitted",
			len(evs), c.Dropped(), emits)
	}
}

// TestConsumerConcurrentSlowReader is the never-block proof, run under
// -race: emitters hammer a small ring while a deliberately slow
// consumer polls tiny batches. Emitters finish regardless of the
// consumer (they share no state with it), and afterwards
// delivered + dropped must equal emitted exactly.
func TestConsumerConcurrentSlowReader(t *testing.T) {
	r := testRing(t, 8) // capacity 128 — guarantees heavy wraparound
	tp := New("stream:slowreader")
	tp.Enable()
	defer tp.Disable()

	c := r.NewConsumer()
	const goroutines = 4
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tp.Emit(int64(g), uint64(i), 0)
			}
		}(g)
	}

	var delivered uint64
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			evs := c.Poll(16) // tiny batches: the consumer cannot keep up
			delivered += uint64(len(evs))
			select {
			case <-stop:
				if len(evs) == 0 {
					return
				}
			default:
				if len(evs) == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}
	}()
	wg.Wait() // emitters finished — a stalled consumer can never delay this
	close(stop)
	rd.Wait()

	total := uint64(goroutines * perG)
	if got := r.Emitted(); got != total {
		t.Fatalf("emitted %d, want %d", got, total)
	}
	if delivered+c.Dropped() != total {
		t.Fatalf("accounting leak: %d delivered + %d dropped != %d emitted",
			delivered, c.Dropped(), total)
	}
	if c.Dropped() == 0 {
		t.Fatal("slow consumer on a tiny ring dropped nothing — the test lost its teeth")
	}
	if c.Pending() != 0 {
		t.Fatalf("%d events still pending after the drain", c.Pending())
	}
}

// TestTwoConsumersIndependentCursors: per-consumer cursors and drop
// accounting do not interfere.
func TestTwoConsumersIndependentCursors(t *testing.T) {
	r := testRing(t, 8)
	tp := New("stream:two")
	tp.Enable()
	defer tp.Disable()

	fast := r.NewConsumer()
	lazy := r.NewConsumer()
	const emits = 1000
	for i := 0; i < emits; i++ {
		tp.Emit(0, uint64(i), 0)
		if i%64 == 0 {
			fast.Poll(0) // keeps up; never laps
		}
	}
	fast.Poll(0)
	if fast.Dropped() != 0 {
		t.Fatalf("keeping-up consumer dropped %d", fast.Dropped())
	}
	lazyGot := len(lazy.Poll(0))
	if want := uint64(emits - r.Cap()); lazy.Dropped() != want {
		t.Fatalf("lazy consumer dropped %d, want %d", lazy.Dropped(), want)
	}
	if uint64(lazyGot)+lazy.Dropped() != emits {
		t.Fatal("lazy consumer accounting leak")
	}
}

// TestSpanTreeAcrossWrap: a trace whose begin events were overwritten
// by ring wraparound still reconstructs from the surviving end events,
// flagged honestly.
func TestSpanTreeAcrossWrap(t *testing.T) {
	r := latencyPlane(t, 8) // capacity 128
	opRoot := NewOp("wraptrace:root")
	opChild := NewOp("wraptrace:child")
	task := kbase.NewTask()

	tR := opRoot.Begin(task)
	tC := opChild.Begin(task)

	// Flood the ring so both begin events are overwritten.
	noise := New("wraptrace:noise")
	noise.Enable()
	for i := 0; i < 4*r.Cap(); i++ {
		noise.Emit(0, uint64(i), 0)
	}
	noise.Disable()

	tC.End()
	tR.End()

	tree := SpanTree(r.Snapshot(), tR.TraceID())
	joined := strings.Join(tree, "\n")
	if len(tree) != 2 {
		t.Fatalf("tree has %d lines, want 2 survivors:\n%s", len(tree), joined)
	}
	for _, want := range []string{"wraptrace:root", "wraptrace:child", "(begin lost)"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("wrapped tree missing %q:\n%s", want, joined)
		}
	}
}
