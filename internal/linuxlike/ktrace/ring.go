package ktrace

import (
	"sort"
	"sync/atomic"
)

// The trace ring buffer.
//
// Reservation is a single fetch-add on a global sequence counter —
// the same discipline ftrace's ring_buffer_lock_reserve uses — and
// publication is one atomic pointer store into a sharded slot array.
// Consecutive events land in different shards, so concurrent emitters
// do not fight over one cache line of slots, and a reader never locks
// anything: it snapshots the published pointers and sorts by sequence
// number. Old events are overwritten in place on wraparound, which is
// exactly the flight-recorder semantics the oops dump wants.

// RingShards is the slot-striping factor of the ring.
const RingShards = 16

// DefaultRingPerShard is the default per-shard slot count (total
// default capacity: RingShards * DefaultRingPerShard events).
const DefaultRingPerShard = 512

// Ring is a fixed-capacity, lock-free trace event buffer.
type Ring struct {
	seq    atomic.Uint64
	mask   uint64 // perShard - 1 (perShard is a power of two)
	shards [RingShards][]atomic.Pointer[Event]
}

// NewRing creates a ring holding RingShards*perShard events; perShard
// is rounded up to a power of two (minimum 8).
func NewRing(perShard int) *Ring {
	n := 8
	for n < perShard {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i] = make([]atomic.Pointer[Event], n)
	}
	return r
}

// Cap returns the total event capacity.
func (r *Ring) Cap() int { return RingShards * int(r.mask+1) }

// write assigns ev its global sequence number and publishes it,
// overwriting the oldest event in its slot on wraparound.
func (r *Ring) write(ev *Event) {
	s := r.seq.Add(1)
	ev.Seq = s
	r.shards[s%RingShards][(s/RingShards)&r.mask].Store(ev)
}

// Emitted returns the total number of events ever written (including
// those since overwritten).
func (r *Ring) Emitted() uint64 { return r.seq.Load() }

// Snapshot returns every live event in ascending sequence order. It
// takes no locks; events published concurrently with the snapshot may
// or may not be included.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, 64)
	for i := range r.shards {
		for j := range r.shards[i] {
			if ev := r.shards[i][j].Load(); ev != nil {
				out = append(out, *ev)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Last returns the most recent n live events in ascending sequence
// order (fewer if the ring holds fewer).
func (r *Ring) Last(n int) []Event {
	all := r.Snapshot()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Reset discards all published events. Emits racing a Reset may
// survive it; the sequence counter is never rewound, so ordering
// stays monotonic.
func (r *Ring) Reset() {
	for i := range r.shards {
		for j := range r.shards[i] {
			r.shards[i][j].Store(nil)
		}
	}
}

// The package-level ring every tracepoint publishes into.
var ringPtr atomic.Pointer[Ring]

func init() {
	ringPtr.Store(NewRing(DefaultRingPerShard))
}

func ring() *Ring { return ringPtr.Load() }

// Buffer returns the current global trace ring.
func Buffer() *Ring { return ring() }

// ResizeBuffer replaces the global ring with a fresh one holding
// RingShards*perShard events and returns it. In-flight emits may
// still land in the old ring.
func ResizeBuffer(perShard int) *Ring {
	r := NewRing(perShard)
	ringPtr.Store(r)
	return r
}
