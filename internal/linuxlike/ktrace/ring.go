package ktrace

import (
	"sort"
	"sync/atomic"
)

// The trace ring buffer.
//
// Reservation is a single fetch-add on a global sequence counter —
// the same discipline ftrace's ring_buffer_lock_reserve uses — and
// publication is a handful of atomic word stores into a flat, sharded
// slot array: the event's arguments first, its sequence number last.
// Nothing is allocated per emit and no string travels with the event
// (the tracepoint id is resolved back to a name at read time), which
// is what took the enabled-path emit from ~68 ns + a GC'd Event per
// event down to plain word stores (see BENCH_trace.json).
//
// Consecutive events land in different shards, so concurrent emitters
// do not fight over one cache line of slots, and a reader never locks
// anything: it reads the slot's sequence word, copies the payload
// words, and re-reads the sequence word — if it changed, a writer
// lapped the slot mid-read and the copy is discarded. Old events are
// overwritten in place on wraparound, which is exactly the
// flight-recorder semantics the oops dump wants; streaming readers
// (Consumer) observe the overwrite as a per-consumer drop count
// instead, computed from pure sequence arithmetic so an emitter never
// waits on — or even knows about — a consumer.
//
// The one theoretical hole: a writer stalled for an entire ring
// rotation while another writer claims the same slot can interleave
// payload stores such that a reader accepts a mixed event. That
// window needs an emitter preempted for Cap() further emits inside a
// six-store sequence; the Linux ring buffer closes it with per-CPU
// sub-buffers, a flight recorder for a simulated kernel documents it.

// RingShards is the slot-striping factor of the ring.
const RingShards = 16

// DefaultRingPerShard is the default per-shard slot count (total
// default capacity: RingShards * DefaultRingPerShard events).
const DefaultRingPerShard = 512

// slot is one event's storage: six independently-atomic words. seq is
// stored last (publication) and doubles as the validity check for
// readers; meta packs the task id (high 32 bits) over the tracepoint
// id (low 32 bits).
type slot struct {
	seq  atomic.Uint64
	meta atomic.Uint64
	a0   atomic.Uint64
	a1   atomic.Uint64
	a2   atomic.Uint64
	a3   atomic.Uint64
}

// Ring is a fixed-capacity, lock-free trace event buffer.
type Ring struct {
	seq    atomic.Uint64
	mask   uint64 // perShard - 1 (perShard is a power of two)
	shards [RingShards][]slot
}

// NewRing creates a ring holding RingShards*perShard events; perShard
// is rounded up to a power of two (minimum 8).
func NewRing(perShard int) *Ring {
	n := 8
	for n < perShard {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i] = make([]slot, n)
	}
	return r
}

// Cap returns the total event capacity.
func (r *Ring) Cap() int { return RingShards * int(r.mask+1) }

func (r *Ring) slotFor(s uint64) *slot {
	return &r.shards[s%RingShards][(s/RingShards)&r.mask]
}

// write claims the next sequence number and publishes one event,
// overwriting the oldest event in its slot on wraparound. The
// sequence word is stored last: a reader that sees seq == s knows the
// payload words were stored by (or before) that publication.
func (r *Ring) write(tpid uint32, task int64, a0, a1, a2, a3 uint64) {
	s := r.seq.Add(1)
	sl := r.slotFor(s)
	sl.meta.Store(uint64(uint32(task))<<32 | uint64(tpid))
	sl.a0.Store(a0)
	sl.a1.Store(a1)
	sl.a2.Store(a2)
	sl.a3.Store(a3)
	sl.seq.Store(s)
}

// load reads the event with sequence s, validating that the slot
// still holds it after the payload copy.
func (r *Ring) load(s uint64) (Event, bool) {
	sl := r.slotFor(s)
	if sl.seq.Load() != s {
		return Event{}, false
	}
	meta := sl.meta.Load()
	a0, a1, a2, a3 := sl.a0.Load(), sl.a1.Load(), sl.a2.Load(), sl.a3.Load()
	if sl.seq.Load() != s {
		return Event{}, false
	}
	return unpackEvent(s, meta, a0, a1, a2, a3), true
}

func unpackEvent(s, meta, a0, a1, a2, a3 uint64) Event {
	tpid := uint32(meta)
	return Event{
		Seq: s, TPID: tpid, Name: nameForID(tpid),
		Task: int64(meta >> 32),
		A0:   a0, A1: a1, A2: a2, A3: a3,
	}
}

// Emitted returns the total number of events ever written (including
// those since overwritten).
func (r *Ring) Emitted() uint64 { return r.seq.Load() }

// Snapshot returns every live event in ascending sequence order. It
// takes no locks; events published concurrently with the snapshot may
// or may not be included, and a slot overwritten mid-copy is skipped.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, 64)
	for i := range r.shards {
		for j := range r.shards[i] {
			sl := &r.shards[i][j]
			s := sl.seq.Load()
			if s == 0 {
				continue
			}
			meta := sl.meta.Load()
			a0, a1, a2, a3 := sl.a0.Load(), sl.a1.Load(), sl.a2.Load(), sl.a3.Load()
			if sl.seq.Load() != s {
				continue
			}
			out = append(out, unpackEvent(s, meta, a0, a1, a2, a3))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Last returns the most recent n live events in ascending sequence
// order (fewer if the ring holds fewer).
func (r *Ring) Last(n int) []Event {
	all := r.Snapshot()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Reset discards all published events. Emits racing a Reset may
// survive it; the sequence counter is never rewound, so ordering
// stays monotonic.
func (r *Ring) Reset() {
	for i := range r.shards {
		for j := range r.shards[i] {
			r.shards[i][j].seq.Store(0)
		}
	}
}

// Consumer is a trace_pipe-style streaming cursor over a ring: each
// consumer remembers the next sequence number it wants and drains
// forward from there. Consumers are completely invisible to emitters
// — an emitter never loads consumer state, so a stalled (or dead)
// consumer cannot block or slow the emit path; it just loses the
// events the ring overwrote, and Dropped says exactly how many.
//
// A Consumer is single-goroutine state; wrap it in a lock to share.
type Consumer struct {
	r       *Ring
	next    uint64 // next sequence number to deliver
	dropped atomic.Uint64
}

// NewConsumer opens a cursor that starts at the next event emitted
// after this call (it does not replay the ring's current contents;
// use Snapshot for that).
func (r *Ring) NewConsumer() *Consumer {
	return &Consumer{r: r, next: r.seq.Load() + 1}
}

// Poll returns up to max pending events (all of them if max <= 0) in
// sequence order, advancing the cursor. Events the ring overwrote
// before this consumer got to them are counted in Dropped — the
// count is exact, from sequence arithmetic, not an estimate. Poll
// never blocks; an empty return means nothing is pending yet.
func (c *Consumer) Poll(max int) []Event {
	cur := c.r.seq.Load()
	if cur < c.next {
		return nil
	}
	capN := uint64(c.r.Cap())
	if cur-c.next >= capN {
		// The ring lapped the cursor: everything older than the
		// oldest possibly-live sequence is gone.
		oldest := cur - capN + 1
		c.dropped.Add(oldest - c.next)
		c.next = oldest
	}
	var out []Event
	for s := c.next; s <= cur; s++ {
		if max > 0 && len(out) >= max {
			break
		}
		if ev, ok := c.r.load(s); ok {
			out = append(out, ev)
			c.next = s + 1
			continue
		}
		v := c.r.slotFor(s).seq.Load()
		if v > s {
			// Overwritten while we were draining.
			c.dropped.Add(1)
			c.next = s + 1
			continue
		}
		// v <= s: the emitter that claimed s has not published yet
		// (claim order is not publish order). Stop here and retry on
		// the next poll rather than misreport an in-flight event as
		// dropped.
		break
	}
	return out
}

// Dropped returns how many events this consumer lost to ring
// wraparound. Safe to read from any goroutine.
func (c *Consumer) Dropped() uint64 { return c.dropped.Load() }

// Pending returns how many emitted events the cursor has not yet
// delivered or dropped (an instantaneous lower bound under
// concurrent emits).
func (c *Consumer) Pending() uint64 {
	cur := c.r.seq.Load()
	if cur < c.next {
		return 0
	}
	return cur - c.next + 1
}

// The package-level ring every tracepoint publishes into.
var ringPtr atomic.Pointer[Ring]

func init() {
	ringPtr.Store(NewRing(DefaultRingPerShard))
}

func ring() *Ring { return ringPtr.Load() }

// Buffer returns the current global trace ring.
func Buffer() *Ring { return ring() }

// ResizeBuffer replaces the global ring with a fresh one holding
// RingShards*perShard events and returns it. In-flight emits may
// still land in the old ring.
func ResizeBuffer(perShard int) *Ring {
	r := NewRing(perShard)
	ringPtr.Store(r)
	return r
}
