package ktrace

import (
	"sort"
	"strings"
	"sync"
)

// Op is a pre-registered boundary operation — one "subsystem:op"
// identity that owns a latency histogram and a stable numeric id.
//
// Ops exist so the enabled hot path never touches a string: a
// subsystem declares its ops once at init (like tracepoints), and per
// call the latency plane moves only the op's uint32 id and records
// into its histogram. This is the satellite fix for the old
// enabled-path cost, where every emit re-hashed the op name.
type Op struct {
	name  string // "vfs:read"
	sub   string // "vfs"
	short string // "read"
	id    uint32
	hash  uint64 // fnv1a(name); travels in event args when needed
	hist  *Histogram
}

var (
	opsMu     sync.Mutex
	opsByName = make(map[string]*Op)
	opsByID   []*Op
)

// NewOp declares (or returns the already-declared) op with the given
// "subsystem:op" name. Called from package init of the instrumented
// subsystem, mirroring New for tracepoints.
func NewOp(name string) *Op {
	opsMu.Lock()
	defer opsMu.Unlock()
	if op, ok := opsByName[name]; ok {
		return op
	}
	sub, short := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		sub, short = name[:i], name[i+1:]
	}
	op := &Op{
		name: name, sub: sub, short: short,
		id:   uint32(len(opsByID)),
		hash: fnv1a(name),
		hist: NewHistogram(),
	}
	opsByName[name] = op
	opsByID = append(opsByID, op)
	return op
}

// Ops returns every declared op, sorted by name.
func Ops() []*Op {
	opsMu.Lock()
	defer opsMu.Unlock()
	out := make([]*Op, len(opsByID))
	copy(out, opsByID)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// OpByID resolves an op id (as carried in span event args) back to
// its op, or nil.
func OpByID(id uint32) *Op {
	opsMu.Lock()
	defer opsMu.Unlock()
	if int(id) < len(opsByID) {
		return opsByID[id]
	}
	return nil
}

// OpByName returns the op with the given name, or nil.
func OpByName(name string) *Op {
	opsMu.Lock()
	defer opsMu.Unlock()
	return opsByName[name]
}

// Name returns the full "subsystem:op" name.
func (op *Op) Name() string { return op.name }

// Subsystem returns the part before the colon.
func (op *Op) Subsystem() string { return op.sub }

// Short returns the part after the colon — the string legacy
// boundaries (vfs Boundary.Do, compartment Do) take as their op tag.
func (op *Op) Short() string { return op.short }

// ID returns the op's stable numeric id.
func (op *Op) ID() uint32 { return op.id }

// Hash returns the precomputed FNV-1a hash of the op name.
func (op *Op) Hash() uint64 { return op.hash }

// Hist returns the op's latency histogram (durations in nanoseconds).
func (op *Op) Hist() *Histogram { return op.hist }

// opName resolves an op id to its name for renderers ("?" if unknown).
func opName(id uint32) string {
	if op := OpByID(id); op != nil {
		return op.name
	}
	return "?"
}
