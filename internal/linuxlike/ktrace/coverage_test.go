package ktrace

import "testing"

func TestCoverBitmapOps(t *testing.T) {
	var a, b CoverBitmap
	if a.Count() != 0 {
		t.Fatalf("zero bitmap counts %d", a.Count())
	}
	a.Set(17)
	a.Set(17) // idempotent
	a.Set(4095)
	a.Set(4096 + 3) // wraps into bit 3
	if !a.Has(17) || !a.Has(4095) || !a.Has(3) {
		t.Fatal("Set/Has round trip failed")
	}
	if a.Has(18) {
		t.Fatal("unset bit reported set")
	}
	if a.Count() != 3 {
		t.Fatalf("count = %d, want 3", a.Count())
	}

	b.Set(17) // overlap
	b.Set(99)
	if got := a.NewBits(&b); got != 1 {
		t.Fatalf("NewBits = %d, want 1 (only bit 99 is novel)", got)
	}
	if got := b.NewBits(&a); got != 2 {
		t.Fatalf("reverse NewBits = %d, want 2", got)
	}
	a.Merge(&b)
	if a.Count() != 4 || !a.Has(99) {
		t.Fatalf("merge failed: count %d", a.Count())
	}
	if got := a.NewBits(&b); got != 0 {
		t.Fatalf("NewBits after merge = %d, want 0", got)
	}
}

func TestCoverageCollection(t *testing.T) {
	testRing(t, 8)
	ResetCoverage()
	EnableCoverage()
	t.Cleanup(func() {
		DisableCoverage()
		ResetCoverage()
	})

	tp := New("covertest:hit")
	other := New("covertest:silent")
	tp.Enable()
	defer tp.Disable()
	tp.Emit(0, 1, 2)

	snap := CoverageSnapshot()
	if !snap.Has(CoverIndex("covertest:hit")) {
		t.Fatal("recorded event did not mark its coverage bit")
	}
	if snap.Has(CoverIndex("covertest:silent")) && CoverIndex("covertest:silent") != CoverIndex("covertest:hit") {
		t.Fatal("never-emitted tracepoint marked coverage")
	}
	_ = other

	// Disabled collection marks nothing new.
	DisableCoverage()
	ResetCoverage()
	tp.Emit(0, 1, 2)
	snap = CoverageSnapshot()
	if snap.Count() != 0 {
		t.Fatal("coverage marked while disabled")
	}
}
