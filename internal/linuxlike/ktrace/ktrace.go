// Package ktrace is the observability plane of the simulated kernel:
// ftrace-style static tracepoints feeding a sharded lock-free ring
// buffer, a unified metrics registry with /proc-style and JSON
// exporters, lockstat surfacing (the accounting itself lives in kbase,
// next to the lock primitives), and ebpflike programs attachable to
// tracepoints as verified filters.
//
// The design constraint that shapes everything here is the emit gate:
// a *disabled* tracepoint must cost one atomic load and a predictable
// branch, so the legacy and safe subsystems can be instrumented
// permanently without a measurable tax on the I/O path (see
// BENCH_trace.json). Only once a tracepoint is enabled does an emit
// pay for event construction, probe evaluation, and the ring store.
//
// Tracepoints are declared at package init by the instrumented
// subsystem:
//
//	var tpRead = ktrace.New("blockdev:read")
//	...
//	tpRead.Emit(0, block, 0)
//
// and controlled centrally: Enable/Disable by name, EnableAll for
// flight recording, Attach to install a verified ebpflike filter.
package ktrace

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
)

// Event is one emitted trace record. The fixed shape — four uint64
// arguments, no payload pointers — is what makes events cheap to
// store, safe to hand to verified programs, and meaningful across
// every subsystem (args are documented per tracepoint in DESIGN.md).
type Event struct {
	Seq  uint64 // global emit order, assigned by the ring
	TPID uint32 // tracepoint id
	Name string // tracepoint name ("subsys:event")
	Task int64  // emitting kernel task (0 = unregistered)
	A0   uint64
	A1   uint64
	A2   uint64
	A3   uint64
}

// EventCtxSize is the size of the byte context an Event presents to an
// attached ebpflike program.
const EventCtxSize = 48

// CtxBytes encodes the event as the fixed little-endian context window
// a verified program reads:
//
//	[0:4)   tracepoint id
//	[4:8)   task id (low 32 bits)
//	[8:16)  sequence number
//	[16:24) A0   [24:32) A1   [32:40) A2   [40:48) A3
func (e *Event) CtxBytes() [EventCtxSize]byte {
	var b [EventCtxSize]byte
	binary.LittleEndian.PutUint32(b[0:], e.TPID)
	binary.LittleEndian.PutUint32(b[4:], uint32(e.Task))
	binary.LittleEndian.PutUint64(b[8:], e.Seq)
	binary.LittleEndian.PutUint64(b[16:], e.A0)
	binary.LittleEndian.PutUint64(b[24:], e.A1)
	binary.LittleEndian.PutUint64(b[32:], e.A2)
	binary.LittleEndian.PutUint64(b[40:], e.A3)
	return b
}

// Tracepoint is one static instrumentation site family. The zero
// value is not usable; declare tracepoints with New.
type Tracepoint struct {
	name string
	id   uint32
	// coverIdx is the tracepoint's bit in the coverage bitmap,
	// precomputed at registration so the emit path never hashes a
	// string (see coverage.go).
	coverIdx uint32

	// on is an enable count: Enable/Attach increment, Disable/Detach
	// decrement. The emit gate is a single load of this word.
	on atomic.Int32

	hits     atomic.Uint64 // events recorded into the ring
	filtered atomic.Uint64 // events dropped by an attached program

	probes atomic.Pointer[[]*Probe] // copy-on-write attached programs
}

var (
	regMu  sync.Mutex
	byName = make(map[string]*Tracepoint)
	byID   []*Tracepoint
)

// New declares (or returns the already-declared) tracepoint with the
// given "subsys:event" name. Called from package init of the
// instrumented subsystem.
func New(name string) *Tracepoint {
	regMu.Lock()
	defer regMu.Unlock()
	if tp, ok := byName[name]; ok {
		return tp
	}
	tp := &Tracepoint{name: name, id: uint32(len(byID)), coverIdx: CoverIndex(name)}
	byName[name] = tp
	byID = append(byID, tp)
	return tp
}

// nameForID resolves a tracepoint id back to its name — the ring
// stores ids, not strings, so readers resolve at snapshot time.
func nameForID(id uint32) string {
	regMu.Lock()
	defer regMu.Unlock()
	if int(id) < len(byID) {
		return byID[id].name
	}
	return "?"
}

// Lookup returns the tracepoint with the given name, or nil.
func Lookup(name string) *Tracepoint {
	regMu.Lock()
	defer regMu.Unlock()
	return byName[name]
}

// List returns every declared tracepoint, sorted by name.
func List() []*Tracepoint {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Tracepoint, len(byID))
	copy(out, byID)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// EnableAll enables every declared tracepoint. Pair with DisableAll.
func EnableAll() {
	for _, tp := range List() {
		tp.Enable()
	}
}

// DisableAll drops one enable reference from every declared
// tracepoint (the inverse of EnableAll; attached probes keep their
// tracepoints live).
func DisableAll() {
	for _, tp := range List() {
		tp.Disable()
	}
}

// Name returns the tracepoint name.
func (tp *Tracepoint) Name() string { return tp.name }

// ID returns the tracepoint's stable numeric id (the value an
// attached program reads at context offset 0).
func (tp *Tracepoint) ID() uint32 { return tp.id }

// Enabled reports whether emits currently record events.
func (tp *Tracepoint) Enabled() bool { return tp.on.Load() > 0 }

// Enable turns the tracepoint on (reference counted).
func (tp *Tracepoint) Enable() { tp.on.Add(1) }

// Disable drops one enable reference, never below zero.
func (tp *Tracepoint) Disable() {
	for {
		cur := tp.on.Load()
		if cur <= 0 {
			return
		}
		if tp.on.CompareAndSwap(cur, cur-1) {
			return
		}
	}
}

// Hits returns the number of events this tracepoint recorded.
func (tp *Tracepoint) Hits() uint64 { return tp.hits.Load() }

// Filtered returns the number of events dropped by attached programs.
func (tp *Tracepoint) Filtered() uint64 { return tp.filtered.Load() }

// ResetCounts zeroes the hit/filter counters (tests and CLI runs).
func (tp *Tracepoint) ResetCounts() {
	tp.hits.Store(0)
	tp.filtered.Store(0)
}

// Hash returns the FNV-1a hash of s. Events carry no strings beyond
// the tracepoint name, so identifiers — lock class names, ownership
// cell labels, module names — travel as this hash in an argument
// slot; callers should gate the call on Enabled() to keep the
// disabled path string-free.
func Hash(s string) uint64 { return fnv1a(s) }

// Emit records an event with two arguments. THE fast path: when the
// tracepoint is disabled this is one atomic load and a return, which
// is the whole cost of leaving instrumentation compiled in.
func (tp *Tracepoint) Emit(task int64, a0, a1 uint64) {
	if tp.on.Load() == 0 {
		return
	}
	tp.emit(task, a0, a1, 0, 0)
}

// Emit4 records an event with four arguments.
func (tp *Tracepoint) Emit4(task int64, a0, a1, a2, a3 uint64) {
	if tp.on.Load() == 0 {
		return
	}
	tp.emit(task, a0, a1, a2, a3)
}

// emit is the enabled slow path: run attached programs (any verdict 0
// filters the event), then publish into the ring. The common case —
// no probes attached — builds no Event and allocates nothing: the
// payload goes straight into the ring as word stores. Only a probe
// needs the Event shape (for its fixed byte context), and that one
// stays on the stack.
func (tp *Tracepoint) emit(task int64, a0, a1, a2, a3 uint64) {
	if ps := tp.probes.Load(); ps != nil {
		ev := Event{TPID: tp.id, Name: tp.name, Task: task, A0: a0, A1: a1, A2: a2, A3: a3}
		for _, p := range *ps {
			if !p.keep(&ev) {
				tp.filtered.Add(1)
				return
			}
		}
	}
	tp.hits.Add(1)
	if coverOn.Load() {
		coverMark(tp.coverIdx)
	}
	ring().write(tp.id, task, a0, a1, a2, a3)
}
