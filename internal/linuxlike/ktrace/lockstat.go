package ktrace

import (
	"fmt"
	"strings"
	"time"

	"safelinux/internal/linuxlike/kbase"
)

// Lockstat surfacing. The accounting lives in kbase next to the lock
// primitives (it must — ktrace sits above kbase in the import graph);
// ktrace renders it and feeds it into the metrics plane, so `ktrace
// lockstat` and the exporters are the one place contention becomes
// visible.

// EnableLockStat turns on per-LockClass accounting kernel-wide and
// returns the previous setting.
func EnableLockStat() bool { return kbase.SetLockStat(true) }

// DisableLockStat turns accounting off and returns the previous
// setting.
func DisableLockStat() bool { return kbase.SetLockStat(false) }

// RenderLockStat renders the lockstat table, lockstat(8)-style: one
// row per lock class that saw traffic, sorted by name, with
// contention counts and wait/hold-time totals and maxima.
func RenderLockStat() string {
	stats := kbase.LockStats()
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %10s %10s %12s %10s %12s %10s\n",
		"class", "acquisitions", "reads", "contended", "wait-total", "wait-max", "hold-total", "hold-max")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-24s %12d %10d %10d %12s %10s %12s %10s\n",
			s.Class, s.Acquisitions, s.ReadAcquires, s.Contended,
			fmtNs(s.WaitNs), fmtNs(s.MaxWaitNs), fmtNs(s.HoldNs), fmtNs(s.MaxHoldNs))
	}
	if len(stats) == 0 {
		b.WriteString("(no lock traffic recorded — is lockstat enabled?)\n")
	}
	return b.String()
}

func fmtNs(ns uint64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
}

// RegisterLockStat registers the lockstat table under the "lockstat"
// subsystem: per class, <class>.acquisitions, .reads, .contended,
// .wait_ns, .hold_ns.
func RegisterLockStat(m *Metrics) {
	m.Register("lockstat", func(emit func(string, uint64)) {
		for _, s := range kbase.LockStats() {
			emit(s.Class+".acquisitions", s.Acquisitions)
			if s.ReadAcquires > 0 {
				emit(s.Class+".reads", s.ReadAcquires)
			}
			emit(s.Class+".contended", s.Contended)
			emit(s.Class+".wait_ns", s.WaitNs)
			emit(s.Class+".hold_ns", s.HoldNs)
		}
	})
}
