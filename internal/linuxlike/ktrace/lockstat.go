package ktrace

import (
	"fmt"
	"strings"
	"time"

	"safelinux/internal/linuxlike/kbase"
)

// Lockstat surfacing. The accounting lives in kbase next to the lock
// primitives (it must — ktrace sits above kbase in the import graph);
// ktrace renders it and feeds it into the metrics plane, so `ktrace
// lockstat` and the exporters are the one place contention becomes
// visible.

// EnableLockStat turns on per-LockClass accounting kernel-wide and
// returns the previous setting.
func EnableLockStat() bool { return kbase.SetLockStat(true) }

// DisableLockStat turns accounting off and returns the previous
// setting.
func DisableLockStat() bool { return kbase.SetLockStat(false) }

// RenderLockStat renders the lockstat table, lockstat(8)-style: one
// row per lock class that saw traffic, sorted by name, with
// contention counts, wait/hold-time totals and maxima, and hold-time
// p50/p99 from the per-class log2 histograms.
func RenderLockStat() string {
	stats := kbase.LockStats()
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %10s %10s %12s %10s %12s %10s %10s %10s\n",
		"class", "acquisitions", "reads", "contended", "wait-total", "wait-max", "hold-total", "hold-max", "hold-p50", "hold-p99")
	for _, s := range stats {
		hv := log2View(s.HoldHist, s.HoldNs, s.MaxHoldNs)
		fmt.Fprintf(&b, "%-24s %12d %10d %10d %12s %10s %12s %10s %10s %10s\n",
			s.Class, s.Acquisitions, s.ReadAcquires, s.Contended,
			fmtNs(s.WaitNs), fmtNs(s.MaxWaitNs), fmtNs(s.HoldNs), fmtNs(s.MaxHoldNs),
			fmtNs(hv.P50), fmtNs(hv.P99))
	}
	if len(stats) == 0 {
		b.WriteString("(no lock traffic recorded — is lockstat enabled?)\n")
	}
	return b.String()
}

// log2View converts a kbase log2 bucket array into the standard
// percentile export. Bucket i holds samples in [2^(i-1), 2^i), so a
// quantile reports the bucket's upper bound (2^i - 1), clamped to the
// observed max — coarse (one-octave resolution) but honest about it.
func log2View(buckets [kbase.LockHistBuckets]uint64, sumNs, maxNs uint64) HistView {
	var total uint64
	for _, c := range buckets {
		total += c
	}
	v := HistView{Count: total, Sum: sumNs, Max: maxNs}
	if total == 0 {
		return v
	}
	q := func(p float64) uint64 {
		target := uint64(p*float64(total) + 0.5)
		if target < 1 {
			target = 1
		}
		var cum uint64
		for i, c := range buckets {
			cum += c
			if cum >= target {
				var ub uint64
				if i > 0 {
					ub = 1<<uint(i) - 1
				}
				if ub > maxNs {
					ub = maxNs
				}
				return ub
			}
		}
		return maxNs
	}
	v.P50, v.P90, v.P99, v.P999 = q(0.50), q(0.90), q(0.99), q(0.999)
	return v
}

func fmtNs(ns uint64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
}

// RegisterLockStat registers the lockstat table under the "lockstat"
// subsystem: per class, counters <class>.acquisitions, .reads,
// .contended, .wait_ns, .hold_ns, plus histogram metrics <class>.wait
// and <class>.hold carrying p50/p90/p99/p999 from the per-class log2
// distributions (maxima stopped being the only tail signal in v2).
func RegisterLockStat(m *Metrics) {
	m.Register("lockstat", func(emit func(string, uint64)) {
		for _, s := range kbase.LockStats() {
			emit(s.Class+".acquisitions", s.Acquisitions)
			if s.ReadAcquires > 0 {
				emit(s.Class+".reads", s.ReadAcquires)
			}
			emit(s.Class+".contended", s.Contended)
			emit(s.Class+".wait_ns", s.WaitNs)
			emit(s.Class+".hold_ns", s.HoldNs)
		}
	})
	m.RegisterHistSource("lockstat", func(emit func(string, HistView)) {
		for _, s := range kbase.LockStats() {
			if s.Contended > 0 {
				emit(s.Class+".wait", log2View(s.WaitHist, s.WaitNs, s.MaxWaitNs))
			}
			emit(s.Class+".hold", log2View(s.HoldHist, s.HoldNs, s.MaxHoldNs))
		}
	})
}
