package ktrace

import (
	"fmt"
	"sync"
	"testing"

	"safelinux/internal/linuxlike/ebpflike"
	"safelinux/internal/linuxlike/kbase"
)

// testRing swaps in a private ring for the test and restores the old
// one (tests in this package share the global ring).
func testRing(t *testing.T, perShard int) *Ring {
	t.Helper()
	old := ringPtr.Load()
	r := ResizeBuffer(perShard)
	t.Cleanup(func() { ringPtr.Store(old) })
	return r
}

func TestEmitGateDisabled(t *testing.T) {
	r := testRing(t, 8)
	tp := New("test:gate")
	tp.Emit(0, 1, 2)
	tp.Emit4(0, 1, 2, 3, 4)
	if got := r.Emitted(); got != 0 {
		t.Fatalf("disabled tracepoint emitted %d events", got)
	}
	if tp.Hits() != 0 {
		t.Fatalf("disabled tracepoint counted %d hits", tp.Hits())
	}
}

func TestEmitRecordsEvent(t *testing.T) {
	r := testRing(t, 8)
	tp := New("test:emit")
	tp.Enable()
	defer tp.Disable()
	tp.Emit4(7, 10, 20, 30, 40)
	evs := r.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Name != "test:emit" || e.Task != 7 || e.A0 != 10 || e.A1 != 20 || e.A2 != 30 || e.A3 != 40 {
		t.Fatalf("bad event: %+v", e)
	}
	if e.TPID != tp.ID() {
		t.Fatalf("event TPID %d != tracepoint ID %d", e.TPID, tp.ID())
	}
	if tp.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", tp.Hits())
	}
}

func TestEnableRefcount(t *testing.T) {
	tp := New("test:refcount")
	if tp.Enabled() {
		t.Fatal("fresh tracepoint enabled")
	}
	tp.Enable()
	tp.Enable()
	tp.Disable()
	if !tp.Enabled() {
		t.Fatal("tracepoint disabled with one reference outstanding")
	}
	tp.Disable()
	if tp.Enabled() {
		t.Fatal("tracepoint still enabled after balanced disables")
	}
	tp.Disable() // extra disable must not go negative
	tp.Enable()
	if !tp.Enabled() {
		t.Fatal("enable after floor-clamped disable did not stick")
	}
	tp.Disable()
}

// TestRingWraparound fills the ring several times over and checks that
// the survivors are exactly the newest events, in order.
func TestRingWraparound(t *testing.T) {
	r := testRing(t, 8) // capacity 16*8 = 128
	tp := New("test:wrap")
	tp.Enable()
	defer tp.Disable()
	const emits = 1000
	for i := 0; i < emits; i++ {
		tp.Emit(0, uint64(i), 0)
	}
	evs := r.Snapshot()
	if len(evs) != r.Cap() {
		t.Fatalf("ring holds %d events, want full capacity %d", len(evs), r.Cap())
	}
	// Oldest survivor is emits - cap; sequence numbers are contiguous.
	for i, e := range evs {
		wantA0 := uint64(emits - r.Cap() + i)
		if e.A0 != wantA0 {
			t.Fatalf("event %d: a0 = %d, want %d (oldest overwritten first)", i, e.A0, wantA0)
		}
		if i > 0 && e.Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d after %d", e.Seq, evs[i-1].Seq)
		}
	}
	if got := r.Emitted(); got != emits {
		t.Fatalf("Emitted() = %d, want %d", got, emits)
	}
	last := r.Last(10)
	if len(last) != 10 || last[9].A0 != emits-1 {
		t.Fatalf("Last(10) tail a0 = %d, want %d", last[9].A0, emits-1)
	}
}

// TestRingConcurrentEmitters hammers one ring from many goroutines —
// run under -race this is the proof the reservation/publication
// protocol is clean — and checks no sequence number is lost or
// duplicated among the survivors.
func TestRingConcurrentEmitters(t *testing.T) {
	r := testRing(t, 64)
	tp := New("test:concurrent")
	tp.Enable()
	defer tp.Disable()
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tp.Emit(int64(g), uint64(g), uint64(i))
			}
		}(g)
	}
	// A concurrent reader exercises snapshot-during-emit.
	stop := make(chan struct{})
	var rdWg sync.WaitGroup
	rdWg.Add(1)
	go func() {
		defer rdWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rdWg.Wait()

	if got := r.Emitted(); got != goroutines*perG {
		t.Fatalf("Emitted() = %d, want %d", got, goroutines*perG)
	}
	evs := r.Snapshot()
	if len(evs) != r.Cap() {
		t.Fatalf("ring holds %d, want %d", len(evs), r.Cap())
	}
	seen := make(map[uint64]bool, len(evs))
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestCtxBytesLayout(t *testing.T) {
	e := Event{Seq: 0x1122334455667788, TPID: 9, Task: 0x0102030405060708, A0: 1, A1: 2, A2: 3, A3: 4}
	b := e.CtxBytes()
	if b[0] != 9 {
		t.Fatalf("tpID byte = %d", b[0])
	}
	if b[4] != 0x08 || b[7] != 0x05 {
		t.Fatalf("task low-32 bytes wrong: % x", b[4:8])
	}
	if b[8] != 0x88 || b[15] != 0x11 {
		t.Fatalf("seq bytes wrong: % x", b[8:16])
	}
	if b[16] != 1 || b[24] != 2 || b[32] != 3 || b[40] != 4 {
		t.Fatalf("arg bytes wrong")
	}
}

// TestAttachFilterEndToEnd is the integration test of the verified-
// probe plane: an ebpflike program attached to a tracepoint filters
// events out of the ring by predicate.
func TestAttachFilterEndToEnd(t *testing.T) {
	r := testRing(t, 32)
	tp := New("test:attach")

	// keep events with a0 >= 50 (low 32 bits at ctx offset 16)
	prog, err := ebpflike.Verify([]ebpflike.Inst{
		{Op: ebpflike.OpLdCtx32, Dst: 1, Src: 0, Imm: 16},
		{Op: ebpflike.OpMov, Dst: 2, Imm: 50},
		{Op: ebpflike.OpJLt, Dst: 1, Src: 2, Off: 2},
		{Op: ebpflike.OpMov, Dst: 0, Imm: 1},
		{Op: ebpflike.OpRet, Dst: 0},
		{Op: ebpflike.OpMov, Dst: 0, Imm: 0},
		{Op: ebpflike.OpRet, Dst: 0},
	}, EventCtxSize)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	probe, kerr := Attach(tp, prog)
	if kerr != kbase.EOK {
		t.Fatalf("attach: %v", kerr)
	}
	if !tp.Enabled() {
		t.Fatal("attach did not enable the tracepoint")
	}

	for i := 0; i < 100; i++ {
		tp.Emit(0, uint64(i), 0)
	}
	evs := r.Snapshot()
	if len(evs) != 50 {
		t.Fatalf("ring holds %d events, want 50 survivors", len(evs))
	}
	for _, e := range evs {
		if e.A0 < 50 {
			t.Fatalf("filtered event a0=%d leaked into the ring", e.A0)
		}
	}
	if probe.Matched() != 50 || probe.Dropped() != 50 {
		t.Fatalf("probe counters matched=%d dropped=%d, want 50/50", probe.Matched(), probe.Dropped())
	}
	if tp.Hits() != 50 || tp.Filtered() != 50 {
		t.Fatalf("tracepoint counters hits=%d filtered=%d, want 50/50", tp.Hits(), tp.Filtered())
	}

	probe.Detach()
	probe.Detach() // idempotent
	if tp.Enabled() {
		t.Fatal("detach did not drop the enable reference")
	}
	tp.Enable()
	defer tp.Disable()
	tp.Emit(0, 1, 0) // a0 < 50: with the probe gone it must survive
	if tp.Filtered() != 50 {
		t.Fatalf("detached probe still filtering")
	}
}

func TestAttachRejectsOversizedCtx(t *testing.T) {
	tp := New("test:attach-reject")
	prog, err := ebpflike.Verify([]ebpflike.Inst{
		{Op: ebpflike.OpMov, Dst: 0, Imm: 1},
		{Op: ebpflike.OpRet, Dst: 0},
	}, EventCtxSize+8)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if _, kerr := Attach(tp, prog); kerr != kbase.EINVAL {
		t.Fatalf("Attach with oversized ctx: %v, want EINVAL", kerr)
	}
	if _, kerr := Attach(nil, prog); kerr != kbase.EINVAL {
		t.Fatalf("Attach(nil tracepoint): %v, want EINVAL", kerr)
	}
	if _, kerr := Attach(tp, nil); kerr != kbase.EINVAL {
		t.Fatalf("Attach(nil program): %v, want EINVAL", kerr)
	}
}

// TestProbeFailOpen: a program that faults at runtime must keep the
// event (a broken observer must not hide kernel activity).
func TestProbeFailOpen(t *testing.T) {
	r := testRing(t, 8)
	tp := New("test:failopen")
	// r1 = ctx[a0-offset] (= emitted a0), r2 = 1, r1 /= r0 where r0
	// holds the event's a1 — division by a zero register faults at
	// runtime when a1 == 0.
	prog, err := ebpflike.Verify([]ebpflike.Inst{
		{Op: ebpflike.OpLdCtx32, Dst: 1, Src: 0, Imm: 16},
		{Op: ebpflike.OpLdCtx32, Dst: 2, Src: 0, Imm: 24},
		{Op: ebpflike.OpDiv, Dst: 1, Src: 2},
		{Op: ebpflike.OpMov, Dst: 0, Imm: 0},
		{Op: ebpflike.OpRet, Dst: 0},
	}, EventCtxSize)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	probe, kerr := Attach(tp, prog)
	if kerr != kbase.EOK {
		t.Fatalf("attach: %v", kerr)
	}
	defer probe.Detach()
	tp.Emit(0, 8, 0) // a1=0: div-by-zero fault, kept fail-open
	tp.Emit(0, 8, 2) // runs clean, verdict 0, dropped
	if probe.RunErrs() != 1 {
		t.Fatalf("runErrs = %d, want 1", probe.RunErrs())
	}
	evs := r.Snapshot()
	if len(evs) != 1 || evs[0].A1 != 0 {
		t.Fatalf("fail-open event missing from ring: %+v", evs)
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Register("alpha", func(emit func(string, uint64)) {
		emit("x", 1)
		emit("y", 2)
	})
	// Second collector under the same subsystem: samples merge by sum.
	m.Register("alpha", func(emit func(string, uint64)) { emit("x", 10) })
	m.Register("beta", func(emit func(string, uint64)) { emit("z", 3) })

	if v, ok := m.Lookup("alpha", "x"); !ok || v != 11 {
		t.Fatalf("Lookup(alpha, x) = %d, %v; want 11, true", v, ok)
	}
	got := m.RenderText()
	want := "alpha.x 11\nalpha.y 2\nbeta.z 3\n"
	if got != want {
		t.Fatalf("RenderText:\n%s\nwant:\n%s", got, want)
	}
	blob, err := m.RenderJSON()
	if err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	if string(blob) == "" || !containsAll(string(blob), `"alpha"`, `"x": 11`, `"beta"`) {
		t.Fatalf("RenderJSON missing fields:\n%s", blob)
	}
	if _, ok := m.Lookup("gamma", "nope"); ok {
		t.Fatal("Lookup of unregistered metric succeeded")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestFlightRecorder: an oops while the flight recorder is installed
// snapshots the preceding trace events into the report.
func TestFlightRecorder(t *testing.T) {
	testRing(t, 32)
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	defer kbase.InstallRecorder(prev)

	tp := New("test:flight")
	EnableFlightRecorder(8)
	defer DisableFlightRecorder()

	for i := 0; i < 20; i++ {
		tp.Emit(0, uint64(i), 0)
	}
	kbase.Oops(kbase.OopsSemantic, "testmod", "synthetic failure %d", 42)

	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d oopses, want 1", len(evs))
	}
	e := evs[0]
	if len(e.Trace) == 0 {
		t.Fatal("oops captured no trace events")
	}
	if len(e.Trace) > 8 {
		t.Fatalf("oops captured %d events, depth was 8", len(e.Trace))
	}
	// The kernel:oops tracepoint fires before the snapshot, so the dump
	// ends with the oops itself, preceded by the test:flight traffic.
	lastLine := e.Trace[len(e.Trace)-1]
	if !containsAll(lastLine, "kernel:oops") {
		t.Fatalf("dump does not end with kernel:oops: %q", lastLine)
	}
	if !containsAll(lastLine, fmt.Sprintf("a1=%d", fnv1a("testmod"))) {
		t.Fatalf("kernel:oops event does not carry the module hash: %q", lastLine)
	}
	foundFlight := false
	for _, line := range e.Trace {
		if containsAll(line, "test:flight") {
			foundFlight = true
		}
	}
	if !foundFlight {
		t.Fatal("dump does not contain the preceding test:flight events")
	}
}

func TestFlightRecorderIdempotent(t *testing.T) {
	testRing(t, 8)
	EnableFlightRecorder(4)
	EnableFlightRecorder(16) // only the depth updates
	defer DisableFlightRecorder()
	flightMu.Lock()
	d := flightDepth
	flightMu.Unlock()
	if d != 16 {
		t.Fatalf("depth = %d, want 16", d)
	}
	DisableFlightRecorder()
	DisableFlightRecorder() // second disable is a no-op
	EnableFlightRecorder(4) // balanced for the deferred disable
}

func TestHashStable(t *testing.T) {
	if Hash("bufcache") != fnv1a("bufcache") {
		t.Fatal("Hash does not match fnv1a")
	}
	if Hash("a") == Hash("b") {
		t.Fatal("trivial hash collision")
	}
}
