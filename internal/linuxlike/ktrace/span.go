package ktrace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"safelinux/internal/linuxlike/kbase"
)

// Request-scoped span tracing.
//
// A span is one timed traversal of a boundary op. Spans form a tree:
// the trace id is the root span's id, every span carries its parent's
// id, and the current (trace, span) pair rides on the kernel task (two
// atomic words in kbase.Task — kbase sits below ktrace in the import
// graph, so the task can't hold richer types). A boundary op that
// finds a ctx already on its task becomes a child; one that finds none
// becomes a root and mints a fresh trace.
//
// Cost discipline: the baseline parallel-I/O op is ~355 ns and a
// timestamp pair alone is ~90 ns, so timing every op would blow the
// ≤5% budget by 5x. Roots therefore sample (default 1 in 32, see
// SetSampleShift); a child whose parent sampled in always records, so
// every captured trace is a *complete* tree — the standard
// parent-based sampling deal. Histograms ride the same decision:
// quantiles from a uniform 1-in-32 sample converge on the true
// distribution, and the bench tiers in BENCH_trace.json price the
// whole arrangement honestly, including a shift-0 (sample-everything)
// tier.
//
// Span events in the ring (see the catalog in DESIGN.md):
//
//	span:begin  a0=trace a1=span a2=parent-span a3=op-id
//	span:end    a0=trace a1=span a2=duration-ns a3=op-id
//	span:slow   a0=trace a1=span a2=duration-ns a3=op-id
//
// The slow-op watchdog fires when a *root* span ends over the
// threshold: it emits span:slow, renders the trace's span tree from a
// ring snapshot, and hands it to LastSlowOp and the hook — the
// flight-recorder answer to "what did that 40 ms write touch?".

var (
	tpSpanBegin = New("span:begin")
	tpSpanEnd   = New("span:end")
	tpSpanSlow  = New("span:slow")
)

// Plane mode bits: which halves of the latency plane are live.
const (
	planeHist = 1 << iota
	planeSpan
)

var (
	planeMode atomic.Uint32

	// Root-span sampling: record 1 in 2^shift roots (0 = all).
	sampleShift atomic.Uint32
	sampleCtr   atomic.Uint64

	spanIDs      atomic.Uint64
	spansStarted atomic.Uint64
	spansSlow    atomic.Uint64

	planeMu sync.Mutex // serializes Set{Histograms,Spans} refcounting

	timeBase = time.Now()
)

// DefaultSampleShift is the boot default: roots sample 1 in 32.
const DefaultSampleShift = 5

func init() { sampleShift.Store(DefaultSampleShift) }

// NowNs returns monotonic nanoseconds since boot (package init) — the
// clock every latency measurement here uses.
func NowNs() int64 { return int64(time.Since(timeBase)) }

func sampled() bool {
	shift := sampleShift.Load()
	if shift == 0 {
		return true
	}
	return sampleCtr.Add(1)&(1<<shift-1) == 0
}

// TimingSample reports whether a manually-timed site (one that can't
// use OpTimer, like a kio SQE that completes on another goroutine)
// should take a timestamp now: histograms on, and the sampler says go.
func TimingSample() bool {
	return planeMode.Load()&planeHist != 0 && sampled()
}

// HistogramsOn reports whether the histogram plane is live.
func HistogramsOn() bool { return planeMode.Load()&planeHist != 0 }

// SpansOn reports whether the span plane is live.
func SpansOn() bool { return planeMode.Load()&planeSpan != 0 }

// SetHistograms turns op latency histograms on or off.
func SetHistograms(on bool) {
	planeMu.Lock()
	defer planeMu.Unlock()
	setPlaneBit(planeHist, on)
}

// SetSpans turns span tracing on or off. Enabling also enables the
// span:* tracepoints (reference counted), so span events reach the
// ring without a separate Enable call; disabling drops that reference.
func SetSpans(on bool) {
	planeMu.Lock()
	defer planeMu.Unlock()
	if !setPlaneBit(planeSpan, on) {
		return
	}
	if on {
		tpSpanBegin.Enable()
		tpSpanEnd.Enable()
		tpSpanSlow.Enable()
	} else {
		tpSpanBegin.Disable()
		tpSpanEnd.Disable()
		tpSpanSlow.Disable()
	}
}

// setPlaneBit flips one mode bit under planeMu; reports whether the
// bit actually changed.
func setPlaneBit(bit uint32, on bool) bool {
	cur := planeMode.Load()
	next := cur &^ bit
	if on {
		next = cur | bit
	}
	if next == cur {
		return false
	}
	planeMode.Store(next)
	return true
}

// SetSampleShift sets root-span sampling to 1 in 2^shift (0 samples
// everything; capped at 20) and returns the previous shift.
func SetSampleShift(shift uint32) uint32 {
	if shift > 20 {
		shift = 20
	}
	return sampleShift.Swap(shift)
}

// SampleShift returns the current root sampling shift.
func SampleShift() uint32 { return sampleShift.Load() }

// SpansStarted returns the total spans begun since boot.
func SpansStarted() uint64 { return spansStarted.Load() }

// SpansSlowCount returns how many times the slow-op watchdog fired.
func SpansSlowCount() uint64 { return spansSlow.Load() }

// OpTimer is the in-flight state of one timed boundary op. The zero
// value's End is a no-op, so call sites stay branch-free:
//
//	t := opRead.Begin(task)
//	defer t.End()
type OpTimer struct {
	op        *Op
	task      *kbase.Task
	startNs   int64
	trace     uint64
	span      uint64
	prevTrace uint64
	prevSpan  uint64
	flags     uint32
}

func taskID(t *kbase.Task) int64 {
	if t == nil {
		return 0
	}
	return t.ID()
}

// Begin starts timing one traversal of the op by the given task (nil
// for ops with no kernel task, e.g. raw socket calls). Returns the
// zero OpTimer — free to End — when the latency plane is off or the
// sampler skips this root.
func (op *Op) Begin(task *kbase.Task) OpTimer {
	mode := planeMode.Load()
	if mode == 0 {
		return OpTimer{}
	}
	var pTrace, pSpan uint64
	if task != nil {
		pTrace, pSpan = task.SpanCtx()
	}
	// Parent-based sampling: inside a trace, always record (trees stay
	// complete); at a root, roll the dice once for the whole tree.
	if pTrace == 0 && !sampled() {
		return OpTimer{}
	}
	t := OpTimer{op: op, flags: mode}
	if mode&planeSpan != 0 {
		t.task = task
		t.prevTrace, t.prevSpan = pTrace, pSpan
		t.span = spanIDs.Add(1)
		t.trace = pTrace
		if t.trace == 0 {
			t.trace = t.span // root: the trace is named after its root span
		}
		if task != nil {
			task.SetSpanCtx(t.trace, t.span)
		}
		spansStarted.Add(1)
	}
	t.startNs = NowNs()
	if mode&planeSpan != 0 {
		tpSpanBegin.Emit4(taskID(task), t.trace, t.span, t.prevSpan, uint64(op.id))
	}
	return t
}

// End finishes the traversal: records the duration into the op's
// histogram, emits span:end, restores the task's previous span ctx,
// and — for a root span over the slow threshold — fires the watchdog.
func (t OpTimer) End() {
	if t.flags == 0 {
		return
	}
	durNs := uint64(NowNs() - t.startNs)
	if t.flags&planeHist != 0 {
		t.op.hist.Record(durNs)
	}
	if t.flags&planeSpan == 0 {
		return
	}
	if t.task != nil {
		t.task.SetSpanCtx(t.prevTrace, t.prevSpan)
	}
	tpSpanEnd.Emit4(taskID(t.task), t.trace, t.span, durNs, uint64(t.op.id))
	if t.prevTrace == 0 {
		if th := slowThresholdNs.Load(); th != 0 && durNs >= th {
			t.fireWatchdog(durNs)
		}
	}
}

// Active reports whether this timer is actually recording (false for
// the zero timer handed out when the plane is off or sampled out).
func (t OpTimer) Active() bool { return t.flags != 0 }

// TraceID returns the trace this timer belongs to (0 when spans are
// off or the timer is inactive).
func (t OpTimer) TraceID() uint64 { return t.trace }

// The slow-op watchdog.

// SlowOp is one watchdog capture: the root op that blew the threshold
// and the rendered span tree of everything underneath it.
type SlowOp struct {
	Op      string // root op name
	TraceID uint64
	Task    int64
	DurNs   uint64
	Tree    []string // rendered span tree, one line per span
}

var (
	slowThresholdNs atomic.Uint64
	lastSlow        atomic.Pointer[SlowOp]
	slowHook        atomic.Pointer[func(SlowOp)]
)

// SetSlowOpThreshold arms the watchdog: any root span lasting d or
// longer is captured (0 disarms). Returns the previous threshold.
func SetSlowOpThreshold(d time.Duration) time.Duration {
	prev := slowThresholdNs.Swap(uint64(max64(0, d.Nanoseconds())))
	return time.Duration(prev)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SetSlowOpHook installs a function called (synchronously, on the
// slow op's own goroutine) with each capture; nil uninstalls.
func SetSlowOpHook(fn func(SlowOp)) {
	if fn == nil {
		slowHook.Store(nil)
		return
	}
	slowHook.Store(&fn)
}

// LastSlowOp returns the most recent watchdog capture, or nil.
func LastSlowOp() *SlowOp { return lastSlow.Load() }

// ResetSlowOp clears the last capture (tests).
func ResetSlowOp() { lastSlow.Store(nil) }

func (t OpTimer) fireWatchdog(durNs uint64) {
	spansSlow.Add(1)
	tpSpanSlow.Emit4(taskID(t.task), t.trace, t.span, durNs, uint64(t.op.id))
	rec := &SlowOp{
		Op:      t.op.name,
		TraceID: t.trace,
		Task:    taskID(t.task),
		DurNs:   durNs,
		Tree:    SpanTree(ring().Snapshot(), t.trace),
	}
	lastSlow.Store(rec)
	if h := slowHook.Load(); h != nil {
		(*h)(*rec)
	}
}

// SpanTree reconstructs the causal tree of one trace from a slice of
// ring events and renders it, one line per span, children indented
// under parents in begin order:
//
//	vfs:syncall 1.52ms
//	  journal:commit 1.01ms
//	    kio:batch 740.0µs
//
// Spans whose begin event was overwritten by ring wraparound still
// appear if their end survived (flagged "(begin lost)" and parented
// at the root); a span still in flight renders "(in flight)".
func SpanTree(evs []Event, traceID uint64) []string {
	type node struct {
		span, parent uint64
		opID         uint32
		durNs        uint64
		ended        bool
		beginLost    bool
		children     []*node
	}
	nodes := make(map[uint64]*node)
	var order []*node
	beginID, endID := tpSpanBegin.id, tpSpanEnd.id
	for i := range evs {
		ev := &evs[i]
		if ev.A0 != traceID {
			continue
		}
		switch ev.TPID {
		case beginID:
			if nodes[ev.A1] == nil {
				n := &node{span: ev.A1, parent: ev.A2, opID: uint32(ev.A3)}
				nodes[ev.A1] = n
				order = append(order, n)
			}
		case endID:
			n := nodes[ev.A1]
			if n == nil {
				n = &node{span: ev.A1, beginLost: true, opID: uint32(ev.A3)}
				nodes[ev.A1] = n
				order = append(order, n)
			}
			n.durNs = ev.A2
			n.ended = true
			n.opID = uint32(ev.A3)
		}
	}
	var roots []*node
	for _, n := range order {
		if p := nodes[n.parent]; p != nil && n.parent != n.span {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var out []string
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(opName(n.opID))
		if n.ended {
			fmt.Fprintf(&b, " %s", fmtNs(n.durNs))
		} else {
			b.WriteString(" (in flight)")
		}
		if n.beginLost {
			b.WriteString(" (begin lost)")
		}
		out = append(out, b.String())
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return out
}
