package ktrace

import (
	"fmt"
	"sync"

	"safelinux/internal/linuxlike/kbase"
)

// The flight recorder: on a kernel oops, the most recent trace events
// are snapshotted into the oops report, so a crash names not just the
// failing module but the operations that led up to it — the black box
// the fault-injection campaigns read to attribute failures.

// tpOops is emitted at every Oops/BUG while the flight recorder is
// installed: a0 = oops kind index (see oopsKindIndex), a1 = FNV-1a
// hash of the module name (events carry no strings beyond the
// tracepoint name).
var tpOops = New("kernel:oops")

var (
	flightMu    sync.Mutex
	flightDepth int
	flightPrev  func() []string
	flightPrevO func(kbase.OopsKind, string)
	flightOn    bool
)

// DefaultFlightDepth is the number of events a flight-recorder dump
// carries when EnableFlightRecorder is given a depth of 0.
const DefaultFlightDepth = 32

// EnableFlightRecorder installs the flight recorder: every tracepoint
// is enabled, and every subsequent Oops/BUG captures the last depth
// trace events into its report (OopsEvent.Trace) after emitting the
// kernel:oops tracepoint. Idempotent; pair with DisableFlightRecorder.
func EnableFlightRecorder(depth int) {
	flightMu.Lock()
	defer flightMu.Unlock()
	if flightOn {
		if depth > 0 {
			flightDepth = depth
		}
		return
	}
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	flightDepth = depth
	flightOn = true
	EnableAll()
	flightPrevO = kbase.SetOopsObserver(func(kind kbase.OopsKind, module string) {
		tpOops.Emit(0, uint64(oopsKindIndex(kind)), fnv1a(module))
	})
	flightPrev = kbase.SetOopsTraceFn(func() []string {
		flightMu.Lock()
		d := flightDepth
		flightMu.Unlock()
		return FormatEvents(ring().Last(d))
	})
}

// DisableFlightRecorder uninstalls the hooks and drops the enable
// references EnableFlightRecorder took.
func DisableFlightRecorder() {
	flightMu.Lock()
	defer flightMu.Unlock()
	if !flightOn {
		return
	}
	flightOn = false
	kbase.SetOopsTraceFn(flightPrev)
	kbase.SetOopsObserver(flightPrevO)
	flightPrev, flightPrevO = nil, nil
	DisableAll()
}

// FormatEvents renders events one per line, oldest first, in the
// fixed "seq name task a0 a1 a2 a3" shape the oops dump uses.
func FormatEvents(evs []Event) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = fmt.Sprintf("#%d %s task=%d a0=%d a1=%d a2=%d a3=%d",
			e.Seq, e.Name, e.Task, e.A0, e.A1, e.A2, e.A3)
	}
	return out
}

// oopsKindIndex maps an oops kind to a stable small integer for the
// kernel:oops tracepoint argument.
func oopsKindIndex(k kbase.OopsKind) int {
	switch k {
	case kbase.OopsNullDeref:
		return 1
	case kbase.OopsUseAfterFree:
		return 2
	case kbase.OopsDoubleFree:
		return 3
	case kbase.OopsOutOfBounds:
		return 4
	case kbase.OopsTypeConfusion:
		return 5
	case kbase.OopsDataRace:
		return 6
	case kbase.OopsDeadlock:
		return 7
	case kbase.OopsLeak:
		return 8
	case kbase.OopsSemantic:
		return 9
	case kbase.OopsCorruption:
		return 10
	default:
		return 0
	}
}

// fnv1a hashes a string for tracepoint arguments.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
