package ktrace

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestGatherCheckedDupEmission: one collector emitting a name twice in
// a single gather is the bug v2 makes visible — still summed (dropping
// data would be worse) but reported as a typed DupEmission.
func TestGatherCheckedDupEmission(t *testing.T) {
	m := NewMetrics()
	m.Register("buggy", func(emit func(string, uint64)) {
		emit("x", 3)
		emit("x", 4)
		emit("y", 1)
	})
	metrics, dups := m.GatherChecked()
	if len(dups) != 1 {
		t.Fatalf("got %d dup reports, want 1: %v", len(dups), dups)
	}
	d := dups[0]
	if d.Subsystem != "buggy" || d.Name != "x" || d.Count != 2 {
		t.Fatalf("dup = %+v, want buggy.x emitted 2 times", d)
	}
	var derr error = d
	if !strings.Contains(derr.Error(), "buggy") || !strings.Contains(derr.Error(), `"x"`) {
		t.Fatalf("DupEmission.Error() unhelpful: %s", derr)
	}
	if v, ok := m.Lookup("buggy", "x"); !ok || v != 7 {
		t.Fatalf("dup values not summed: got %d", v)
	}
	// Sources still counts collectors, not emissions.
	for _, s := range metrics {
		if s.Subsystem == "buggy" && s.Name == "x" && s.Sources != 1 {
			t.Fatalf("Sources = %d for a single collector, want 1", s.Sources)
		}
	}
}

// TestCrossCollectorSumIsIntentional: two collectors sharing a
// subsystem and a name is deliberate aggregation (two endpoints, two
// mounts) — summed, Sources counts both, no dup report.
func TestCrossCollectorSumIsIntentional(t *testing.T) {
	m := NewMetrics()
	m.Register("safeish", func(emit func(string, uint64)) { emit("segments", 10) })
	m.Register("safeish", func(emit func(string, uint64)) { emit("segments", 5) })
	metrics, dups := m.GatherChecked()
	if len(dups) != 0 {
		t.Fatalf("cross-collector sum misreported as dup: %v", dups)
	}
	found := false
	for _, s := range metrics {
		if s.Subsystem == "safeish" && s.Name == "segments" {
			found = true
			if s.Value != 15 || s.Sources != 2 {
				t.Fatalf("got value=%d sources=%d, want 15 from 2 sources", s.Value, s.Sources)
			}
		}
	}
	if !found {
		t.Fatal("summed metric missing from gather")
	}
}

func TestRegisterHistogramDuplicate(t *testing.T) {
	m := NewMetrics()
	if err := m.RegisterHistogram("sub", "lat_ns", NewHistogram()); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	err := m.RegisterHistogram("sub", "lat_ns", NewHistogram())
	if !errors.Is(err, ErrDupRegistration) {
		t.Fatalf("second registration err = %v, want ErrDupRegistration", err)
	}
	// Same name under a different subsystem is fine.
	if err := m.RegisterHistogram("other", "lat_ns", NewHistogram()); err != nil {
		t.Fatalf("cross-subsystem registration: %v", err)
	}
}

func TestHistogramMetricExport(t *testing.T) {
	m := NewMetrics()
	h := NewHistogram()
	for v := uint64(1); v <= 100; v++ {
		h.Record(v)
	}
	if err := m.RegisterHistogram("iotest", "lat_ns", h); err != nil {
		t.Fatal(err)
	}
	m.Register("iotest", func(emit func(string, uint64)) { emit("ops", 100) })

	view, ok := m.LookupHist("iotest", "lat_ns")
	if !ok || view.Count != 100 {
		t.Fatalf("LookupHist: ok=%v count=%d", ok, view.Count)
	}
	if q, ok := m.Quantile("iotest", "lat_ns", 0.99); !ok || q != view.P99 {
		t.Fatalf("Quantile = %d,%v, want P99 %d", q, ok, view.P99)
	}
	// Kind-blind Lookup sees the sample count.
	if v, ok := m.Lookup("iotest", "lat_ns"); !ok || v != 100 {
		t.Fatalf("Lookup on a histogram = %d,%v, want count 100", v, ok)
	}

	text := m.RenderText()
	if !strings.Contains(text, "iotest.ops 100\n") {
		t.Fatalf("counter line missing:\n%s", text)
	}
	if !strings.Contains(text, "iotest.lat_ns count=100 p50=") {
		t.Fatalf("histogram line missing:\n%s", text)
	}

	blob, err := m.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]map[string]json.RawMessage
	if err := json.Unmarshal(blob, &obj); err != nil {
		t.Fatal(err)
	}
	var hv HistView
	if err := json.Unmarshal(obj["iotest"]["lat_ns"], &hv); err != nil {
		t.Fatalf("histogram JSON is not a HistView object: %v", err)
	}
	if hv.Count != 100 || hv.P50 != view.P50 {
		t.Fatalf("JSON view %+v does not match gathered %+v", hv, view)
	}
	var ops uint64
	if err := json.Unmarshal(obj["iotest"]["ops"], &ops); err != nil || ops != 100 {
		t.Fatalf("counter JSON = %s (%v)", obj["iotest"]["ops"], err)
	}
}

func TestRegisterOpsLiveEnumeration(t *testing.T) {
	m := NewMetrics()
	m.RegisterOps()
	op := NewOp("opmetric:probe")
	op.Hist().Record(500)
	view, ok := m.LookupHist("opmetric", "probe_ns")
	if !ok {
		t.Fatal("op histogram not exported as opmetric.probe_ns")
	}
	if view.Count == 0 {
		t.Fatal("op histogram view empty")
	}
	// Ops declared after RegisterOps appear too (live enumeration).
	late := NewOp("opmetric:late")
	late.Hist().Record(7)
	if _, ok := m.LookupHist("opmetric", "late_ns"); !ok {
		t.Fatal("op declared after RegisterOps not exported")
	}
}

func TestHistSourceDynamicNames(t *testing.T) {
	m := NewMetrics()
	views := map[string]HistView{
		"classA.wait": {Count: 3, Max: 90, P50: 10, P99: 80},
		"classB.hold": {Count: 1, Max: 5, P50: 5, P99: 5},
	}
	m.RegisterHistSource("locktest", func(emit func(string, HistView)) {
		for name, v := range views {
			emit(name, v)
		}
	})
	for name, want := range views {
		got, ok := m.LookupHist("locktest", name)
		if !ok || got != want {
			t.Fatalf("%s: got %+v ok=%v, want %+v", name, got, ok, want)
		}
	}
}
