package ktrace

import (
	"math/bits"
	"sync/atomic"
)

// Tracepoint-set coverage: a fixed-size bitmap with one bit per
// "subsystem:op" identity, set on every recorded event while coverage
// collection is enabled. This is the kcov-shaped signal a fuzzing
// campaign feeds on — "did this input make the kernel do something it
// had not done before?" — landed in ktrace because the ring already
// sees every event. The bitmap is a pure value type with set/merge/
// count, so a fuzzer can keep a cumulative map and diff per-input
// maps against it without coordination.

// CoverBits is the bitmap width. Identities are hashed into it, so
// distinct tracepoints can collide; at ~40 declared tracepoints over
// 4096 bits collisions are vanishingly unlikely, and a collision only
// under-reports novelty (safe direction for a fuzzer).
const CoverBits = 4096

// CoverBitmap is a fixed-size coverage bitmap. The zero value is
// empty and ready to use.
type CoverBitmap [CoverBits / 64]uint64

// CoverIndex maps a "subsystem:op" identity to its bitmap bit.
func CoverIndex(name string) uint32 {
	return uint32(fnv1a(name) % CoverBits)
}

// Set marks one bit.
func (b *CoverBitmap) Set(idx uint32) {
	idx %= CoverBits
	b[idx/64] |= 1 << (idx % 64)
}

// Has reports whether a bit is set.
func (b *CoverBitmap) Has(idx uint32) bool {
	idx %= CoverBits
	return b[idx/64]&(1<<(idx%64)) != 0
}

// Merge ORs another bitmap into this one.
func (b *CoverBitmap) Merge(o *CoverBitmap) {
	for i := range b {
		b[i] |= o[i]
	}
}

// NewBits counts the bits set in o that this bitmap does not have —
// the novelty signal, without mutating either side.
func (b *CoverBitmap) NewBits(o *CoverBitmap) int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(o[i] &^ b[i])
	}
	return n
}

// Count returns the number of set bits.
func (b *CoverBitmap) Count() int {
	n := 0
	for i := range b {
		n += bits.OnesCount64(b[i])
	}
	return n
}

// The global collector: emit marks a bit here when coverage is on.
// Word-atomic with a read-before-CAS fast path, so the steady state
// (bit already set) is one load.
var (
	coverOn    atomic.Bool
	coverWords [CoverBits / 64]atomic.Uint64
)

func coverMark(idx uint32) {
	w := &coverWords[(idx%CoverBits)/64]
	bit := uint64(1) << (idx % 64)
	for {
		cur := w.Load()
		if cur&bit != 0 {
			return
		}
		if w.CompareAndSwap(cur, cur|bit) {
			return
		}
	}
}

// EnableCoverage starts marking the global bitmap on every recorded
// event (the tracepoint must still be enabled for its events to
// record). Pair with DisableCoverage.
func EnableCoverage() { coverOn.Store(true) }

// DisableCoverage stops collection; the bitmap keeps its bits.
func DisableCoverage() { coverOn.Store(false) }

// CoverageOn reports whether collection is enabled.
func CoverageOn() bool { return coverOn.Load() }

// ResetCoverage clears the global bitmap.
func ResetCoverage() {
	for i := range coverWords {
		coverWords[i].Store(0)
	}
}

// CoverageSnapshot copies the global bitmap into a value the caller
// owns.
func CoverageSnapshot() CoverBitmap {
	var b CoverBitmap
	for i := range coverWords {
		b[i] = coverWords[i].Load()
	}
	return b
}
