package ktrace

import (
	"math/rand"
	"sync"
	"testing"
)

// TestBucketMath checks the log-linear mapping invariants across the
// value range: small values are exact, every value lands in a bucket
// whose upper bound is >= the value, indices are monotonic, and the
// relative rounding error is bounded by the sub-bucket width (~1/32).
func TestBucketMath(t *testing.T) {
	for v := uint64(0); v < histSubCount; v++ {
		idx := bucketIdx(v)
		if got := bucketMax(idx); got != v {
			t.Fatalf("small value %d: bucketMax = %d, want exact", v, got)
		}
	}
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 10, 1<<10 + 7,
		1 << 20, 1 << 32, 1<<40 + 12345, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		idx := bucketIdx(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("value %d: bucket %d out of range [0,%d)", v, idx, histBuckets)
		}
		if idx < prev {
			t.Fatalf("value %d: bucket %d below previous %d (not monotonic)", v, idx, prev)
		}
		prev = idx
		ub := bucketMax(idx)
		if ub < v {
			t.Fatalf("value %d: bucketMax %d below the value", v, ub)
		}
		if v >= histSubCount && ub-v > v/histSubCount+1 {
			t.Fatalf("value %d: bucketMax %d overshoots by %d (> ~1/%d relative)",
				v, ub, ub-v, histSubCount)
		}
	}
	// Dense sweep: round-tripping stays within one sub-bucket.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		ub := bucketMax(bucketIdx(v))
		if ub < v {
			t.Fatalf("value %d: bucketMax %d below the value", v, ub)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	view := h.View()
	if view.Count != 1000 {
		t.Fatalf("count = %d, want 1000", view.Count)
	}
	if view.Sum != 500500 {
		t.Fatalf("sum = %d, want 500500", view.Sum)
	}
	if view.Max != 1000 {
		t.Fatalf("max = %d, want 1000", view.Max)
	}
	// Uniform 1..1000: each quantile must land within the bucketing's
	// ~3% relative error of the exact value.
	checks := []struct {
		got, want uint64
	}{
		{view.P50, 500}, {view.P90, 900}, {view.P99, 990}, {view.P999, 999},
	}
	for _, c := range checks {
		lo, hi := c.want-c.want/16, c.want+c.want/16
		if c.got < lo || c.got > hi {
			t.Fatalf("quantile = %d, want within [%d,%d] of %d", c.got, lo, hi, c.want)
		}
	}
	if view.P50 > view.P90 || view.P90 > view.P99 || view.P99 > view.P999 || view.P999 > view.Max {
		t.Fatalf("quantiles not monotonic: %+v", view)
	}
}

func TestHistQuantileEdges(t *testing.T) {
	h := NewHistogram()
	if v := h.View(); v.Count != 0 || v.P50 != 0 || v.Max != 0 {
		t.Fatalf("empty histogram view not zero: %+v", v)
	}
	h.Record(42)
	v := h.View()
	if v.P50 != 42 || v.P999 != 42 || v.Max != 42 {
		t.Fatalf("single-sample quantiles must clamp to the sample: %+v", v)
	}
	h.Reset()
	if v := h.View(); v.Count != 0 {
		t.Fatalf("Reset left %d samples", v.Count)
	}
}

func TestHistQuantileOfSnapsToExported(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v <= 100; v++ {
		h.Record(v)
	}
	view := h.View()
	if got := view.QuantileOf(0.5); got != view.P50 {
		t.Fatalf("QuantileOf(0.5) = %d, want P50 %d", got, view.P50)
	}
	if got := view.QuantileOf(0.97); got != view.P99 {
		t.Fatalf("QuantileOf(0.97) = %d, want snap to P99 %d", got, view.P99)
	}
	if got := view.QuantileOf(0.9); got != view.P90 {
		t.Fatalf("QuantileOf(0.9) = %d, want P90 %d", got, view.P90)
	}
}

// TestHistConcurrentRecord hammers one histogram from many goroutines;
// under -race this is the wait-free recording proof, and the merged
// totals must be exact (recording never drops a sample).
func TestHistConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const perG = 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(uint64(g*perG + i))
			}
		}(g)
	}
	// Concurrent readers exercise snapshot-during-record.
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.View()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rd.Wait()

	view := h.View()
	if view.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d (samples lost)", view.Count, goroutines*perG)
	}
	const n = uint64(goroutines * perG)
	if wantSum := n * (n - 1) / 2; view.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", view.Sum, wantSum)
	}
	if view.Max != n-1 {
		t.Fatalf("max = %d, want %d", view.Max, n-1)
	}
}
