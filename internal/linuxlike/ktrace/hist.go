package ktrace

import (
	"math/bits"
	"sync/atomic"
)

// Log-linear (HDR-style) latency histograms.
//
// The bucketing scheme is the hdrhistogram/ftrace "log-linear" split:
// each power-of-two range [2^e, 2^(e+1)) is divided into
// histSubCount linear sub-buckets, so relative error is bounded at
// 1/histSubCount (~3%) across the whole 64-bit range while the
// bucket index is three ALU ops — no floating point, no search:
//
//	v < 32:  idx = v                      (exact small values)
//	v >= 32: e = floor(log2 v)            (bits.Len64)
//	         idx = (e-5)*32 + (v >> (e-5))
//
// Recording is wait-free: one counter fetch-add plus count/sum adds
// and a CAS-loop max, all on per-shard atomics. Shards decorrelate
// concurrent recorders (picked from the sample's own bits — no
// goroutine id, no unsafe); readers merge shards at snapshot time.

const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 linear sub-buckets per octave
	// histBuckets covers the full uint64 range: 32 exact buckets for
	// v < 32, then 32 per octave for e in [5, 63].
	histBuckets = (64 - histSubBits + 1) * histSubCount

	histShards = 4
)

// bucketIdx maps a sample to its bucket.
func bucketIdx(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	shift := uint(bits.Len64(v) - 1 - histSubBits)
	return int(shift)*histSubCount + int(v>>shift)
}

// bucketMax returns the largest value a bucket holds (the value a
// quantile reports, clamped to the observed max).
func bucketMax(idx int) uint64 {
	if idx < 2*histSubCount {
		return uint64(idx)
	}
	shift := uint(idx/histSubCount - 1)
	m := uint64(idx) - uint64(shift)*histSubCount
	return (m+1)<<shift - 1
}

type histShard struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Histogram is a lock-free, sharded, log-linear histogram. The zero
// value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	shards [histShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	sh := &h.shards[(v^(v>>histSubBits))&(histShards-1)]
	sh.count.Add(1)
	sh.sum.Add(v)
	for {
		cur := sh.max.Load()
		if v <= cur || sh.max.CompareAndSwap(cur, v) {
			break
		}
	}
	sh.buckets[bucketIdx(v)].Add(1)
}

// Reset zeroes the histogram. Concurrent Records may survive it.
func (h *Histogram) Reset() {
	for i := range h.shards {
		sh := &h.shards[i]
		sh.count.Store(0)
		sh.sum.Store(0)
		sh.max.Store(0)
		for j := range sh.buckets {
			sh.buckets[j].Store(0)
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram, merged across
// shards. Quantiles are computed against the copy, so one snapshot
// yields a consistent set of percentiles.
type HistSnapshot struct {
	Count uint64
	Sum   uint64
	Max   uint64

	buckets [histBuckets]uint64
}

// Snapshot merges the shards into a consistent-enough copy (samples
// recorded mid-snapshot may or may not be included).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
		for j := range sh.buckets {
			s.buckets[j] += sh.buckets[j].Load()
		}
	}
	return s
}

// Quantile returns the value at quantile q in [0, 1] (upper bucket
// bound, clamped to the observed max), or 0 for an empty histogram.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum uint64
	for i := range s.buckets {
		cum += s.buckets[i]
		if cum >= target {
			ub := bucketMax(i)
			if ub > s.Max {
				ub = s.Max
			}
			return ub
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded samples.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HistView is the fixed percentile export of a histogram — the shape
// the metrics registry renders and Quantile lookups read.
type HistView struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
}

// View snapshots the histogram into its percentile export.
func (h *Histogram) View() HistView {
	s := h.Snapshot()
	return s.View()
}

// View computes the fixed percentile export from a snapshot.
func (s *HistSnapshot) View() HistView {
	return HistView{
		Count: s.Count, Sum: s.Sum, Max: s.Max,
		P50: s.Quantile(0.50), P90: s.Quantile(0.90),
		P99: s.Quantile(0.99), P999: s.Quantile(0.999),
	}
}

// QuantileOf returns the named percentile from a view (q in [0,1];
// snapped to the nearest exported percentile at or above q).
func (v *HistView) QuantileOf(q float64) uint64 {
	switch {
	case q <= 0.50:
		return v.P50
	case q <= 0.90:
		return v.P90
	case q <= 0.99:
		return v.P99
	case q <= 0.999:
		return v.P999
	default:
		return v.Max
	}
}
