package ktrace

import (
	"strings"
	"testing"

	"safelinux/internal/linuxlike/kbase"
)

// latencyPlane arms the full latency plane for one test: private
// ring, histograms + spans on, sampling off, everything restored on
// cleanup.
func latencyPlane(t *testing.T, perShard int) *Ring {
	t.Helper()
	r := testRing(t, perShard)
	prevShift := SetSampleShift(0)
	SetHistograms(true)
	SetSpans(true)
	t.Cleanup(func() {
		SetSpans(false)
		SetHistograms(false)
		SetSampleShift(prevShift)
	})
	return r
}

func TestSpanParentChild(t *testing.T) {
	r := latencyPlane(t, 64)
	opA := NewOp("spantest:outer")
	opB := NewOp("spantest:inner")
	task := kbase.NewTask()

	tA := opA.Begin(task)
	if !tA.Active() {
		t.Fatal("root timer inactive with the plane armed and sampling off")
	}
	trace, span := task.SpanCtx()
	if trace != tA.TraceID() || span == 0 {
		t.Fatalf("task ctx (%d,%d) does not carry the root span (trace %d)", trace, span, tA.TraceID())
	}
	tB := opB.Begin(task)
	if tB.TraceID() != tA.TraceID() {
		t.Fatalf("child trace %d != parent trace %d", tB.TraceID(), tA.TraceID())
	}
	tB.End()
	if trace, span = task.SpanCtx(); trace != tA.TraceID() {
		t.Fatalf("child End did not restore the parent ctx (trace now %d)", trace)
	}
	tA.End()
	if trace, span = task.SpanCtx(); trace != 0 || span != 0 {
		t.Fatalf("root End left ctx (%d,%d), want cleared", trace, span)
	}

	tree := SpanTree(r.Snapshot(), tA.TraceID())
	if len(tree) != 2 {
		t.Fatalf("span tree has %d lines, want 2: %q", len(tree), tree)
	}
	if !strings.HasPrefix(tree[0], "spantest:outer ") {
		t.Fatalf("root line = %q, want spantest:outer unindented", tree[0])
	}
	if !strings.HasPrefix(tree[1], "  spantest:inner ") {
		t.Fatalf("child line = %q, want spantest:inner indented under the root", tree[1])
	}

	if c := opA.Hist().View().Count; c == 0 {
		t.Fatal("histogram plane recorded nothing for the root op")
	}
}

func TestSpanInFlightRendering(t *testing.T) {
	r := latencyPlane(t, 64)
	op := NewOp("spantest:hang")
	task := kbase.NewTask()
	tm := op.Begin(task)
	tree := SpanTree(r.Snapshot(), tm.TraceID())
	if len(tree) != 1 || !strings.Contains(tree[0], "(in flight)") {
		t.Fatalf("unfinished span renders %q, want (in flight)", tree)
	}
	tm.End()
}

func TestRootSampling(t *testing.T) {
	testRing(t, 64)
	SetHistograms(true)
	prevShift := SetSampleShift(3) // 1 in 8
	t.Cleanup(func() {
		SetHistograms(false)
		SetSampleShift(prevShift)
	})
	op := NewOp("spantest:sampled")
	active := 0
	for i := 0; i < 80; i++ {
		tm := op.Begin(nil)
		if tm.Active() {
			active++
		}
		tm.End()
	}
	// The sampler is a shared counter, so any 80 consecutive rolls at
	// shift 3 hit exactly 10 times wherever the counter started.
	if active != 10 {
		t.Fatalf("%d of 80 roots sampled at shift 3, want exactly 10", active)
	}
}

func TestChildBypassesSampling(t *testing.T) {
	testRing(t, 64)
	SetHistograms(true)
	SetSpans(true)
	prevShift := SetSampleShift(20) // roots ~never sampled
	t.Cleanup(func() {
		SetSpans(false)
		SetHistograms(false)
		SetSampleShift(prevShift)
	})
	task := kbase.NewTask()
	task.SetSpanCtx(777, 42)
	op := NewOp("spantest:child")
	tm := op.Begin(task)
	if !tm.Active() {
		t.Fatal("child inside a live trace was sampled out — trees must stay complete")
	}
	if tm.TraceID() != 777 {
		t.Fatalf("child trace = %d, want inherited 777", tm.TraceID())
	}
	tm.End()
	if trace, span := task.SpanCtx(); trace != 777 || span != 42 {
		t.Fatalf("End restored ctx (%d,%d), want (777,42)", trace, span)
	}
	task.SetSpanCtx(0, 0)
}

// TestSlowOpWatchdog proves the acceptance-criteria behavior: a root
// op over the threshold auto-dumps its span tree, naming every
// subsystem the op crossed.
func TestSlowOpWatchdog(t *testing.T) {
	latencyPlane(t, 64)
	prevTh := SetSlowOpThreshold(1) // every root is slow
	t.Cleanup(func() {
		SetSlowOpThreshold(prevTh)
		SetSlowOpHook(nil)
		ResetSlowOp()
	})
	ResetSlowOp()

	var hooked []SlowOp
	SetSlowOpHook(func(s SlowOp) { hooked = append(hooked, s) })

	opRoot := NewOp("wdtest:root")
	opMid := NewOp("wdtestmid:commit")
	opLeaf := NewOp("wdtestleaf:fill")
	task := kbase.NewTask()

	tR := opRoot.Begin(task)
	tM := opMid.Begin(task)
	tL := opLeaf.Begin(task)
	tL.End()
	tM.End()
	tR.End()

	slow := LastSlowOp()
	if slow == nil {
		t.Fatal("watchdog captured nothing")
	}
	if slow.Op != "wdtest:root" {
		t.Fatalf("captured op %q, want the root", slow.Op)
	}
	if slow.TraceID != tR.TraceID() {
		t.Fatalf("captured trace %d, want %d", slow.TraceID, tR.TraceID())
	}
	joined := strings.Join(slow.Tree, "\n")
	for _, want := range []string{"wdtest:root", "wdtestmid:commit", "wdtestleaf:fill"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("span tree dump missing %q:\n%s", want, joined)
		}
	}
	if len(slow.Tree) != 3 {
		t.Fatalf("tree has %d lines, want 3:\n%s", len(slow.Tree), joined)
	}
	if len(hooked) != 1 {
		t.Fatalf("hook fired %d times, want once (only the root trips it)", len(hooked))
	}
	if SpansSlowCount() == 0 {
		t.Fatal("spans.slow counter did not move")
	}
}

// TestNestedOpNotSlow: a child over the threshold must not fire the
// watchdog — only roots do, so one slow syscall produces one dump.
func TestChildDoesNotFireWatchdog(t *testing.T) {
	latencyPlane(t, 64)
	prevTh := SetSlowOpThreshold(1)
	t.Cleanup(func() {
		SetSlowOpThreshold(prevTh)
		ResetSlowOp()
	})
	ResetSlowOp()

	opRoot := NewOp("wdtest2:root")
	opChild := NewOp("wdtest2:child")
	task := kbase.NewTask()
	tR := opRoot.Begin(task)
	tC := opChild.Begin(task)
	tC.End()
	if got := LastSlowOp(); got != nil {
		t.Fatalf("child End fired the watchdog: %+v", got)
	}
	tR.End()
	if got := LastSlowOp(); got == nil || got.Op != "wdtest2:root" {
		t.Fatalf("root End should have fired the watchdog, got %+v", got)
	}
}

func TestOpRegistry(t *testing.T) {
	op := NewOp("optest:alpha")
	if again := NewOp("optest:alpha"); again != op {
		t.Fatal("NewOp is not idempotent per name")
	}
	if op.Subsystem() != "optest" || op.Short() != "alpha" {
		t.Fatalf("split = (%q,%q), want (optest,alpha)", op.Subsystem(), op.Short())
	}
	if OpByID(op.ID()) != op {
		t.Fatal("OpByID round trip failed")
	}
	if OpByName("optest:alpha") != op {
		t.Fatal("OpByName round trip failed")
	}
}
