// Package journal implements a jbd2-like physical block write-ahead
// journal for the simulated kernel: running transactions with
// handles, write-access tracking on buffer heads, commit records with
// checksums, revoke records, checkpointing, and crash recovery by
// replay.
//
// The on-journal format (one journal block = one device block):
//
//	block 0:        superblock  {magic, seq of oldest live txn, tail ptr}
//	descriptor:     {magic, kind=desc,   seq, count, tags[count]{home}}
//	data blocks:    count raw blocks following the descriptor
//	revoke:         {magic, kind=revoke, seq, count, homes[count]}
//	commit:         {magic, kind=commit, seq, checksum}
//
// A transaction is durable iff its commit block is present with a
// matching checksum — exactly jbd2's commit criterion; recovery
// replays committed transactions in sequence order and stops at the
// first gap, honoring revoke records.
//
// Buffers join a transaction through the bufcache.MetaRef capability
// (only the cache can mint one), and the journal's per-buffer state
// rides in the typed JournalSeq breadcrumb rather than a void*-style
// any field — the audited replacements for jbd2's b_private idiom.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"safelinux/internal/linuxlike/bufcache"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/kio"
	"safelinux/internal/linuxlike/ktrace"
	"safelinux/internal/safety/own"
)

// Tracepoints (args documented in DESIGN.md's catalog).
var (
	tpBegin      = ktrace.New("journal:begin")      // a0=txn seq
	tpCommit     = ktrace.New("journal:commit")     // a0=txn seq, a1=blocks logged, a2=errno
	tpCheckpoint = ktrace.New("journal:checkpoint") // a0=new tail seq
)

// Latency-plane ops (exported as journal.commit_ns and
// journal.checkpoint_ns histograms; span children of the caller's
// trace).
var (
	opCommit     = ktrace.NewOp("journal:commit")
	opCheckpoint = ktrace.NewOp("journal:checkpoint")
)

// Block kinds within the journal area.
const (
	magic       = 0x6A424432 // "jBD2"
	kindSuper   = 1
	kindDesc    = 2
	kindCommit  = 3
	kindRevoke  = 4
	headerBytes = 16 // magic(4) kind(4) seq(8)
)

// Journal manages a contiguous journal region of the block device
// underlying cache.
type Journal struct {
	cache  *bufcache.Cache
	start  uint64      // first journal block (superblock)
	size   uint64      // journal region length in blocks
	engine *kio.Engine // nil = synchronous commit path

	mu       sync.Mutex
	cond     *sync.Cond // signaled on handle drain and gate release
	seq      uint64     // next transaction sequence number
	tailSeq  uint64     // oldest not-yet-checkpointed sequence
	writePos uint64     // next free journal block (offset within region)
	running  *Tx
	revoked  map[uint64]uint64 // home block -> seq at which revoked

	// gate is the commit/checkpoint barrier: while set, Begin blocks,
	// so no new handle can mutate a buffer whose data is being written
	// to the journal or synced by a checkpoint. gateSeq is the
	// sequence being committed (0 for a checkpoint gate); lastDoneSeq
	// and lastErr publish the outcome of the last finished commit so
	// that concurrent Commit callers — whose updates rode in that
	// transaction — can return its result (group commit).
	gate        bool
	gateSeq     uint64
	lastDoneSeq uint64
	lastErr     kbase.Errno

	stats Stats
}

// Stats counts journal activity.
type Stats struct {
	Commits      uint64
	BlocksLogged uint64
	Checkpoints  uint64
	Replayed     uint64
	Revokes      uint64
}

// Tx is a running transaction.
type Tx struct {
	j       *Journal
	seq     uint64
	buffers []*bufcache.BufferHead
	inTx    map[uint64]bool // home blocks already joined
	revokes []uint64
	handles int
	closed  bool
}

// Handle is a file-system-side reference to the running transaction
// (journal_start/journal_stop).
type Handle struct {
	tx   *Tx
	done bool
}

// New creates a journal over blocks [start, start+size) of cache's
// device. size must be at least 4 blocks.
func New(cache *bufcache.Cache, start, size uint64) *Journal {
	if size < 4 {
		panic("journal: region too small")
	}
	j := &Journal{
		cache:   cache,
		start:   start,
		size:    size,
		seq:     1,
		tailSeq: 1,
		revoked: make(map[uint64]uint64),
		lastErr: kbase.EOK,
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Stats returns a snapshot of journal counters. It is the legacy shim
// over the same counters CollectMetrics registers on the unified
// metrics plane.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// CollectMetrics enumerates the journal counters for the ktrace
// metrics registry (register with m.Register("journal", j.CollectMetrics)).
func (j *Journal) CollectMetrics(emit func(name string, value uint64)) {
	st := j.Stats()
	emit("commits", st.Commits)
	emit("blocks_logged", st.BlocksLogged)
	emit("checkpoints", st.Checkpoints)
	emit("replayed", st.Replayed)
	emit("revokes", st.Revokes)
}

// SetEngine switches Commit to the overlapped async path: log-block
// writes are submitted to the kio engine incrementally while the
// descriptor and checksum are still being built, and Commit blocks
// only on the two barriers the jbd2 protocol requires (body before
// commit record, commit record before returning). The engine must
// drive the same device the journal's cache does. Pass nil to restore
// the synchronous path.
func (j *Journal) SetEngine(e *kio.Engine) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.engine = e
}

// Format initializes the journal superblock on disk.
func (j *Journal) Format() kbase.Errno {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq, j.tailSeq, j.writePos = 1, 1, 1
	return j.writeSuperLocked()
}

func (j *Journal) writeSuperLocked() kbase.Errno {
	bs := j.cache.Device().BlockSize()
	buf := make([]byte, bs)
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], kindSuper)
	binary.LittleEndian.PutUint64(buf[8:], j.tailSeq)
	if err := j.cache.Device().Write(j.start, buf); err != kbase.EOK {
		return err
	}
	return j.cache.Device().Flush()
}

// Begin opens a handle on the running transaction, creating one if
// needed (journal_start). While a commit or checkpoint is in flight
// Begin blocks, so a new handle can never mutate buffer data that the
// journal is concurrently writing out — the jbd2 analogue of starting
// the next transaction only once the previous one is locked down.
func (j *Journal) Begin() *Handle {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.gate {
		j.cond.Wait()
	}
	if j.running == nil {
		j.running = &Tx{j: j, seq: j.seq, inTx: make(map[uint64]bool)}
		j.seq++
	}
	j.running.handles++
	tpBegin.Emit(0, j.running.seq, 0)
	return &Handle{tx: j.running}
}

// GetWriteAccess declares intent to modify the referenced buffer
// under this handle (jbd2_journal_get_write_access). The buffer joins
// the transaction. Taking a bufcache.MetaRef instead of the raw
// *BufferHead keeps the shared struct from crossing the package
// boundary: only the cache can mint the capability.
func (h *Handle) GetWriteAccess(ref bufcache.MetaRef) kbase.Errno {
	if h.done {
		kbase.Oops(kbase.OopsUseAfterFree, "journal", "write access on closed handle")
		return kbase.EINVAL
	}
	if !ref.Valid() {
		kbase.Oops(kbase.OopsSemantic, "journal", "write access with nil buffer capability")
		return kbase.EINVAL
	}
	bh := ref.Head()
	tx := h.tx
	tx.j.mu.Lock()
	defer tx.j.mu.Unlock()
	if tx.closed {
		return kbase.EBUSY
	}
	if !tx.inTx[bh.Block] {
		tx.inTx[bh.Block] = true
		tx.buffers = append(tx.buffers, bh)
		bh.SetJournalSeq(tx.seq) // typed b_private-style breadcrumb
	}
	return kbase.EOK
}

// DirtyMetadata marks the referenced buffer as journal-dirty metadata
// (jbd2_journal_dirty_metadata). The buffer must have joined the
// transaction first; violating that protocol is a semantic oops, as
// jbd2 would J_ASSERT.
func (h *Handle) DirtyMetadata(ref bufcache.MetaRef) kbase.Errno {
	if !ref.Valid() {
		kbase.Oops(kbase.OopsSemantic, "journal", "dirty_metadata with nil buffer capability")
		return kbase.EINVAL
	}
	bh := ref.Head()
	tx := h.tx
	tx.j.mu.Lock()
	joined := tx.inTx[bh.Block]
	tx.j.mu.Unlock()
	if !joined {
		kbase.Oops(kbase.OopsSemantic, "journal",
			"dirty_metadata on block %d without write access", bh.Block)
		return kbase.EINVAL
	}
	bh.SetFlag(bufcache.BHMeta)
	bh.MarkDirty()
	return kbase.EOK
}

// Revoke records that home block must not be replayed by any earlier
// transaction's log entries (jbd2_journal_revoke) — used when a
// metadata block is freed and may be reused for data.
func (h *Handle) Revoke(home uint64) kbase.Errno {
	tx := h.tx
	tx.j.mu.Lock()
	defer tx.j.mu.Unlock()
	if tx.closed {
		return kbase.EBUSY
	}
	tx.revokes = append(tx.revokes, home)
	tx.j.stats.Revokes++
	return kbase.EOK
}

// Stop closes the handle (journal_stop). The transaction commits when
// Commit is called on the journal.
func (h *Handle) Stop() {
	if h.done {
		return
	}
	h.done = true
	j := h.tx.j
	j.mu.Lock()
	h.tx.handles--
	if h.tx.handles == 0 {
		j.cond.Broadcast() // wake committers waiting for the drain
	}
	j.mu.Unlock()
}

// Commit force-commits the running transaction synchronously
// (jbd2_journal_force_commit): write descriptor+data+revoke blocks,
// flush, write commit block, flush again, then write the home
// locations through the buffer cache (without flushing them — that is
// Checkpoint's job).
//
// Under concurrency this is a blocking group commit: if other tasks
// still hold open handles on the transaction, Commit waits for them
// to Stop (their updates then ride in this commit); if another task
// is already committing the transaction our updates are in, Commit
// waits for that commit and returns its outcome.
func (j *Journal) Commit() kbase.Errno { return j.CommitCtx(nil) }

// CommitCtx is Commit with task context for the latency plane: the
// whole group commit — including any wait for the in-flight round —
// is timed into the journal:commit histogram and spanned as a child
// of the caller's trace.
func (j *Journal) CommitCtx(task *kbase.Task) kbase.Errno {
	t := opCommit.Begin(task)
	defer t.End()
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.gate {
			// A commit or checkpoint is in flight. Our caller's
			// updates, if any, are in that transaction or an earlier
			// one (Begin blocks while gated, so nothing newer can
			// exist yet). Wait for the round and report its result.
			seq := j.gateSeq
			for j.gate && j.gateSeq == seq {
				j.cond.Wait()
			}
			if seq != 0 && j.lastDoneSeq == seq {
				return j.lastErr
			}
			continue // checkpoint gate, or tx reinstated on ENOSPC
		}
		tx := j.running
		if tx == nil {
			return kbase.EOK // nothing to commit
		}
		// Become the committer: raise the gate (no new Begins), then
		// wait for live handles to drain.
		j.gate = true
		j.gateSeq = tx.seq
		for tx.handles > 0 {
			j.cond.Wait()
		}
		return j.commitGatedLocked(task, tx)
	}
}

// commitGatedLocked writes tx out. Caller holds j.mu and the gate;
// tx has no open handles. The gate is released before returning.
func (j *Journal) commitGatedLocked(task *kbase.Task, tx *Tx) kbase.Errno {
	finish := func(err kbase.Errno) kbase.Errno {
		j.lastDoneSeq = tx.seq
		j.lastErr = err
		j.gate = false
		j.cond.Broadcast()
		tpCommit.Emit4(0, tx.seq, uint64(len(tx.buffers)), uint64(err), 0)
		return err
	}
	tx.closed = true
	j.running = nil

	dev := j.cache.Device()
	bs := dev.BlockSize()
	// Needed journal blocks: descriptor + data + optional revoke + commit.
	needed := uint64(1 + len(tx.buffers) + 1)
	if len(tx.revokes) > 0 {
		needed++
	}
	if j.writePos+needed > j.size {
		// Out of journal space; require a checkpoint first. A real
		// jbd2 would block; we surface ENOSPC and the caller
		// checkpoints. Reinstate the transaction.
		tx.closed = false
		j.running = tx
		j.gate = false
		j.cond.Broadcast()
		return kbase.ENOSPC
	}

	pos := j.start + j.writePos
	if j.engine != nil {
		return j.commitAsyncLocked(task, tx, finish, pos)
	}
	crc := crc32.NewIEEE()

	// Descriptor.
	desc := make([]byte, bs)
	binary.LittleEndian.PutUint32(desc[0:], magic)
	binary.LittleEndian.PutUint32(desc[4:], kindDesc)
	binary.LittleEndian.PutUint64(desc[8:], tx.seq)
	binary.LittleEndian.PutUint32(desc[16:], uint32(len(tx.buffers)))
	for i, bh := range tx.buffers {
		binary.LittleEndian.PutUint64(desc[20+8*i:], bh.Block)
	}
	if err := dev.Write(pos, desc); err != kbase.EOK {
		return finish(err)
	}
	pos++
	// Data blocks.
	for _, bh := range tx.buffers {
		if err := dev.Write(pos, bh.Data); err != kbase.EOK {
			return finish(err)
		}
		crc.Write(bh.Data)
		pos++
		j.stats.BlocksLogged++
	}
	// Revoke block.
	if len(tx.revokes) > 0 {
		rev := make([]byte, bs)
		binary.LittleEndian.PutUint32(rev[0:], magic)
		binary.LittleEndian.PutUint32(rev[4:], kindRevoke)
		binary.LittleEndian.PutUint64(rev[8:], tx.seq)
		binary.LittleEndian.PutUint32(rev[16:], uint32(len(tx.revokes)))
		for i, home := range tx.revokes {
			binary.LittleEndian.PutUint64(rev[20+8*i:], home)
		}
		if err := dev.Write(pos, rev); err != kbase.EOK {
			return finish(err)
		}
		pos++
	}
	// Barrier: journal body durable before commit record.
	if err := dev.Flush(); err != kbase.EOK {
		return finish(err)
	}
	// Commit record.
	com := make([]byte, bs)
	binary.LittleEndian.PutUint32(com[0:], magic)
	binary.LittleEndian.PutUint32(com[4:], kindCommit)
	binary.LittleEndian.PutUint64(com[8:], tx.seq)
	binary.LittleEndian.PutUint32(com[16:], crc.Sum32())
	if err := dev.Write(pos, com); err != kbase.EOK {
		return finish(err)
	}
	pos++
	if err := dev.Flush(); err != kbase.EOK {
		return finish(err)
	}
	return j.finishCommitLocked(tx, finish, pos)
}

// finishCommitLocked records the committed transaction's bookkeeping
// and writes the home locations through the cache. Caller holds j.mu
// and the gate; the journal image through endPos is durable.
func (j *Journal) finishCommitLocked(tx *Tx, finish func(kbase.Errno) kbase.Errno, endPos uint64) kbase.Errno {
	j.writePos = endPos - j.start
	for _, home := range tx.revokes {
		j.revoked[home] = tx.seq
	}
	j.stats.Commits++
	buffers := tx.buffers

	// Home writes: through the cache, unflushed. A crash between here
	// and Checkpoint is exactly what recovery must repair. j.mu is
	// dropped (WriteBuffer takes cache locks) but the gate stays up,
	// so no new handle can mutate these buffers mid-write.
	j.mu.Unlock()
	var homeErr kbase.Errno = kbase.EOK
	for _, bh := range buffers {
		bh.ClearJournalSeq()
		if err := j.cache.WriteBuffer(bh); err != kbase.EOK {
			homeErr = err
			break
		}
	}
	j.mu.Lock()
	return finish(homeErr)
}

// commitAsyncLocked is the overlapped commit path (engine set): the
// transaction's data blocks are submitted to the kio engine one by one
// — the engine's workers write them out while this goroutine is still
// checksumming the next buffer and building the descriptor — then a
// single barrier SQE stands in for the body flush. Only the commit
// record keeps a strict dependency: it is submitted after the body
// barrier completes and followed by its own barrier, preserving
// exactly the jbd2 ordering (body durable before commit record, commit
// record durable before Commit returns). Caller holds j.mu and the
// gate; the gate is what lets the engine read bh.Data without a copy
// racing anything — no handle can mutate a committing buffer.
func (j *Journal) commitAsyncLocked(task *kbase.Task, tx *Tx, finish func(kbase.Errno) kbase.Errno, pos uint64) kbase.Errno {
	bt := kio.OpBatch.Begin(task)
	defer bt.End()
	bs := j.cache.Device().BlockSize()
	crc := crc32.NewIEEE()

	// drain joins a batch and returns its first error, freeing the
	// replacement pages ownership-move completions hand back (the
	// ticket holder owns them; the journal has no use for the blanks).
	drain := func(b *kio.Batch) kbase.Errno {
		first := kbase.EOK
		for _, cqe := range b.Submit().Wait() {
			if cqe.Page.Valid() {
				cqe.Page.Free()
			}
			if cqe.Err != kbase.EOK && first == kbase.EOK {
				first = cqe.Err
			}
		}
		return first
	}

	body := j.engine.NewBatch()
	dataPos := pos + 1
	for i, bh := range tx.buffers {
		if err := body.Write(dataPos+uint64(i), bh.Data, uint64(i)); err != kbase.EOK {
			body.Barrier(0)
			drain(body)
			return finish(err)
		}
		// Incremental dispatch: the engine starts on this block while
		// the loop checksums it and moves to the next.
		body.Submit()
		crc.Write(bh.Data)
		j.stats.BlocksLogged++
	}
	next := dataPos + uint64(len(tx.buffers))

	// Descriptor and revoke blocks are journal-owned buffers never
	// touched again after submit: move them into the engine (§4.3
	// zero-copy submission) instead of copying.
	desc := make([]byte, bs)
	binary.LittleEndian.PutUint32(desc[0:], magic)
	binary.LittleEndian.PutUint32(desc[4:], kindDesc)
	binary.LittleEndian.PutUint64(desc[8:], tx.seq)
	binary.LittleEndian.PutUint32(desc[16:], uint32(len(tx.buffers)))
	for i, bh := range tx.buffers {
		binary.LittleEndian.PutUint64(desc[20+8*i:], bh.Block)
	}
	if err := body.WriteOwned(pos, own.New(nil, "journal:desc", desc), 0); err != kbase.EOK {
		body.Barrier(0)
		drain(body)
		return finish(err)
	}
	if len(tx.revokes) > 0 {
		rev := make([]byte, bs)
		binary.LittleEndian.PutUint32(rev[0:], magic)
		binary.LittleEndian.PutUint32(rev[4:], kindRevoke)
		binary.LittleEndian.PutUint64(rev[8:], tx.seq)
		binary.LittleEndian.PutUint32(rev[16:], uint32(len(tx.revokes)))
		for i, home := range tx.revokes {
			binary.LittleEndian.PutUint64(rev[20+8*i:], home)
		}
		if err := body.WriteOwned(next, own.New(nil, "journal:revoke", rev), 0); err != kbase.EOK {
			body.Barrier(0)
			drain(body)
			return finish(err)
		}
		next++
	}
	// Barrier: journal body durable before the commit record. drain
	// reports the first failed submission in submit order.
	body.Barrier(0)
	if err := drain(body); err != kbase.EOK {
		return finish(err)
	}

	// Commit record, with its own completion dependency.
	com := make([]byte, bs)
	binary.LittleEndian.PutUint32(com[0:], magic)
	binary.LittleEndian.PutUint32(com[4:], kindCommit)
	binary.LittleEndian.PutUint64(com[8:], tx.seq)
	binary.LittleEndian.PutUint32(com[16:], crc.Sum32())
	record := j.engine.NewBatch()
	if err := record.WriteOwned(next, own.New(nil, "journal:commit", com), 0); err != kbase.EOK {
		return finish(err)
	}
	next++
	record.Barrier(0)
	if err := drain(record); err != kbase.EOK {
		return finish(err)
	}
	return j.finishCommitLocked(tx, finish, next)
}

// Checkpoint makes all home locations durable and resets the journal
// region (jbd2 checkpoint + journal tail update). It quiesces the
// journal first — new Begins block and live handles drain — so the
// writeback pass cannot race buffer mutations made under a handle.
func (j *Journal) Checkpoint() kbase.Errno { return j.CheckpointCtx(nil) }

// CheckpointCtx is Checkpoint with task context: timed into the
// journal:checkpoint histogram, with the dirty-buffer sync appearing
// as a bufcache child span.
func (j *Journal) CheckpointCtx(task *kbase.Task) kbase.Errno {
	t := opCheckpoint.Begin(task)
	defer t.End()
	j.mu.Lock()
	for j.gate {
		j.cond.Wait()
	}
	j.gate = true
	j.gateSeq = 0
	for j.running != nil && j.running.handles > 0 {
		j.cond.Wait()
	}
	j.mu.Unlock()

	err := j.cache.SyncDirtyCtx(task)

	j.mu.Lock()
	defer func() {
		j.gate = false
		j.cond.Broadcast()
		j.mu.Unlock()
	}()
	if err != kbase.EOK {
		return err
	}
	// The tail must not exclude a transaction that is still running:
	// it will commit with its already-assigned sequence, and recovery
	// only replays sequences at or above the tail.
	j.tailSeq = j.seq
	if j.running != nil {
		j.tailSeq = j.running.seq
	}
	j.writePos = 1
	j.revoked = make(map[uint64]uint64)
	j.stats.Checkpoints++
	tpCheckpoint.Emit(0, j.tailSeq, 0)
	return j.writeSuperLocked()
}

// Recover scans the journal and replays every fully-committed
// transaction newer than the on-disk tail, honoring revoke records.
// It returns the number of replayed transactions. Call on mount after
// an unclean shutdown; it is idempotent.
func (j *Journal) Recover() (int, kbase.Errno) {
	j.mu.Lock()
	defer j.mu.Unlock()
	dev := j.cache.Device()
	bs := dev.BlockSize()
	buf := make([]byte, bs)

	// Read superblock for the tail sequence.
	if err := dev.Read(j.start, buf); err != kbase.EOK {
		return 0, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic ||
		binary.LittleEndian.Uint32(buf[4:]) != kindSuper {
		return 0, kbase.EUCLEAN
	}
	tail := binary.LittleEndian.Uint64(buf[8:])

	// Pass 1: scan for committed transactions and revokes.
	type txRecord struct {
		seq   uint64
		homes []uint64
		data  [][]byte
	}
	var committed []txRecord
	revoked := make(map[uint64]uint64)
	pos := j.start + 1
	end := j.start + j.size
	expectSeq := tail
	for pos < end {
		if err := dev.Read(pos, buf); err != kbase.EOK {
			break
		}
		if binary.LittleEndian.Uint32(buf[0:]) != magic ||
			binary.LittleEndian.Uint32(buf[4:]) != kindDesc {
			break
		}
		seq := binary.LittleEndian.Uint64(buf[8:])
		if seq < expectSeq {
			break
		}
		count := binary.LittleEndian.Uint32(buf[16:])
		if uint64(count) > j.size {
			break // corrupt descriptor
		}
		rec := txRecord{seq: seq}
		for i := uint32(0); i < count; i++ {
			rec.homes = append(rec.homes, binary.LittleEndian.Uint64(buf[20+8*i:]))
		}
		pos++
		crc := crc32.NewIEEE()
		ok := true
		for i := uint32(0); i < count && pos < end; i++ {
			data := make([]byte, bs)
			if err := dev.Read(pos, data); err != kbase.EOK {
				ok = false
				break
			}
			rec.data = append(rec.data, data)
			crc.Write(data)
			pos++
		}
		if !ok || len(rec.data) != len(rec.homes) {
			break
		}
		// Optional revoke block.
		var txRevokes []uint64
		if pos < end {
			if err := dev.Read(pos, buf); err != kbase.EOK {
				break
			}
			if binary.LittleEndian.Uint32(buf[0:]) == magic &&
				binary.LittleEndian.Uint32(buf[4:]) == kindRevoke &&
				binary.LittleEndian.Uint64(buf[8:]) == seq {
				n := binary.LittleEndian.Uint32(buf[16:])
				for i := uint32(0); i < n; i++ {
					txRevokes = append(txRevokes, binary.LittleEndian.Uint64(buf[20+8*i:]))
				}
				pos++
			}
		}
		// Commit block.
		if pos >= end {
			break
		}
		if err := dev.Read(pos, buf); err != kbase.EOK {
			break
		}
		if binary.LittleEndian.Uint32(buf[0:]) != magic ||
			binary.LittleEndian.Uint32(buf[4:]) != kindCommit ||
			binary.LittleEndian.Uint64(buf[8:]) != seq ||
			binary.LittleEndian.Uint32(buf[16:]) != crc.Sum32() {
			break // uncommitted or torn: stop replay here
		}
		pos++
		committed = append(committed, rec)
		for _, r := range txRevokes {
			revoked[r] = seq
		}
		expectSeq = seq + 1
	}

	// Pass 2: replay, honoring revokes (a block revoked at seq R is
	// not replayed from any transaction with seq <= R).
	replayed := 0
	for _, rec := range committed {
		for i, home := range rec.homes {
			if rSeq, ok := revoked[home]; ok && rec.seq <= rSeq {
				continue
			}
			if err := dev.Write(home, rec.data[i]); err != kbase.EOK {
				return replayed, err
			}
			j.stats.Replayed++
		}
		replayed++
	}
	if replayed > 0 {
		if err := dev.Flush(); err != kbase.EOK {
			return replayed, err
		}
	}
	// Reset the journal: everything durable now.
	if len(committed) > 0 {
		j.tailSeq = committed[len(committed)-1].seq + 1
	} else {
		j.tailSeq = tail
	}
	j.seq = j.tailSeq
	j.writePos = 1
	if err := j.writeSuperLocked(); err != kbase.EOK {
		return replayed, err
	}
	return replayed, kbase.EOK
}

// DescribeFormat returns a human-readable summary of the journal
// layout for documentation and fsck-style tooling.
func (j *Journal) DescribeFormat() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return fmt.Sprintf("journal @%d+%d seq=%d tail=%d writePos=%d",
		j.start, j.size, j.seq, j.tailSeq, j.writePos)
}
