package journal

import (
	"bytes"
	"testing"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/bufcache"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/kio"
)

// asyncSetup is testSetup plus a kio engine on the journal's device,
// wired into the journal.
func asyncSetup(t *testing.T) (*blockdev.Device, *bufcache.Cache, *Journal, *kio.Engine) {
	t.Helper()
	dev, cache, j := testSetup(t)
	e := kio.New(dev, kio.Config{Workers: 4})
	t.Cleanup(e.Close)
	j.SetEngine(e)
	return dev, cache, j, e
}

// TestAsyncCommitEquivalentToSync runs the same transaction sequence
// through the synchronous and overlapped commit paths and asserts the
// durable on-disk images — journal region included — are identical
// after a worst-case crash plus recovery on each.
func TestAsyncCommitEquivalentToSync(t *testing.T) {
	run := func(async bool) []byte {
		dev, cache, j := testSetup(t)
		var e *kio.Engine
		if async {
			e = kio.New(dev, kio.Config{Workers: 4})
			defer e.Close()
			j.SetEngine(e)
		}
		writeVia(t, cache, j, 40, 0xA1)
		writeVia(t, cache, j, 41, 0xA2)
		if err := j.Commit(); err != kbase.EOK {
			t.Fatalf("Commit 1 (async=%v): %v", async, err)
		}
		// Second transaction with a revoke.
		h := j.Begin()
		if err := h.Revoke(41); err != kbase.EOK {
			t.Fatalf("Revoke: %v", err)
		}
		h.Stop()
		writeVia(t, cache, j, 42, 0xA3)
		if err := j.Commit(); err != kbase.EOK {
			t.Fatalf("Commit 2 (async=%v): %v", async, err)
		}
		// Crash dropping all unflushed (home) writes, then recover.
		dev.CrashApplyNone()
		cache.Invalidate()
		if _, err := j.Recover(); err != kbase.EOK {
			t.Fatalf("Recover (async=%v): %v", async, err)
		}
		var img []byte
		buf := make([]byte, dev.BlockSize())
		for b := uint64(0); b < dev.Blocks(); b++ {
			if err := dev.Read(b, buf); err != kbase.EOK {
				t.Fatalf("Read(%d): %v", b, err)
			}
			img = append(img, buf...)
		}
		return img
	}
	syncImg := run(false)
	asyncImg := run(true)
	if !bytes.Equal(syncImg, asyncImg) {
		for i := range syncImg {
			if syncImg[i] != asyncImg[i] {
				t.Fatalf("durable images diverge at byte %d (block %d): sync=%02x async=%02x",
					i, i/128, syncImg[i], asyncImg[i])
			}
		}
	}
}

// TestAsyncCommitRecoversAfterCrash is the basic durability contract
// on the overlapped path: committed-but-not-checkpointed updates
// survive a crash via replay.
func TestAsyncCommitRecoversAfterCrash(t *testing.T) {
	dev, cache, j, _ := asyncSetup(t)
	writeVia(t, cache, j, 45, 0xBB)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit: %v", err)
	}
	dev.CrashApplyNone()
	cache.Invalidate()
	n, err := j.Recover()
	if err != kbase.EOK {
		t.Fatalf("Recover: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d transactions, want 1", n)
	}
	got := readBlock(t, dev, 45)
	for i, b := range got {
		if b != 0xBB {
			t.Fatalf("block 45 byte %d = %02x after replay, want BB", i, b)
		}
	}
}

// TestAsyncCommitGroupCommit exercises the blocking group-commit
// protocol on the async path: concurrent committers all observe the
// round's outcome.
func TestAsyncCommitGroupCommit(t *testing.T) {
	_, cache, j, _ := asyncSetup(t)
	const writers = 8
	errs := make(chan kbase.Errno, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			h := j.Begin()
			bh, err := cache.Bread(uint64(40 + w))
			if err != kbase.EOK {
				errs <- err
				return
			}
			if err := h.GetWriteAccess(bh.Meta()); err != kbase.EOK {
				errs <- err
				return
			}
			for i := range bh.Data {
				bh.Data[i] = byte(w)
			}
			h.DirtyMetadata(bh.Meta())
			bh.Put()
			h.Stop()
			errs <- j.Commit()
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != kbase.EOK {
			t.Fatalf("concurrent Commit: %v", err)
		}
	}
	if got := j.Stats().BlocksLogged; got < writers {
		t.Fatalf("BlocksLogged = %d, want >= %d", got, writers)
	}
}

// TestAsyncCommitENOSPCReinstates verifies the out-of-journal-space
// path still reinstates the transaction with the engine set (the check
// happens before submission, so no partial log can exist).
func TestAsyncCommitENOSPCReinstates(t *testing.T) {
	dev, cache, j, _ := asyncSetup(t)
	_ = dev
	// 32-block journal region, superblock at 0: a transaction needs
	// 1+N+1 blocks. Fill the region with small commits, then overflow.
	for i := 0; i < 10; i++ {
		writeVia(t, cache, j, uint64(40+i), byte(i+1))
		if err := j.Commit(); err != kbase.EOK {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	writeVia(t, cache, j, 55, 0xEE)
	err := j.Commit()
	if err != kbase.ENOSPC {
		t.Fatalf("overflow Commit: %v, want ENOSPC", err)
	}
	// Checkpoint frees the region; the reinstated transaction commits.
	if err := j.Checkpoint(); err != kbase.EOK {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("post-checkpoint Commit: %v", err)
	}
	got := readBlock(t, dev, 55)
	if got[0] != 0xEE {
		t.Fatal("reinstated transaction's update lost")
	}
}

// TestAsyncCommitWriteFailure verifies a failed log-block submission
// surfaces from Commit and never writes a commit record: after the
// failure, recovery must replay nothing from the torn transaction.
func TestAsyncCommitWriteFailure(t *testing.T) {
	dev, cache, j, _ := asyncSetup(t)
	writeVia(t, cache, j, 44, 0xCD)
	// Fail every journal write of this commit (descriptor + 1 data
	// block go through the engine; the counter also covers the commit
	// record if the body unexpectedly survives).
	dev.FailNextWrites(4)
	if err := j.Commit(); err == kbase.EOK {
		t.Fatal("Commit succeeded with failing device writes")
	}
	dev.FailNextWrites(0)
	dev.CrashApplyNone()
	cache.Invalidate()
	n, err := j.Recover()
	if err != kbase.EOK {
		t.Fatalf("Recover: %v", err)
	}
	if n != 0 {
		t.Fatalf("replayed %d transactions from a failed commit, want 0", n)
	}
	got := readBlock(t, dev, 44)
	if got[0] == 0xCD {
		t.Fatal("failed commit's update reached the home location")
	}
}
