package journal

import (
	"testing"
	"time"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/bufcache"
	"safelinux/internal/linuxlike/kbase"
)

// Layout for tests: blocks 0..31 journal, 32..63 data.
func testSetup(t *testing.T) (*blockdev.Device, *bufcache.Cache, *Journal) {
	t.Helper()
	dev := blockdev.New(blockdev.Config{Blocks: 64, BlockSize: 128, Rng: kbase.NewRng(5)})
	cache := bufcache.NewCache(dev, 0)
	j := New(cache, 0, 32)
	if err := j.Format(); err != kbase.EOK {
		t.Fatalf("Format: %v", err)
	}
	return dev, cache, j
}

func writeVia(t *testing.T, cache *bufcache.Cache, j *Journal, block uint64, fill byte) {
	t.Helper()
	h := j.Begin()
	bh, err := cache.Bread(block)
	if err != kbase.EOK {
		t.Fatalf("Bread(%d): %v", block, err)
	}
	if err := h.GetWriteAccess(bh.Meta()); err != kbase.EOK {
		t.Fatalf("GetWriteAccess: %v", err)
	}
	for i := range bh.Data {
		bh.Data[i] = fill
	}
	if err := h.DirtyMetadata(bh.Meta()); err != kbase.EOK {
		t.Fatalf("DirtyMetadata: %v", err)
	}
	bh.Put()
	h.Stop()
}

func readBlock(t *testing.T, dev *blockdev.Device, block uint64) []byte {
	t.Helper()
	buf := make([]byte, dev.BlockSize())
	if err := dev.Read(block, buf); err != kbase.EOK {
		t.Fatalf("Read(%d): %v", block, err)
	}
	return buf
}

func TestCommitMakesJournalDurable(t *testing.T) {
	dev, cache, j := testSetup(t)
	writeVia(t, cache, j, 40, 0xAA)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit: %v", err)
	}
	// Crash before checkpoint: home write may be lost...
	dev.CrashApplyNone()
	cache.Invalidate()
	if got := readBlock(t, dev, 40)[0]; got != 0 {
		t.Fatalf("home block durable before checkpoint without replay: %#x", got)
	}
	// ...but recovery replays it.
	n, err := j.Recover()
	if err != kbase.EOK {
		t.Fatalf("Recover: %v", err)
	}
	if n != 1 {
		t.Fatalf("Recover replayed %d txns, want 1", n)
	}
	if got := readBlock(t, dev, 40)[0]; got != 0xAA {
		t.Fatalf("replayed block = %#x, want 0xAA", got)
	}
}

func TestUncommittedTxNotReplayed(t *testing.T) {
	dev, cache, j := testSetup(t)
	writeVia(t, cache, j, 41, 0xBB)
	// No commit. Crash.
	dev.CrashApplyNone()
	cache.Invalidate()
	n, err := j.Recover()
	if err != kbase.EOK {
		t.Fatalf("Recover: %v", err)
	}
	if n != 0 {
		t.Fatalf("uncommitted txn replayed")
	}
	if got := readBlock(t, dev, 41)[0]; got != 0 {
		t.Fatalf("uncommitted data visible: %#x", got)
	}
}

func TestCheckpointMakesHomeDurable(t *testing.T) {
	dev, cache, j := testSetup(t)
	writeVia(t, cache, j, 42, 0xCC)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit: %v", err)
	}
	if err := j.Checkpoint(); err != kbase.EOK {
		t.Fatalf("Checkpoint: %v", err)
	}
	dev.CrashApplyNone()
	cache.Invalidate()
	if got := readBlock(t, dev, 42)[0]; got != 0xCC {
		t.Fatalf("checkpointed block lost: %#x", got)
	}
	// Recovery after checkpoint must be a no-op.
	n, err := j.Recover()
	if err != kbase.EOK {
		t.Fatalf("Recover: %v", err)
	}
	if n != 0 {
		t.Fatalf("Recover replayed %d after clean checkpoint", n)
	}
}

func TestMultipleTransactionsReplayInOrder(t *testing.T) {
	dev, cache, j := testSetup(t)
	// Two commits touching the same block; later must win.
	writeVia(t, cache, j, 43, 0x01)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit 1: %v", err)
	}
	writeVia(t, cache, j, 43, 0x02)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit 2: %v", err)
	}
	dev.CrashApplyNone()
	cache.Invalidate()
	n, _ := j.Recover()
	if n != 2 {
		t.Fatalf("replayed %d, want 2", n)
	}
	if got := readBlock(t, dev, 43)[0]; got != 0x02 {
		t.Fatalf("replay order wrong: %#x", got)
	}
}

func TestRevokePreventsReplay(t *testing.T) {
	dev, cache, j := testSetup(t)
	// Txn 1 journals block 44 as metadata.
	writeVia(t, cache, j, 44, 0x0D)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit 1: %v", err)
	}
	// Txn 2 revokes it (block freed, reused as unjournaled data).
	h := j.Begin()
	if err := h.Revoke(44); err != kbase.EOK {
		t.Fatalf("Revoke: %v", err)
	}
	// Txn needs at least one buffer to be meaningful; touch another.
	bh, _ := cache.Bread(45)
	h.GetWriteAccess(bh.Meta())
	bh.Data[0] = 0x0E
	h.DirtyMetadata(bh.Meta())
	bh.Put()
	h.Stop()
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit 2: %v", err)
	}
	// Overwrite block 44 directly (reused as data), durable.
	data := make([]byte, dev.BlockSize())
	data[0] = 0xFF
	dev.Write(44, data)
	dev.Flush()

	dev.CrashApplyNone()
	cache.Invalidate()
	j.Recover()
	if got := readBlock(t, dev, 44)[0]; got != 0xFF {
		t.Fatalf("revoked block was replayed: %#x", got)
	}
	if got := readBlock(t, dev, 45)[0]; got != 0x0E {
		t.Fatalf("non-revoked block not replayed: %#x", got)
	}
}

func TestDirtyMetadataWithoutAccessOopses(t *testing.T) {
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	defer kbase.InstallRecorder(prev)
	_, cache, j := testSetup(t)
	h := j.Begin()
	bh, _ := cache.Bread(50)
	if err := h.DirtyMetadata(bh.Meta()); err != kbase.EINVAL {
		t.Fatalf("DirtyMetadata without access: %v", err)
	}
	if rec.Count(kbase.OopsSemantic) != 1 {
		t.Fatalf("protocol violation not reported")
	}
	bh.Put()
	h.Stop()
}

func TestCommitBlocksUntilHandleStops(t *testing.T) {
	_, cache, j := testSetup(t)
	h := j.Begin()
	bh, _ := cache.Bread(51)
	h.GetWriteAccess(bh.Meta())
	h.DirtyMetadata(bh.Meta())
	bh.Put()
	// Group commit: a concurrent Commit waits for the open handle to
	// drain instead of failing with EBUSY, then commits the handle's
	// updates.
	done := make(chan kbase.Errno, 1)
	go func() { done <- j.Commit() }()
	select {
	case err := <-done:
		t.Fatalf("Commit completed with an open handle: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	h.Stop()
	if err := <-done; err != kbase.EOK {
		t.Fatalf("Commit after Stop: %v", err)
	}
	if got := j.Stats().Commits; got != 1 {
		t.Fatalf("Commits = %d, want 1", got)
	}
	// A second Commit with nothing running is a no-op.
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("idle Commit: %v", err)
	}
}

func TestJournalFullReturnsENOSPC(t *testing.T) {
	dev := blockdev.New(blockdev.Config{Blocks: 64, BlockSize: 128, Rng: kbase.NewRng(5)})
	cache := bufcache.NewCache(dev, 0)
	j := New(cache, 0, 5) // tiny journal: super + 4 blocks
	j.Format()
	// One txn with one buffer needs 3 blocks (desc+data+commit): fits.
	writeVia(t, cache, j, 40, 0x11)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("first Commit: %v", err)
	}
	// Next txn needs 3 more: doesn't fit (writePos=4, size=5).
	writeVia(t, cache, j, 41, 0x22)
	if err := j.Commit(); err != kbase.ENOSPC {
		t.Fatalf("Commit on full journal: %v", err)
	}
	// Checkpoint frees the region; commit now succeeds.
	if err := j.Checkpoint(); err != kbase.EOK {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit after checkpoint: %v", err)
	}
}

func TestCommitEmptyJournalNoop(t *testing.T) {
	_, _, j := testSetup(t)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("empty Commit: %v", err)
	}
	if j.Stats().Commits != 0 {
		t.Fatalf("empty commit counted")
	}
}

func TestRecoverOnCorruptSuperblock(t *testing.T) {
	dev, _, j := testSetup(t)
	garbage := make([]byte, dev.BlockSize())
	for i := range garbage {
		garbage[i] = 0xDE
	}
	dev.Write(0, garbage)
	dev.Flush()
	if _, err := j.Recover(); err != kbase.EUCLEAN {
		t.Fatalf("Recover on corrupt super: %v", err)
	}
}

func TestTornCommitRecordStopsReplay(t *testing.T) {
	dev, cache, j := testSetup(t)
	writeVia(t, cache, j, 46, 0x66)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit: %v", err)
	}
	// Corrupt the commit record's checksum on disk (journal block 3:
	// super=0, desc=1, data=2, commit=3).
	buf := readBlock(t, dev, 3)
	buf[16] ^= 0xFF
	dev.Write(3, buf)
	dev.Flush()
	dev.CrashApplyNone()
	cache.Invalidate()
	n, err := j.Recover()
	if err != kbase.EOK {
		t.Fatalf("Recover: %v", err)
	}
	if n != 0 {
		t.Fatalf("txn with corrupt commit checksum replayed")
	}
}

func TestStatsAccounting(t *testing.T) {
	_, cache, j := testSetup(t)
	writeVia(t, cache, j, 47, 0x01)
	j.Commit()
	j.Checkpoint()
	st := j.Stats()
	if st.Commits != 1 || st.BlocksLogged != 1 || st.Checkpoints != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRecoveryIdempotent runs recovery twice; the second run must be
// a no-op.
func TestRecoveryIdempotent(t *testing.T) {
	dev, cache, j := testSetup(t)
	writeVia(t, cache, j, 48, 0x88)
	j.Commit()
	dev.CrashApplyNone()
	cache.Invalidate()
	if n, _ := j.Recover(); n != 1 {
		t.Fatalf("first recover replayed %d", n)
	}
	if n, _ := j.Recover(); n != 0 {
		t.Fatalf("second recover replayed %d", n)
	}
	if got := readBlock(t, dev, 48)[0]; got != 0x88 {
		t.Fatalf("data lost across double recovery")
	}
}

// TestCheckpointWithRunningTransaction pins a recovery bug: a
// checkpoint taken while a transaction is running (the commit-on-full
// retry path) must not advance the tail past that transaction's
// sequence, or its eventual commit becomes unreplayable.
func TestCheckpointWithRunningTransaction(t *testing.T) {
	dev, cache, j := testSetup(t)
	// Commit one txn, then open a handle (running txn exists).
	writeVia(t, cache, j, 40, 0x01)
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit: %v", err)
	}
	h := j.Begin()
	bh, _ := cache.Bread(41)
	h.GetWriteAccess(bh.Meta())
	bh.Data[0] = 0x42
	h.DirtyMetadata(bh.Meta())
	bh.Put()
	h.Stop()
	// Checkpoint while the transaction is still running (created but
	// not yet committed — Checkpoint quiesces open handles, so the
	// handle is stopped first; the transaction itself stays running).
	if err := j.Checkpoint(); err != kbase.EOK {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := j.Commit(); err != kbase.EOK {
		t.Fatalf("Commit 2: %v", err)
	}
	// Crash before the home write is durable; recovery must replay
	// the post-checkpoint transaction.
	dev.CrashApplyNone()
	cache.Invalidate()
	n, err := j.Recover()
	if err != kbase.EOK {
		t.Fatalf("Recover: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d txns, want 1 (checkpoint excluded the running txn)", n)
	}
	if got := readBlock(t, dev, 41)[0]; got != 0x42 {
		t.Fatalf("committed data lost: %#x", got)
	}
}
