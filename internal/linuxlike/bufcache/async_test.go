package bufcache

import (
	"testing"

	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/kio"
)

func asyncCache(t *testing.T) (*Cache, *kio.Engine) {
	t.Helper()
	c := testCache(t, 0)
	e := kio.New(c.Device(), kio.Config{Workers: 4})
	t.Cleanup(e.Close)
	c.SetEngine(e)
	return c, e
}

func dirtyBlock(t *testing.T, c *Cache, block uint64, fill byte) {
	t.Helper()
	bh, err := c.Bread(block)
	if err != kbase.EOK {
		t.Fatalf("Bread(%d): %v", block, err)
	}
	for i := range bh.Data {
		bh.Data[i] = fill
	}
	bh.MarkDirty()
	bh.Put()
}

func TestSyncDirtyAsyncWritesBack(t *testing.T) {
	c, e := asyncCache(t)
	for i := uint64(0); i < 12; i++ {
		dirtyBlock(t, c, i, byte(0x10+i))
	}
	if err := c.SyncDirty(); err != kbase.EOK {
		t.Fatalf("SyncDirty: %v", err)
	}
	if n := c.DirtyCount(); n != 0 {
		t.Fatalf("dirty count after sync = %d", n)
	}
	// Every buffer is clean and marked written.
	for i := uint64(0); i < 12; i++ {
		bh, _ := c.Bread(i)
		if bh.TestFlag(BHDirty) || !bh.TestFlag(BHReq) {
			t.Fatalf("block %d flags after sync: %s", i, FlagString(bh.Flags()))
		}
		bh.Put()
	}
	// Durable: the barrier at the end of the async sync flushed.
	c.Device().CrashApplyNone()
	raw := make([]byte, 64)
	for i := uint64(0); i < 12; i++ {
		c.Device().Read(i, raw)
		if raw[0] != byte(0x10+i) {
			t.Fatalf("block %d lost after crash: %#x", i, raw[0])
		}
	}
	if st := e.Stats(); st.Submitted == 0 || st.Batches == 0 {
		t.Fatalf("writeback bypassed the engine: %+v", st)
	}
}

func TestSyncDirtyAsyncWriteFault(t *testing.T) {
	c, _ := asyncCache(t)
	dirtyBlock(t, c, 3, 0xAA)
	dirtyBlock(t, c, 4, 0xBB)
	c.Device().MarkBad(4)
	err := c.SyncDirty()
	if err == kbase.EOK {
		t.Fatal("SyncDirty succeeded with a bad block queued")
	}
	bh3, _ := c.Bread(3)
	if bh3.TestFlag(BHDirty) {
		t.Fatalf("healthy block stayed dirty: %s", FlagString(bh3.Flags()))
	}
	bh3.Put()
	bh4, _ := c.GetBlk(4)
	if !bh4.TestFlag(BHWriteEIO) {
		t.Fatalf("failed block missing BHWriteEIO: %s", FlagString(bh4.Flags()))
	}
	bh4.Put()
}

func TestSyncDirtyAsyncMatchesSync(t *testing.T) {
	image := func(async bool) []byte {
		c := testCache(t, 0)
		if async {
			e := kio.New(c.Device(), kio.Config{Workers: 4})
			defer e.Close()
			c.SetEngine(e)
		}
		for i := uint64(0); i < 8; i++ {
			dirtyBlock(t, c, i*3, byte(i+1))
		}
		if err := c.SyncDirty(); err != kbase.EOK {
			t.Fatalf("SyncDirty(async=%v): %v", async, err)
		}
		c.Device().CrashApplyNone()
		var img []byte
		raw := make([]byte, 64)
		for b := uint64(0); b < 64; b++ {
			c.Device().Read(b, raw)
			img = append(img, raw...)
		}
		return img
	}
	syncImg := image(false)
	asyncImg := image(true)
	for i := range syncImg {
		if syncImg[i] != asyncImg[i] {
			t.Fatalf("durable images diverge at byte %d (block %d)", i, i/64)
		}
	}
}
