package bufcache

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Flag-state auditing.
//
// The paper argues (§4.4) that buffer_head's sixteen independent
// flags form a state space of 65536 combinations, only a sliver of
// which is meaningful, and that a correct specification of which
// combinations are valid "can be complicated". This file encodes the
// validity rules as executable predicates, enumerates the state
// space, and checks live buffers against the rules — the artifact a
// verification effort would need as its buffer_head axiom set.

// Rule is one validity constraint over a flag word.
type Rule struct {
	Name string
	Desc string
	// Valid returns false if the combination violates the rule.
	Valid func(Flag) bool
}

// DefaultRules captures the buffer_head flag protocol as documented
// in Linux comments and inferred from fs/buffer.c call sites.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "dirty-implies-uptodate",
			Desc: "a dirty buffer must contain valid data to write back",
			Valid: func(f Flag) bool {
				return f&BHDirty == 0 || f&BHUptodate != 0
			},
		},
		{
			Name: "dirty-implies-mapped",
			Desc: "a dirty buffer needs a disk mapping (or New/Delay allocation state)",
			Valid: func(f Flag) bool {
				return f&BHDirty == 0 || f&(BHMapped|BHNew|BHDelay) != 0
			},
		},
		{
			Name: "new-excludes-req",
			Desc: "a just-allocated buffer cannot already have completed I/O",
			Valid: func(f Flag) bool {
				return f&BHNew == 0 || f&BHReq == 0
			},
		},
		{
			Name: "delay-excludes-mapped",
			Desc: "delayed-allocation buffers have no mapping yet",
			Valid: func(f Flag) bool {
				return f&BHDelay == 0 || f&BHMapped == 0
			},
		},
		{
			Name: "unwritten-implies-mapped",
			Desc: "an unwritten extent is still a mapped extent",
			Valid: func(f Flag) bool {
				return f&BHUnwritten == 0 || f&BHMapped != 0
			},
		},
		{
			Name: "async-read-excludes-async-write",
			Desc: "a buffer cannot be under async read and async write at once",
			Valid: func(f Flag) bool {
				return f&BHAsyncRead == 0 || f&BHAsyncWrite == 0
			},
		},
		{
			Name: "async-io-implies-lock",
			Desc: "in-flight I/O holds the buffer lock",
			Valid: func(f Flag) bool {
				return f&(BHAsyncRead|BHAsyncWrite) == 0 || f&BHLock != 0
			},
		},
		{
			Name: "write-eio-implies-req",
			Desc: "a write error can only exist after I/O was submitted",
			Valid: func(f Flag) bool {
				return f&BHWriteEIO == 0 || f&BHReq != 0
			},
		},
		{
			Name: "async-read-excludes-dirty",
			Desc: "a buffer being read in cannot be dirty",
			Valid: func(f Flag) bool {
				return f&BHAsyncRead == 0 || f&BHDirty == 0
			},
		},
	}
}

// Violations returns the names of all rules the flag word violates.
func Violations(f Flag, rules []Rule) []string {
	var out []string
	for _, r := range rules {
		if !r.Valid(f) {
			out = append(out, r.Name)
		}
	}
	return out
}

// StateSpaceReport summarizes an exhaustive sweep of all 2^16 flag
// combinations against a rule set.
type StateSpaceReport struct {
	Total        int
	Valid        int
	Invalid      int
	ByRule       map[string]int // rule name -> count of states it alone rejects
	MaxValidBits int            // most flags simultaneously set in any valid state
}

// AuditStateSpace enumerates every flag combination and classifies it.
// This is the paper's "many possible combinations of states; not all
// of the combinations are valid" made quantitative.
func AuditStateSpace(rules []Rule) StateSpaceReport {
	rep := StateSpaceReport{Total: 1 << 16, ByRule: make(map[string]int)}
	for w := 0; w < 1<<16; w++ {
		f := Flag(w)
		violated := Violations(f, rules)
		if len(violated) == 0 {
			rep.Valid++
			if n := bits.OnesCount16(uint16(f)); n > rep.MaxValidBits {
				rep.MaxValidBits = n
			}
			continue
		}
		rep.Invalid++
		if len(violated) == 1 {
			rep.ByRule[violated[0]]++
		}
	}
	return rep
}

// FlagString renders a flag word as "Dirty|Uptodate|Mapped".
func FlagString(f Flag) string {
	if f == 0 {
		return "none"
	}
	var names []string
	for bit := Flag(1); bit != 0; bit <<= 1 {
		if f&bit != 0 {
			names = append(names, FlagNames[bit])
		}
	}
	return strings.Join(names, "|")
}

// CheckLive audits every buffer currently in the cache against the
// rules, returning one report line per violating buffer.
func (c *Cache) CheckLive(rules []Rule) []string {
	bhs := make([]*BufferHead, 0, c.Cached())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, bh := range s.buffers {
			bhs = append(bhs, bh)
		}
		s.mu.Unlock()
	}
	sort.Slice(bhs, func(i, j int) bool { return bhs[i].Block < bhs[j].Block })
	var out []string
	for _, bh := range bhs {
		f := bh.Flags()
		if v := Violations(f, rules); len(v) != 0 {
			out = append(out, fmt.Sprintf("block %d flags %s violates %s",
				bh.Block, FlagString(f), strings.Join(v, ",")))
		}
	}
	return out
}
