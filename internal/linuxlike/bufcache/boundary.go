package bufcache

import (
	"safelinux/internal/linuxlike/kbase"
)

// Crash containment for the buffer cache: the public cache operations
// route through an installable boundary, so a panic in cache internals
// (flag-protocol BUGs, a poisoned buffer) is recovered at the caller's
// line and converted to a typed error. Satisfied by
// *compartment.Compartment via its Run method; structural typing keeps
// this package free of a safety-layer import.
//
// Only the outermost entry points are guarded — doBread calls doGetBlk
// directly, never the public wrapper, so a hot-swap drain cannot
// deadlock on a nested entry.
type Boundary interface {
	Run(op string, fn func() kbase.Errno) kbase.Errno
}

type boundaryBox struct{ b Boundary }

// SetBoundary installs (or, with nil, removes) the containment
// boundary around the public cache surface.
func (c *Cache) SetBoundary(b Boundary) {
	if b == nil {
		c.boundary.Store(nil)
		return
	}
	c.boundary.Store(&boundaryBox{b: b})
}

func (c *Cache) guardBuf(op string, fn func() (*BufferHead, kbase.Errno)) (*BufferHead, kbase.Errno) {
	box := c.boundary.Load()
	if box == nil {
		return fn()
	}
	var bh *BufferHead
	err := box.b.Run(op, func() kbase.Errno {
		var e kbase.Errno
		bh, e = fn()
		return e
	})
	if err != kbase.EOK {
		return nil, err
	}
	return bh, kbase.EOK
}

// GetBlk returns the buffer for block without reading it from disk
// (getblk). The returned buffer holds a new reference.
func (c *Cache) GetBlk(block uint64) (*BufferHead, kbase.Errno) {
	return c.guardBuf("getblk", func() (*BufferHead, kbase.Errno) { return c.doGetBlk(block) })
}

// Bread returns an uptodate buffer for block, reading from disk if
// necessary (bread).
func (c *Cache) Bread(block uint64) (*BufferHead, kbase.Errno) {
	return c.guardBuf("bread", func() (*BufferHead, kbase.Errno) { return c.doBread(block) })
}

// BreadCtx is Bread with task context for the latency plane: a miss
// that fills from the device records into the bufcache:fill histogram
// and, when the task is inside a trace, appears as a child span.
// Same reference contract as Bread.
func (c *Cache) BreadCtx(task *kbase.Task, block uint64) (*BufferHead, kbase.Errno) {
	return c.guardBuf("bread", func() (*BufferHead, kbase.Errno) { return c.doBreadCtx(task, block) })
}

// WriteBuffer synchronously writes one buffer to disk and clears its
// dirty bit (sync_dirty_buffer for a single bh).
func (c *Cache) WriteBuffer(bh *BufferHead) kbase.Errno {
	box := c.boundary.Load()
	if box == nil {
		return c.doWriteBuffer(bh)
	}
	return box.b.Run("write_buffer", func() kbase.Errno { return c.doWriteBuffer(bh) })
}

// SyncDirty writes all dirty buffers and issues a device flush
// barrier (sync_dirty_buffers + blkdev_issue_flush).
func (c *Cache) SyncDirty() kbase.Errno {
	box := c.boundary.Load()
	if box == nil {
		return c.doSyncDirty()
	}
	return box.b.Run("sync_dirty", func() kbase.Errno { return c.doSyncDirty() })
}

// SyncDirtyCtx is SyncDirty with task context: the whole flush is
// timed into the bufcache:sync histogram, and on the engine path the
// kio batch appears as a child span of the caller's trace.
func (c *Cache) SyncDirtyCtx(task *kbase.Task) kbase.Errno {
	t := opSync.Begin(task)
	defer t.End()
	box := c.boundary.Load()
	if box == nil {
		return c.doSyncDirtyCtx(task)
	}
	return box.b.Run("sync_dirty", func() kbase.Errno { return c.doSyncDirtyCtx(task) })
}
