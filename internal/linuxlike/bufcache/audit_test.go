package bufcache

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestViolationsOnKnownStates(t *testing.T) {
	rules := DefaultRules()
	cases := []struct {
		name  string
		flags Flag
		valid bool
	}{
		{"fresh", 0, true},
		{"read-clean", BHUptodate | BHMapped | BHReq, true},
		{"dirty-valid", BHUptodate | BHMapped | BHDirty, true},
		{"dirty-new", BHUptodate | BHNew | BHDirty, true},
		{"dirty-not-uptodate", BHDirty | BHMapped, false},
		{"dirty-unmapped", BHDirty | BHUptodate, false},
		{"new-with-req", BHNew | BHReq, false},
		{"delay-mapped", BHDelay | BHMapped, false},
		{"unwritten-unmapped", BHUnwritten, false},
		{"both-async", BHAsyncRead | BHAsyncWrite | BHLock, false},
		{"async-no-lock", BHAsyncRead, false},
		{"async-read-locked", BHAsyncRead | BHLock, true},
		{"write-eio-no-req", BHWriteEIO, false},
		{"write-eio-after-req", BHWriteEIO | BHReq, true},
		{"async-read-dirty", BHAsyncRead | BHLock | BHDirty | BHUptodate | BHMapped, false},
	}
	for _, tc := range cases {
		v := Violations(tc.flags, rules)
		if (len(v) == 0) != tc.valid {
			t.Errorf("%s (%s): violations = %v, want valid=%v",
				tc.name, FlagString(tc.flags), v, tc.valid)
		}
	}
}

func TestAuditStateSpace(t *testing.T) {
	rep := AuditStateSpace(DefaultRules())
	if rep.Total != 1<<16 {
		t.Fatalf("Total = %d", rep.Total)
	}
	if rep.Valid+rep.Invalid != rep.Total {
		t.Fatalf("Valid+Invalid = %d", rep.Valid+rep.Invalid)
	}
	// The paper's point: the valid region is a small fraction.
	if frac := float64(rep.Valid) / float64(rep.Total); frac > 0.25 {
		t.Fatalf("valid fraction %.3f unexpectedly large — rules too weak", frac)
	}
	if rep.Valid == 0 {
		t.Fatalf("no valid states — rules contradictory")
	}
	if rep.MaxValidBits == 0 {
		t.Fatalf("MaxValidBits = 0")
	}
}

// Property: Violations is monotone in rule count — adding rules never
// shrinks the violation set.
func TestViolationsMonotoneProperty(t *testing.T) {
	all := DefaultRules()
	f := func(word uint16, cut uint8) bool {
		n := int(cut) % (len(all) + 1)
		sub := all[:n]
		return len(Violations(Flag(word), sub)) <= len(Violations(Flag(word), all))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlagString(t *testing.T) {
	if got := FlagString(0); got != "none" {
		t.Fatalf("FlagString(0) = %q", got)
	}
	got := FlagString(BHDirty | BHUptodate)
	if !strings.Contains(got, "Dirty") || !strings.Contains(got, "Uptodate") {
		t.Fatalf("FlagString = %q", got)
	}
}

func TestCheckLive(t *testing.T) {
	c := testCache(t, 0)
	good, _ := c.Bread(1)
	good.Put()
	bad, _ := c.GetBlk(2)
	bad.SetFlag(BHDirty) // dirty without uptodate/mapped: two violations
	bad.Put()
	reports := c.CheckLive(DefaultRules())
	if len(reports) != 1 {
		t.Fatalf("CheckLive reports = %v", reports)
	}
	if !strings.Contains(reports[0], "block 2") {
		t.Fatalf("report %q does not name block 2", reports[0])
	}
}
