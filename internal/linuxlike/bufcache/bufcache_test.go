package bufcache

import (
	"testing"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/kbase"
)

func testCache(t *testing.T, maxBufs int) *Cache {
	t.Helper()
	dev := blockdev.New(blockdev.Config{Blocks: 64, BlockSize: 64, Rng: kbase.NewRng(3)})
	return NewCache(dev, maxBufs)
}

func installRecorder(t *testing.T) *kbase.OopsRecorder {
	t.Helper()
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	t.Cleanup(func() { kbase.InstallRecorder(prev) })
	return rec
}

func TestBreadReadsFromDevice(t *testing.T) {
	c := testCache(t, 0)
	want := make([]byte, 64)
	want[0] = 0x5A
	c.Device().Write(7, want)
	c.Device().Flush()

	bh, err := c.Bread(7)
	if err != kbase.EOK {
		t.Fatalf("Bread: %v", err)
	}
	defer bh.Put()
	if bh.Data[0] != 0x5A {
		t.Fatalf("Bread data = %#x", bh.Data[0])
	}
	if !bh.Uptodate() || !bh.TestFlag(BHMapped) {
		t.Fatalf("flags after Bread: %s", FlagString(bh.Flags()))
	}
}

func TestCacheHitReturnsSameBuffer(t *testing.T) {
	c := testCache(t, 0)
	a, _ := c.Bread(3)
	b, _ := c.Bread(3)
	if a != b {
		t.Fatalf("same block yielded distinct buffers")
	}
	if a.Refcount() != 2 {
		t.Fatalf("refcount = %d, want 2", a.Refcount())
	}
	a.Put()
	b.Put()
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirtyWritebackRoundTrip(t *testing.T) {
	c := testCache(t, 0)
	bh, _ := c.Bread(5)
	bh.Data[0] = 0xEE
	bh.MarkDirty()
	if c.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d", c.DirtyCount())
	}
	if err := c.SyncDirty(); err != kbase.EOK {
		t.Fatalf("SyncDirty: %v", err)
	}
	if c.DirtyCount() != 0 || bh.Dirty() {
		t.Fatalf("dirty state not cleared")
	}
	bh.Put()

	// Crash; data must be durable.
	c.Device().CrashApplyNone()
	c.Invalidate()
	bh2, _ := c.Bread(5)
	if bh2.Data[0] != 0xEE {
		t.Fatalf("written data lost: %#x", bh2.Data[0])
	}
}

func TestUnflushedDirtyLostOnCrash(t *testing.T) {
	c := testCache(t, 0)
	bh, _ := c.Bread(9)
	bh.Data[0] = 0x77
	bh.MarkDirty()
	bh.Put()
	c.Device().CrashApplyNone()
	c.Invalidate()
	bh2, _ := c.Bread(9)
	if bh2.Data[0] != 0 {
		t.Fatalf("dirty-but-unsynced data survived crash")
	}
}

func TestWriteUnmappedBufferOopses(t *testing.T) {
	rec := installRecorder(t)
	c := testCache(t, 0)
	bh, _ := c.GetBlk(2) // never read, never mapped
	bh.MarkDirty()
	if err := c.WriteBuffer(bh); err != kbase.EINVAL {
		t.Fatalf("WriteBuffer of unmapped: %v", err)
	}
	if rec.Count(kbase.OopsSemantic) != 1 {
		t.Fatalf("semantic oops count = %d", rec.Count(kbase.OopsSemantic))
	}
}

func TestBrelseOverRelease(t *testing.T) {
	rec := installRecorder(t)
	c := testCache(t, 0)
	bh, _ := c.GetBlk(1)
	bh.Put()
	bh.Put() // over-release
	if rec.Count(kbase.OopsGeneric) != 1 {
		t.Fatalf("over-release not reported")
	}
}

func TestPutReturnsTypedOverReleaseError(t *testing.T) {
	rec := installRecorder(t)
	c := testCache(t, 0)
	bh, _ := c.GetBlk(3)
	if err := bh.Put(); err != nil {
		t.Fatalf("balanced Put returned %v", err)
	}
	err := bh.Put() // over-release
	ore, ok := err.(*OverReleaseError)
	if !ok {
		t.Fatalf("over-release Put returned %T, want *OverReleaseError", err)
	}
	if ore.Block != 3 || ore.Refcount != 0 {
		t.Fatalf("OverReleaseError = %+v", ore)
	}
	if bh.Refcount() != 0 {
		t.Fatalf("refcount corrupted to %d by rejected Put", bh.Refcount())
	}
	if got := c.Stats().OverReleases; got != 1 {
		t.Fatalf("Stats().OverReleases = %d", got)
	}
	if rec.Count(kbase.OopsGeneric) != 1 {
		t.Fatalf("oops count = %d", rec.Count(kbase.OopsGeneric))
	}
}

func TestLRUEviction(t *testing.T) {
	c := testCache(t, 4)
	var held []*BufferHead
	for i := uint64(0); i < 4; i++ {
		bh, err := c.GetBlk(i)
		if err != kbase.EOK {
			t.Fatalf("GetBlk(%d): %v", i, err)
		}
		held = append(held, bh)
	}
	// Cache full of referenced buffers: no room.
	if _, err := c.GetBlk(10); err != kbase.ENOBUFS {
		t.Fatalf("GetBlk on full cache: %v", err)
	}
	// Release one; eviction should succeed.
	held[0].Put()
	if _, err := c.GetBlk(10); err != kbase.EOK {
		t.Fatalf("GetBlk after release: %v", err)
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestDirtyBufferNotEvicted(t *testing.T) {
	c := testCache(t, 2)
	a, _ := c.Bread(0)
	a.MarkDirty()
	a.Put()
	b, _ := c.GetBlk(1)
	b.Put()
	// Only the clean buffer may be evicted.
	if _, err := c.GetBlk(2); err != kbase.EOK {
		t.Fatalf("GetBlk: %v", err)
	}
	s := c.shard(0)
	s.mu.Lock()
	_, dirtyStill := s.buffers[0]
	s.mu.Unlock()
	if !dirtyStill {
		t.Fatalf("dirty buffer was evicted")
	}
}

func TestBreadReportsIOFailure(t *testing.T) {
	c := testCache(t, 0)
	c.Device().FailNextReads(1)
	bh, err := c.Bread(4)
	if err != kbase.EIO {
		t.Fatalf("Bread on failing device = (%v, %v), want EIO", bh, err)
	}
	ok, err := c.Bread(4)
	if err != kbase.EOK {
		t.Fatalf("Bread failed on healthy device: %v", err)
	}
	ok.Put()
}

func TestForget(t *testing.T) {
	c := testCache(t, 0)
	bh, _ := c.Bread(6)
	bh.Data[0] = 0x42
	bh.MarkDirty()
	c.Forget(bh)
	if c.DirtyCount() != 0 || bh.Dirty() {
		t.Fatalf("Forget left buffer dirty")
	}
	bh.Put()
	c.SyncDirty()
	c.Invalidate()
	bh2, _ := c.Bread(6)
	if bh2.Data[0] != 0 {
		t.Fatalf("forgotten write reached disk")
	}
}

func TestGetBlkBounds(t *testing.T) {
	c := testCache(t, 0)
	if _, err := c.GetBlk(64); err != kbase.EINVAL {
		t.Fatalf("out-of-range GetBlk: %v", err)
	}
}
