// Package bufcache implements the buffer cache of the simulated
// kernel, deliberately in the legacy Linux style the paper's §4.4
// critiques: each cached disk block is exposed through a BufferHead
// carrying sixteen independently-set state flags whose valid
// combinations are nowhere encoded, shared mutably between the file
// system, the journal, and the cache itself.
//
// The package also contains the flag-state auditor used by the
// experiments to demonstrate how many of the 2^16 combinations are
// actually meaningful — the quantitative backdrop for the paper's
// claim that "not all of the combinations are valid, but even
// determining which are can be complicated".
package bufcache

import (
	"container/list"
	"sync"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/kbase"
)

// Flag is one buffer_head state bit. The set mirrors Linux's
// enum bh_state_bits.
type Flag uint16

// The sixteen buffer state flags (paper §4.4: "includes 16 state
// flags that describe whether the buffer is mapped, dirty, etc.").
const (
	BHUptodate     Flag = 1 << iota // contains valid data
	BHDirty                         // is dirty
	BHLock                          // is locked
	BHReq                           // has been submitted for I/O
	BHUptodateLock                  // internal serialization of uptodate
	BHMapped                        // has a disk mapping
	BHNew                           // disk mapping newly allocated, not yet written
	BHAsyncRead                     // under end_buffer_async_read I/O
	BHAsyncWrite                    // under end_buffer_async_write I/O
	BHDelay                         // delayed allocation, no mapping yet
	BHBoundary                      // block followed by a discontiguity
	BHWriteEIO                      // I/O error on write
	BHUnwritten                     // allocated on disk but unwritten
	BHQuiet                         // suppress I/O error messages
	BHMeta                          // contains metadata
	BHPrio                          // submit with REQ_PRIO
)

// FlagNames maps each flag to its Linux-style name for reports.
var FlagNames = map[Flag]string{
	BHUptodate: "Uptodate", BHDirty: "Dirty", BHLock: "Lock",
	BHReq: "Req", BHUptodateLock: "UptodateLock", BHMapped: "Mapped",
	BHNew: "New", BHAsyncRead: "AsyncRead", BHAsyncWrite: "AsyncWrite",
	BHDelay: "Delay", BHBoundary: "Boundary", BHWriteEIO: "WriteEIO",
	BHUnwritten: "Unwritten", BHQuiet: "Quiet", BHMeta: "Meta", BHPrio: "Prio",
}

// BufferHead is one cached disk block, shared mutably across kernel
// components exactly as struct buffer_head is. Data is exposed as a
// raw slice; flags are exposed for direct manipulation by file
// systems and the journal. Nothing here enforces a state machine —
// that is the point.
type BufferHead struct {
	Block uint64
	Data  []byte

	mu    sync.Mutex // b_uptodate_lock analogue; guards flags only
	flags Flag

	cache    *Cache
	refcount int
	elem     *list.Element

	// JournalData is the void*-style b_private field: the journal
	// hangs its per-buffer state here and the file system must not
	// touch it, a contract enforced only by convention.
	JournalData any
}

// TestFlag reports whether f is set.
func (bh *BufferHead) TestFlag(f Flag) bool {
	bh.mu.Lock()
	defer bh.mu.Unlock()
	return bh.flags&f != 0
}

// SetFlag sets f. No validity checking happens here, as in Linux.
func (bh *BufferHead) SetFlag(f Flag) {
	bh.mu.Lock()
	bh.flags |= f
	bh.mu.Unlock()
}

// ClearFlag clears f.
func (bh *BufferHead) ClearFlag(f Flag) {
	bh.mu.Lock()
	bh.flags &^= f
	bh.mu.Unlock()
}

// Flags returns the raw flag word.
func (bh *BufferHead) Flags() Flag {
	bh.mu.Lock()
	defer bh.mu.Unlock()
	return bh.flags
}

// MarkDirty marks the buffer dirty and moves it onto the cache's
// dirty list, mirroring mark_buffer_dirty.
func (bh *BufferHead) MarkDirty() {
	bh.SetFlag(BHDirty)
	bh.cache.noteDirty(bh)
}

// MarkUptodate marks the buffer's contents valid.
func (bh *BufferHead) MarkUptodate() { bh.SetFlag(BHUptodate) }

// Uptodate reports BHUptodate.
func (bh *BufferHead) Uptodate() bool { return bh.TestFlag(BHUptodate) }

// Dirty reports BHDirty.
func (bh *BufferHead) Dirty() bool { return bh.TestFlag(BHDirty) }

// Get increments the reference count (get_bh).
func (bh *BufferHead) Get() {
	bh.cache.mu.Lock()
	bh.refcount++
	bh.cache.mu.Unlock()
}

// Put releases a reference (brelse / put_bh). Over-releasing raises a
// generic oops, as brelse would warn.
func (bh *BufferHead) Put() {
	bh.cache.mu.Lock()
	if bh.refcount == 0 {
		bh.cache.mu.Unlock()
		kbase.Oops(kbase.OopsGeneric, "bufcache", "brelse of free buffer %d", bh.Block)
		return
	}
	bh.refcount--
	bh.cache.mu.Unlock()
}

// Refcount returns the current reference count.
func (bh *BufferHead) Refcount() int {
	bh.cache.mu.Lock()
	defer bh.cache.mu.Unlock()
	return bh.refcount
}

// Cache is the buffer cache over one block device.
type Cache struct {
	dev *blockdev.Device

	mu      sync.Mutex
	buffers map[uint64]*BufferHead
	lru     *list.List // front = most recent
	dirty   map[uint64]*BufferHead
	maxBufs int

	stats CacheStats
}

// CacheStats counts cache activity.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Writeback uint64
	Evictions uint64
}

// NewCache creates a cache over dev holding at most maxBufs buffers
// (0 means unbounded).
func NewCache(dev *blockdev.Device, maxBufs int) *Cache {
	return &Cache{
		dev:     dev,
		buffers: make(map[uint64]*BufferHead),
		lru:     list.New(),
		dirty:   make(map[uint64]*BufferHead),
		maxBufs: maxBufs,
	}
}

// Device returns the underlying block device.
func (c *Cache) Device() *blockdev.Device { return c.dev }

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// GetBlk returns the buffer for block without reading it from disk
// (getblk). The returned buffer holds a new reference.
func (c *Cache) GetBlk(block uint64) (*BufferHead, kbase.Errno) {
	if block >= c.dev.Blocks() {
		return nil, kbase.EINVAL
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if bh, ok := c.buffers[block]; ok {
		c.stats.Hits++
		bh.refcount++
		c.lru.MoveToFront(bh.elem)
		return bh, kbase.EOK
	}
	c.stats.Misses++
	if err := c.makeRoomLocked(); err != kbase.EOK {
		return nil, err
	}
	bh := &BufferHead{
		Block:    block,
		Data:     make([]byte, c.dev.BlockSize()),
		cache:    c,
		refcount: 1,
	}
	bh.elem = c.lru.PushFront(bh)
	c.buffers[block] = bh
	return bh, kbase.EOK
}

// Bread returns an uptodate buffer for block, reading from disk if
// necessary (bread).
func (c *Cache) Bread(block uint64) (*BufferHead, kbase.Errno) {
	bh, err := c.GetBlk(block)
	if err != kbase.EOK {
		return nil, err
	}
	if !bh.Uptodate() {
		if err := c.dev.Read(block, bh.Data); err != kbase.EOK {
			bh.Put()
			return nil, err
		}
		bh.SetFlag(BHUptodate | BHMapped | BHReq)
	}
	return bh, kbase.EOK
}

// BreadLegacy is the ERR_PTR-returning variant used by legacy
// modules: on failure the result encodes the errno as a pointer and
// the caller must check kbase.IsErr. (§4.2's type-confusion hazard.)
func (c *Cache) BreadLegacy(block uint64) *BufferHead {
	bh, err := c.Bread(block)
	if err != kbase.EOK {
		return kbase.ErrPtr[BufferHead](err)
	}
	return bh
}

// noteDirty puts bh on the dirty list.
func (c *Cache) noteDirty(bh *BufferHead) {
	c.mu.Lock()
	c.dirty[bh.Block] = bh
	c.mu.Unlock()
}

// WriteBuffer synchronously writes one buffer to disk and clears its
// dirty bit (sync_dirty_buffer for a single bh).
func (c *Cache) WriteBuffer(bh *BufferHead) kbase.Errno {
	if !bh.TestFlag(BHMapped) && !bh.TestFlag(BHNew) {
		// Writing an unmapped buffer is the classic flag-protocol
		// violation; Linux would hit a BUG in submit_bh.
		kbase.Oops(kbase.OopsSemantic, "bufcache",
			"submit of unmapped buffer %d (flags %04x)", bh.Block, bh.Flags())
		return kbase.EINVAL
	}
	if err := c.dev.Write(bh.Block, bh.Data); err != kbase.EOK {
		bh.SetFlag(BHWriteEIO)
		return err
	}
	bh.ClearFlag(BHDirty | BHNew)
	bh.SetFlag(BHReq)
	c.mu.Lock()
	delete(c.dirty, bh.Block)
	c.stats.Writeback++
	c.mu.Unlock()
	return kbase.EOK
}

// SyncDirty writes all dirty buffers and issues a device flush
// barrier (sync_dirty_buffers + blkdev_issue_flush).
func (c *Cache) SyncDirty() kbase.Errno {
	c.mu.Lock()
	toWrite := make([]*BufferHead, 0, len(c.dirty))
	for _, bh := range c.dirty {
		toWrite = append(toWrite, bh)
	}
	c.mu.Unlock()
	var firstErr kbase.Errno = kbase.EOK
	for _, bh := range toWrite {
		if err := c.WriteBuffer(bh); err != kbase.EOK && firstErr == kbase.EOK {
			firstErr = err
		}
	}
	if err := c.dev.Flush(); err != kbase.EOK && firstErr == kbase.EOK {
		firstErr = err
	}
	return firstErr
}

// DirtyCount returns the number of dirty buffers.
func (c *Cache) DirtyCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.dirty)
}

// Forget drops a buffer from the cache without writing it
// (bforget) — used by the journal for revoked blocks.
func (c *Cache) Forget(bh *BufferHead) {
	bh.ClearFlag(BHDirty)
	c.mu.Lock()
	delete(c.dirty, bh.Block)
	c.mu.Unlock()
}

// Invalidate drops every clean, unreferenced buffer; used after a
// simulated crash so stale cached state cannot mask lost writes.
// Dirty or referenced buffers are dropped too — a crash destroys RAM.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buffers = make(map[uint64]*BufferHead)
	c.dirty = make(map[uint64]*BufferHead)
	c.lru.Init()
}

// makeRoomLocked evicts clean unreferenced buffers from the LRU tail
// until a slot is free. Caller holds c.mu.
func (c *Cache) makeRoomLocked() kbase.Errno {
	if c.maxBufs == 0 || len(c.buffers) < c.maxBufs {
		return kbase.EOK
	}
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		bh := e.Value.(*BufferHead)
		if bh.refcount == 0 && !bh.Dirty() {
			c.lru.Remove(e)
			delete(c.buffers, bh.Block)
			c.stats.Evictions++
			return kbase.EOK
		}
	}
	return kbase.ENOBUFS
}

// Cached returns the number of buffers currently in the cache.
func (c *Cache) Cached() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buffers)
}
