// Package bufcache implements the buffer cache of the simulated
// kernel, deliberately in the legacy Linux style the paper's §4.4
// critiques: each cached disk block is exposed through a BufferHead
// carrying sixteen independently-set state flags whose valid
// combinations are nowhere encoded, shared mutably between the file
// system, the journal, and the cache itself.
//
// The package also contains the flag-state auditor used by the
// experiments to demonstrate how many of the 2^16 combinations are
// actually meaningful — the quantitative backdrop for the paper's
// claim that "not all of the combinations are valid, but even
// determining which are can be complicated".
//
// Concurrency model: the cache is lock-striped into NumShards shards
// keyed by block % NumShards; each shard owns its buffers map, LRU
// list, and dirty set, so lookups of different blocks never contend.
// BufferHead reference counts are atomic (get_bh/put_bh touch no
// lock), and the capacity bound is a cache-wide atomic with per-shard
// eviction, approximating a global LRU the way per-CPU pagevecs do.
package bufcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/kio"
	"safelinux/internal/linuxlike/ktrace"
)

// Tracepoints (args documented in DESIGN.md's catalog).
var (
	tpGet       = ktrace.New("bufcache:get")       // a0=block, a1=1 on cache hit
	tpPut       = ktrace.New("bufcache:put")       // a0=block, a1=refcount before release
	tpWriteback = ktrace.New("bufcache:writeback") // a0=block
)

// Latency-plane ops: a cache miss that must fill from the device, and
// the whole dirty-sync flush (exported as bufcache.fill_ns and
// bufcache.sync_ns histograms; span children of the calling trace).
var (
	opFill = ktrace.NewOp("bufcache:fill")
	opSync = ktrace.NewOp("bufcache:sync")
)

// NumShards is the lock-striping factor of the cache.
const NumShards = 16

// Flag is one buffer_head state bit. The set mirrors Linux's
// enum bh_state_bits.
type Flag uint16

// The sixteen buffer state flags (paper §4.4: "includes 16 state
// flags that describe whether the buffer is mapped, dirty, etc.").
const (
	BHUptodate     Flag = 1 << iota // contains valid data
	BHDirty                         // is dirty
	BHLock                          // is locked
	BHReq                           // has been submitted for I/O
	BHUptodateLock                  // internal serialization of uptodate
	BHMapped                        // has a disk mapping
	BHNew                           // disk mapping newly allocated, not yet written
	BHAsyncRead                     // under end_buffer_async_read I/O
	BHAsyncWrite                    // under end_buffer_async_write I/O
	BHDelay                         // delayed allocation, no mapping yet
	BHBoundary                      // block followed by a discontiguity
	BHWriteEIO                      // I/O error on write
	BHUnwritten                     // allocated on disk but unwritten
	BHQuiet                         // suppress I/O error messages
	BHMeta                          // contains metadata
	BHPrio                          // submit with REQ_PRIO
)

// FlagNames maps each flag to its Linux-style name for reports.
var FlagNames = map[Flag]string{
	BHUptodate: "Uptodate", BHDirty: "Dirty", BHLock: "Lock",
	BHReq: "Req", BHUptodateLock: "UptodateLock", BHMapped: "Mapped",
	BHNew: "New", BHAsyncRead: "AsyncRead", BHAsyncWrite: "AsyncWrite",
	BHDelay: "Delay", BHBoundary: "Boundary", BHWriteEIO: "WriteEIO",
	BHUnwritten: "Unwritten", BHQuiet: "Quiet", BHMeta: "Meta", BHPrio: "Prio",
}

// BufferHead is one cached disk block, shared mutably across kernel
// components exactly as struct buffer_head is. Data is exposed as a
// raw slice; flags are exposed for direct manipulation by file
// systems and the journal. Nothing here enforces a state machine —
// that is the point.
type BufferHead struct {
	Block uint64
	Data  []byte

	mu    sync.Mutex // b_uptodate_lock analogue; guards flags only
	flags Flag

	// ioMu serializes the read-in path (Bread) so two tasks missing on
	// the same block do not both copy from the device into Data.
	ioMu sync.Mutex

	cache    *Cache
	refcount atomic.Int32

	// Intrusive LRU links, guarded by the owning shard's mutex. A
	// typed intrusive list replaces the old container/list, whose
	// any-typed Element.Value forced a cast on every eviction.
	lruPrev, lruNext *BufferHead

	// journalSeq replaces the void*-style JournalData (b_private)
	// field: the journal records the owning transaction's sequence
	// through the typed accessors below, so the cache/journal crossing
	// is no longer an untyped any that other components could stomp.
	// Zero means "not joined to any transaction"; guarded by mu.
	journalSeq uint64
}

// SetJournalSeq records the journal transaction bh has joined — the
// typed successor of the b_private breadcrumb.
func (bh *BufferHead) SetJournalSeq(seq uint64) {
	bh.mu.Lock()
	bh.journalSeq = seq
	bh.mu.Unlock()
}

// JournalSeq returns the transaction sequence recorded on bh, or 0 if
// the buffer is not part of a running transaction.
func (bh *BufferHead) JournalSeq() uint64 {
	bh.mu.Lock()
	defer bh.mu.Unlock()
	return bh.journalSeq
}

// ClearJournalSeq removes the transaction breadcrumb (commit time).
func (bh *BufferHead) ClearJournalSeq() {
	bh.mu.Lock()
	bh.journalSeq = 0
	bh.mu.Unlock()
}

// MetaRef is the capability a buffer holder presents to the journal
// when registering the buffer as transaction metadata. Only bufcache
// can mint one (the field is unexported), so a *BufferHead obtained
// outside the cache's get/bread surface cannot be journaled, and the
// journal's exported API no longer traffics in the shared raw pointer.
type MetaRef struct {
	bh *BufferHead
}

// Meta mints the journaling capability for bh.
func (bh *BufferHead) Meta() MetaRef { return MetaRef{bh: bh} }

// Head returns the underlying buffer. bufcache is the owning package
// of BufferHead, so this is the one audited unwrap point.
func (r MetaRef) Head() *BufferHead { return r.bh }

// Valid reports whether the capability wraps a live buffer.
func (r MetaRef) Valid() bool { return r.bh != nil }

// TestFlag reports whether f is set.
func (bh *BufferHead) TestFlag(f Flag) bool {
	bh.mu.Lock()
	defer bh.mu.Unlock()
	return bh.flags&f != 0
}

// SetFlag sets f. No validity checking happens here, as in Linux.
func (bh *BufferHead) SetFlag(f Flag) {
	bh.mu.Lock()
	bh.flags |= f
	bh.mu.Unlock()
}

// ClearFlag clears f.
func (bh *BufferHead) ClearFlag(f Flag) {
	bh.mu.Lock()
	bh.flags &^= f
	bh.mu.Unlock()
}

// Flags returns the raw flag word.
func (bh *BufferHead) Flags() Flag {
	bh.mu.Lock()
	defer bh.mu.Unlock()
	return bh.flags
}

// MarkDirty marks the buffer dirty and moves it onto the cache's
// dirty list, mirroring mark_buffer_dirty.
func (bh *BufferHead) MarkDirty() {
	bh.SetFlag(BHDirty)
	bh.cache.noteDirty(bh)
}

// MarkUptodate marks the buffer's contents valid.
func (bh *BufferHead) MarkUptodate() { bh.SetFlag(BHUptodate) }

// Uptodate reports BHUptodate.
func (bh *BufferHead) Uptodate() bool { return bh.TestFlag(BHUptodate) }

// Dirty reports BHDirty.
func (bh *BufferHead) Dirty() bool { return bh.TestFlag(BHDirty) }

// Get increments the reference count (get_bh). Lock-free: only
// holders of a live reference may call Get, so the count cannot race
// a 0→1 revival (that transition happens only inside GetBlk under the
// shard lock).
func (bh *BufferHead) Get() { bh.refcount.Add(1) }

// OverReleaseError reports a Put on a buffer whose reference count
// was already zero — the double-free (CWE-415) shape for refcounted
// objects. It carries enough context for an audit trail; the oops is
// still raised so legacy callers that ignore the return keep the old
// crash-on-misuse behavior.
type OverReleaseError struct {
	Block    uint64
	Refcount int // count observed at the failed release (always 0)
}

func (e *OverReleaseError) Error() string {
	return fmt.Sprintf("bufcache: over-release of buffer %d (refcount %d)", e.Block, e.Refcount)
}

// Put releases a reference (brelse / put_bh). A release of a buffer
// nobody holds returns *OverReleaseError and raises a generic oops, as
// brelse would warn. The CAS loop never publishes a negative count, so
// unlike a blind Add(-1)+restore there is no window where a concurrent
// reader observes the corrupted value.
func (bh *BufferHead) Put() error {
	tpPut.Emit(0, bh.Block, uint64(uint32(bh.refcount.Load())))
	for {
		old := bh.refcount.Load()
		if old <= 0 {
			kbase.Oops(kbase.OopsGeneric, "bufcache", "brelse of free buffer %d", bh.Block)
			bh.cache.overReleases.Add(1)
			return &OverReleaseError{Block: bh.Block, Refcount: int(old)}
		}
		if bh.refcount.CompareAndSwap(old, old-1) {
			return nil
		}
	}
}

// Refcount returns the current reference count.
func (bh *BufferHead) Refcount() int { return int(bh.refcount.Load()) }

// lruList is a typed intrusive LRU list of buffer heads (front =
// most recent). Links live inside BufferHead, so traversal and
// removal never cast through an any-typed container element.
type lruList struct {
	front, back *BufferHead
}

func (l *lruList) pushFront(bh *BufferHead) {
	bh.lruPrev = nil
	bh.lruNext = l.front
	if l.front != nil {
		l.front.lruPrev = bh
	}
	l.front = bh
	if l.back == nil {
		l.back = bh
	}
}

func (l *lruList) remove(bh *BufferHead) {
	if bh.lruPrev != nil {
		bh.lruPrev.lruNext = bh.lruNext
	} else {
		l.front = bh.lruNext
	}
	if bh.lruNext != nil {
		bh.lruNext.lruPrev = bh.lruPrev
	} else {
		l.back = bh.lruPrev
	}
	bh.lruPrev, bh.lruNext = nil, nil
}

func (l *lruList) moveToFront(bh *BufferHead) {
	if l.front == bh {
		return
	}
	l.remove(bh)
	l.pushFront(bh)
}

func (l *lruList) init() { l.front, l.back = nil, nil }

// cacheShard is one stripe of the cache: the buffers hashed to it,
// their LRU order, and the dirty subset.
type cacheShard struct {
	mu      sync.Mutex
	buffers map[uint64]*BufferHead
	lru     lruList
	dirty   map[uint64]*BufferHead

	hits      uint64
	misses    uint64
	writeback uint64
	evictions uint64
}

// Cache is the buffer cache over one block device.
type Cache struct {
	dev          *blockdev.Device
	maxBufs      int           // cache-wide capacity (0 = unbounded)
	size         atomic.Int64  // total buffers across shards
	overReleases atomic.Uint64 // Put calls rejected with OverReleaseError

	// engine, when set, switches SyncDirty to async writeback: every
	// dirty buffer is submitted before the first completion is waited
	// on, with one barrier closing the batch.
	engine atomic.Pointer[kio.Engine]

	// boundary, when installed, wraps the public cache operations in a
	// crash-containment compartment (see boundary.go).
	boundary atomic.Pointer[boundaryBox]

	shards [NumShards]cacheShard
}

// SetEngine routes SyncDirty through the kio engine (nil restores the
// synchronous plug path). The engine must drive the cache's device.
func (c *Cache) SetEngine(e *kio.Engine) { c.engine.Store(e) }

// CacheStats counts cache activity.
type CacheStats struct {
	Hits         uint64
	Misses       uint64
	Writeback    uint64
	Evictions    uint64
	OverReleases uint64 // Put calls rejected with OverReleaseError
}

// NewCache creates a cache over dev holding at most maxBufs buffers
// (0 means unbounded).
func NewCache(dev *blockdev.Device, maxBufs int) *Cache {
	c := &Cache{dev: dev, maxBufs: maxBufs}
	for i := range c.shards {
		c.shards[i].buffers = make(map[uint64]*BufferHead)
		c.shards[i].dirty = make(map[uint64]*BufferHead)
	}
	return c
}

func (c *Cache) shard(block uint64) *cacheShard {
	return &c.shards[block%NumShards]
}

// Device returns the underlying block device.
func (c *Cache) Device() *blockdev.Device { return c.dev }

// CollectMetrics enumerates the cache counters for the ktrace metrics
// registry (register with m.Register("bufcache", c.CollectMetrics)).
func (c *Cache) CollectMetrics(emit func(name string, value uint64)) {
	st := c.Stats()
	emit("hits", st.Hits)
	emit("misses", st.Misses)
	emit("writeback", st.Writeback)
	emit("evictions", st.Evictions)
	emit("over_releases", st.OverReleases)
	emit("cached", uint64(c.Cached()))
	emit("dirty", uint64(c.DirtyCount()))
}

// Stats returns a snapshot of cache counters. It is the legacy shim
// over the same counters CollectMetrics registers on the unified
// metrics plane.
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Writeback += s.writeback
		st.Evictions += s.evictions
		s.mu.Unlock()
	}
	st.OverReleases = c.overReleases.Load()
	return st
}

// doGetBlk returns the buffer for block without reading it from disk
// (getblk). The returned buffer holds a new reference.
func (c *Cache) doGetBlk(block uint64) (*BufferHead, kbase.Errno) {
	if block >= c.dev.Blocks() {
		return nil, kbase.EINVAL
	}
	s := c.shard(block)
	s.mu.Lock()
	if bh, ok := s.buffers[block]; ok {
		s.hits++
		bh.refcount.Add(1)
		s.lru.moveToFront(bh)
		s.mu.Unlock()
		tpGet.Emit(0, block, 1)
		return bh, kbase.EOK
	}
	s.misses++
	tpGet.Emit(0, block, 0)
	if c.maxBufs > 0 && int(c.size.Load()) >= c.maxBufs {
		if !c.evictOneLocked(s) {
			// Nothing evictable in this block's shard; hunt the
			// others without holding our shard lock.
			s.mu.Unlock()
			if !c.evictAnyShard() {
				return nil, kbase.ENOBUFS
			}
			s.mu.Lock()
			if bh, ok := s.buffers[block]; ok {
				// Someone else cached it while we hunted.
				bh.refcount.Add(1)
				s.lru.moveToFront(bh)
				s.mu.Unlock()
				return bh, kbase.EOK
			}
		}
	}
	bh := &BufferHead{
		Block: block,
		Data:  make([]byte, c.dev.BlockSize()),
		cache: c,
	}
	bh.refcount.Store(1)
	s.lru.pushFront(bh)
	s.buffers[block] = bh
	c.size.Add(1)
	s.mu.Unlock()
	return bh, kbase.EOK
}

// evictOneLocked evicts one clean unreferenced buffer from s's LRU
// tail. Caller holds s.mu.
func (c *Cache) evictOneLocked(s *cacheShard) bool {
	for bh := s.lru.back; bh != nil; bh = bh.lruPrev {
		if bh.refcount.Load() == 0 && !bh.Dirty() {
			s.lru.remove(bh)
			delete(s.buffers, bh.Block)
			s.evictions++
			c.size.Add(-1)
			return true
		}
	}
	return false
}

// evictAnyShard tries each shard in turn until one eviction succeeds.
// Caller holds no shard lock.
func (c *Cache) evictAnyShard() bool {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		ok := c.evictOneLocked(s)
		s.mu.Unlock()
		if ok {
			return true
		}
	}
	return false
}

// doBread returns an uptodate buffer for block, reading from disk if
// necessary (bread).
func (c *Cache) doBread(block uint64) (*BufferHead, kbase.Errno) {
	return c.doBreadCtx(nil, block)
}

func (c *Cache) doBreadCtx(task *kbase.Task, block uint64) (*BufferHead, kbase.Errno) {
	bh, err := c.doGetBlk(block)
	if err != kbase.EOK {
		return nil, err
	}
	if !bh.Uptodate() {
		if err := c.fill(task, bh); err != kbase.EOK {
			_ = bh.Put() // brelse-style release; over-release is already oopsed
			return nil, err
		}
	}
	return bh, kbase.EOK
}

// fill reads a missed block in from the device — the op the
// bufcache:fill histogram times. Serialized per buffer so two tasks
// missing on the same block do not both copy from the device.
func (c *Cache) fill(task *kbase.Task, bh *BufferHead) kbase.Errno {
	t := opFill.Begin(task)
	defer t.End()
	bh.ioMu.Lock()
	defer bh.ioMu.Unlock()
	if bh.Uptodate() { // recheck: a racing Bread may have filled it
		return kbase.EOK
	}
	if err := c.dev.Read(bh.Block, bh.Data); err != kbase.EOK {
		return err
	}
	bh.SetFlag(BHUptodate | BHMapped | BHReq)
	return kbase.EOK
}

// noteDirty puts bh on the dirty list.
func (c *Cache) noteDirty(bh *BufferHead) {
	s := c.shard(bh.Block)
	s.mu.Lock()
	s.dirty[bh.Block] = bh
	s.mu.Unlock()
}

// doWriteBuffer synchronously writes one buffer to disk and clears its
// dirty bit (sync_dirty_buffer for a single bh).
func (c *Cache) doWriteBuffer(bh *BufferHead) kbase.Errno {
	if !bh.TestFlag(BHMapped) && !bh.TestFlag(BHNew) {
		// Writing an unmapped buffer is the classic flag-protocol
		// violation; Linux would hit a BUG in submit_bh.
		kbase.Oops(kbase.OopsSemantic, "bufcache",
			"submit of unmapped buffer %d (flags %04x)", bh.Block, bh.Flags())
		return kbase.EINVAL
	}
	if err := c.dev.Write(bh.Block, bh.Data); err != kbase.EOK {
		bh.SetFlag(BHWriteEIO)
		return err
	}
	bh.ClearFlag(BHDirty | BHNew)
	bh.SetFlag(BHReq)
	s := c.shard(bh.Block)
	s.mu.Lock()
	delete(s.dirty, bh.Block)
	s.writeback++
	s.mu.Unlock()
	tpWriteback.Emit(0, bh.Block, 0)
	return kbase.EOK
}

// doSyncDirty writes all dirty buffers and issues a device flush
// barrier (sync_dirty_buffers + blkdev_issue_flush). The writes are
// submitted through a device plug so each device shard's lock is
// taken once for the whole batch.
func (c *Cache) doSyncDirty() kbase.Errno {
	return c.doSyncDirtyCtx(nil)
}

func (c *Cache) doSyncDirtyCtx(task *kbase.Task) kbase.Errno {
	var toWrite []*BufferHead
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, bh := range s.dirty {
			toWrite = append(toWrite, bh)
		}
		s.mu.Unlock()
	}
	if e := c.engine.Load(); e != nil {
		return c.syncDirtyAsync(task, e, toWrite)
	}
	var firstErr kbase.Errno = kbase.EOK
	plug := c.dev.Plug()
	queued := make([]*BufferHead, 0, len(toWrite))
	for _, bh := range toWrite {
		if !bh.TestFlag(BHMapped) && !bh.TestFlag(BHNew) {
			kbase.Oops(kbase.OopsSemantic, "bufcache",
				"submit of unmapped buffer %d (flags %04x)", bh.Block, bh.Flags())
			if firstErr == kbase.EOK {
				firstErr = kbase.EINVAL
			}
			continue
		}
		if err := plug.Write(bh.Block, bh.Data); err != kbase.EOK {
			if firstErr == kbase.EOK {
				firstErr = err
			}
			continue
		}
		queued = append(queued, bh)
	}
	results, _ := plug.Unplug()
	for i, bh := range queued {
		if results[i] != kbase.EOK {
			bh.SetFlag(BHWriteEIO)
			if firstErr == kbase.EOK {
				firstErr = results[i]
			}
			continue
		}
		bh.ClearFlag(BHDirty | BHNew)
		bh.SetFlag(BHReq)
		s := c.shard(bh.Block)
		s.mu.Lock()
		delete(s.dirty, bh.Block)
		s.writeback++
		s.mu.Unlock()
		tpWriteback.Emit(0, bh.Block, 0)
	}
	if err := c.dev.Flush(); err != kbase.EOK && firstErr == kbase.EOK {
		firstErr = err
	}
	return firstErr
}

// syncDirtyAsync is SyncDirty's engine path: every dirty buffer is
// submitted (incrementally, so the workers start writing while later
// buffers are still being flag-checked) before any completion is
// reaped, and one barrier SQE replaces the trailing device flush.
func (c *Cache) syncDirtyAsync(task *kbase.Task, e *kio.Engine, toWrite []*BufferHead) kbase.Errno {
	bt := kio.OpBatch.Begin(task)
	defer bt.End()
	var firstErr kbase.Errno = kbase.EOK
	b := e.NewBatch()
	queued := make([]*BufferHead, 0, len(toWrite))
	for _, bh := range toWrite {
		if !bh.TestFlag(BHMapped) && !bh.TestFlag(BHNew) {
			kbase.Oops(kbase.OopsSemantic, "bufcache",
				"submit of unmapped buffer %d (flags %04x)", bh.Block, bh.Flags())
			if firstErr == kbase.EOK {
				firstErr = kbase.EINVAL
			}
			continue
		}
		if err := b.Write(bh.Block, bh.Data, uint64(len(queued))); err != kbase.EOK {
			if firstErr == kbase.EOK {
				firstErr = err
			}
			continue
		}
		queued = append(queued, bh)
		b.Submit()
	}
	b.Barrier(0)
	for _, cqe := range b.Submit().Wait() {
		if cqe.Op == kio.OpFlush {
			if cqe.Err != kbase.EOK && firstErr == kbase.EOK {
				firstErr = cqe.Err
			}
			continue
		}
		bh := queued[cqe.User]
		if cqe.Err != kbase.EOK {
			bh.SetFlag(BHWriteEIO)
			if firstErr == kbase.EOK {
				firstErr = cqe.Err
			}
			continue
		}
		bh.ClearFlag(BHDirty | BHNew)
		bh.SetFlag(BHReq)
		s := c.shard(bh.Block)
		s.mu.Lock()
		delete(s.dirty, bh.Block)
		s.writeback++
		s.mu.Unlock()
		tpWriteback.Emit(0, bh.Block, 0)
	}
	return firstErr
}

// DirtyCount returns the number of dirty buffers.
func (c *Cache) DirtyCount() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.dirty)
		s.mu.Unlock()
	}
	return n
}

// Forget drops a buffer from the cache without writing it
// (bforget) — used by the journal for revoked blocks.
func (c *Cache) Forget(bh *BufferHead) {
	bh.ClearFlag(BHDirty)
	s := c.shard(bh.Block)
	s.mu.Lock()
	delete(s.dirty, bh.Block)
	s.mu.Unlock()
}

// Invalidate drops every clean, unreferenced buffer; used after a
// simulated crash so stale cached state cannot mask lost writes.
// Dirty or referenced buffers are dropped too — a crash destroys RAM.
func (c *Cache) Invalidate() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.buffers = make(map[uint64]*BufferHead)
		s.dirty = make(map[uint64]*BufferHead)
		s.lru.init()
		s.mu.Unlock()
	}
	c.size.Store(0)
}

// Cached returns the number of buffers currently in the cache.
func (c *Cache) Cached() int {
	return int(c.size.Load())
}
