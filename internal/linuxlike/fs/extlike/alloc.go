package extlike

import (
	"safelinux/internal/linuxlike/journal"
	"safelinux/internal/linuxlike/kbase"
)

// Bitmap allocation. Both the block and inode bitmaps use the same
// journaled scan-and-set machinery. All bitmap mutations happen under
// a journal handle so that crash recovery keeps allocator state
// consistent with the structures referencing it.

// bitmapAlloc finds the first clear bit in the bitmap starting at
// device block start spanning nBlocks, with at most limit valid bits.
// It sets the bit under handle h and returns the bit index. allocMu
// serializes the scan-and-set against concurrent allocators.
func (inst *fsInstance) bitmapAlloc(task *kbase.Task, h *journal.Handle, start, nBlocks, limit uint64) (uint64, kbase.Errno) {
	inst.allocMu.Lock(task)
	defer inst.allocMu.Unlock(task)
	bs := inst.cache.Device().BlockSize()
	bitsPerBlock := uint64(bs) * 8
	for b := uint64(0); b < nBlocks; b++ {
		bh, err := inst.cache.BreadCtx(task, start+b)
		if err != kbase.EOK {
			return 0, err
		}
		base := b * bitsPerBlock
		for i := 0; i < bs; i++ {
			if bh.Data[i] == 0xFF {
				continue
			}
			for bit := 0; bit < 8; bit++ {
				idx := base + uint64(i*8+bit)
				if idx >= limit {
					_ = bh.Put() // brelse-style release; over-release is already oopsed
					return 0, kbase.ENOSPC
				}
				if bh.Data[i]&(1<<bit) == 0 {
					if err := h.GetWriteAccess(bh.Meta()); err != kbase.EOK {
						_ = bh.Put() // brelse-style release; over-release is already oopsed
						return 0, err
					}
					bh.Data[i] |= 1 << bit
					if err := h.DirtyMetadata(bh.Meta()); err != kbase.EOK {
						_ = bh.Put() // brelse-style release; over-release is already oopsed
						return 0, err
					}
					_ = bh.Put() // brelse-style release; over-release is already oopsed
					return idx, kbase.EOK
				}
			}
		}
		_ = bh.Put() // brelse-style release; over-release is already oopsed
	}
	return 0, kbase.ENOSPC
}

// bitmapFree clears bit idx in the bitmap at start, under handle h.
// Double-free of a bit is a corruption oops, as ext4 would report via
// ext4_error.
func (inst *fsInstance) bitmapFree(task *kbase.Task, h *journal.Handle, start, idx uint64) kbase.Errno {
	inst.allocMu.Lock(task)
	defer inst.allocMu.Unlock(task)
	bs := inst.cache.Device().BlockSize()
	bitsPerBlock := uint64(bs) * 8
	bh, err := inst.cache.BreadCtx(task, start+idx/bitsPerBlock)
	if err != kbase.EOK {
		return err
	}
	defer bh.Put()
	byteIdx := (idx % bitsPerBlock) / 8
	bit := byte(1 << (idx % 8))
	if bh.Data[byteIdx]&bit == 0 {
		kbase.Oops(kbase.OopsDoubleFree, "extlike", "bitmap double free of bit %d", idx)
		return kbase.EUCLEAN
	}
	if err := h.GetWriteAccess(bh.Meta()); err != kbase.EOK {
		return err
	}
	bh.Data[byteIdx] &^= bit
	return h.DirtyMetadata(bh.Meta())
}

// allocBlock allocates one data block and returns its device block
// number. The block contents are not initialized.
func (inst *fsInstance) allocBlock(task *kbase.Task, h *journal.Handle) (uint64, kbase.Errno) {
	idx, err := inst.bitmapAlloc(task, h, inst.geo.SB.BBMStart, inst.geo.SB.BBMBlocks, inst.geo.SB.TotalBlocks)
	if err != kbase.EOK {
		return 0, err
	}
	return idx, kbase.EOK
}

// freeBlock releases one data block. Freeing a metadata-area block is
// a corruption oops.
func (inst *fsInstance) freeBlock(task *kbase.Task, h *journal.Handle, block uint64) kbase.Errno {
	if block < inst.geo.SB.DataStart {
		kbase.Oops(kbase.OopsCorruption, "extlike", "freeing metadata block %d", block)
		return kbase.EUCLEAN
	}
	return inst.bitmapFree(task, h, inst.geo.SB.BBMStart, block)
}

// allocIno allocates an inode number (1-based).
func (inst *fsInstance) allocIno(task *kbase.Task, h *journal.Handle) (uint64, kbase.Errno) {
	idx, err := inst.bitmapAlloc(task, h, inst.geo.SB.IBMStart, inst.geo.SB.IBMBlocks, uint64(inst.geo.SB.InodeCount))
	if err != kbase.EOK {
		return 0, err
	}
	return idx + 1, kbase.EOK
}

// freeIno releases an inode number.
func (inst *fsInstance) freeIno(task *kbase.Task, h *journal.Handle, ino uint64) kbase.Errno {
	if ino == 0 || ino > uint64(inst.geo.SB.InodeCount) {
		return kbase.EINVAL
	}
	return inst.bitmapFree(task, h, inst.geo.SB.IBMStart, ino-1)
}

// countFreeBits scans a bitmap and counts clear bits below limit.
// Caller holds allocMu.
func (inst *fsInstance) countFreeBits(start, nBlocks, limit uint64) (uint64, kbase.Errno) {
	bs := inst.cache.Device().BlockSize()
	bitsPerBlock := uint64(bs) * 8
	var free uint64
	for b := uint64(0); b < nBlocks; b++ {
		bh, err := inst.cache.Bread(start + b)
		if err != kbase.EOK {
			return 0, err
		}
		base := b * bitsPerBlock
		for i := 0; i < bs; i++ {
			for bit := 0; bit < 8; bit++ {
				idx := base + uint64(i*8+bit)
				if idx >= limit {
					break
				}
				if bh.Data[i]&(1<<bit) == 0 {
					free++
				}
			}
		}
		_ = bh.Put() // brelse-style release; over-release is already oopsed
	}
	return free, kbase.EOK
}
