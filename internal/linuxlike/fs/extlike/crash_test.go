package extlike_test

import (
	"bytes"
	"testing"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/fs/extlike"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
)

// crashAndRemount simulates power loss (no cached writes survive) and
// mounts a fresh instance, which runs journal recovery.
func crashAndRemount(t *testing.T, dev *blockdev.Device, fs *extlike.FS) (*vfs.VFS, *kbase.Task) {
	t.Helper()
	dev.CrashApplyNone()
	return mount(t, dev, fs)
}

// TestMetadataSurvivesCrash: every namespace operation commits its
// transaction, so after a crash the journal replays it even though
// the home locations were never flushed.
func TestMetadataSurvivesCrash(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	v.Mkdir(task, "/dir")
	writeFile(t, v, task, "/dir/f", []byte("hello"))

	v2, task2 := crashAndRemount(t, dev, &extlike.FS{})
	st, err := v2.Stat(task2, "/dir/f")
	if err != kbase.EOK {
		t.Fatalf("file missing after crash+recovery: %v", err)
	}
	if st.Size != 5 {
		t.Fatalf("size after recovery = %d", st.Size)
	}
}

// TestDataRequiresFsync documents writeback semantics: file data that
// was never fsynced may be lost even when the metadata survived.
func TestDataRequiresFsync(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})

	// File 1: fsynced — data must survive.
	fd, _ := v.Open(task, "/synced", vfs.OWrOnly|vfs.OCreate)
	v.Write(task, fd, []byte("durable"))
	if err := v.Fsync(task, fd); err != kbase.EOK {
		t.Fatalf("Fsync: %v", err)
	}
	v.Close(fd)

	// File 2: not fsynced — metadata (size) survives via the journal,
	// data blocks may be stale.
	writeFile(t, v, task, "/unsynced", []byte("volatile"))

	v2, task2 := crashAndRemount(t, dev, &extlike.FS{})
	if got := readFile(t, v2, task2, "/synced"); string(got) != "durable" {
		t.Fatalf("fsynced data lost: %q", got)
	}
	st, err := v2.Stat(task2, "/unsynced")
	if err != kbase.EOK {
		t.Fatalf("unsynced file metadata lost: %v", err)
	}
	if st.Size != 8 {
		t.Fatalf("unsynced size = %d", st.Size)
	}
	// Its data is allowed to be anything (stale block content); the
	// read must simply not crash.
	fd2, _ := v2.Open(task2, "/unsynced", vfs.ORdOnly)
	buf := make([]byte, 8)
	if _, err := v2.Read(task2, fd2, buf); err != kbase.EOK {
		t.Fatalf("read of unsynced file: %v", err)
	}
}

// TestUnlinkSurvivesCrash: a committed unlink stays unlinked.
func TestUnlinkSurvivesCrash(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	writeFile(t, v, task, "/doomed", []byte("x"))
	v.SyncAll(task)
	if err := v.Unlink(task, "/doomed"); err != kbase.EOK {
		t.Fatalf("Unlink: %v", err)
	}
	v2, task2 := crashAndRemount(t, dev, &extlike.FS{})
	if _, err := v2.Stat(task2, "/doomed"); err != kbase.ENOENT {
		t.Fatalf("unlinked file resurrected: %v", err)
	}
}

// TestRenameAtomicUnderCrash: after a crash, exactly one of the two
// names exists.
func TestRenameAtomicUnderCrash(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	writeFile(t, v, task, "/old", []byte("content"))
	v.SyncAll(task)
	if err := v.Rename(task, "/old", "/new"); err != kbase.EOK {
		t.Fatalf("Rename: %v", err)
	}
	v2, task2 := crashAndRemount(t, dev, &extlike.FS{})
	_, errOld := v2.Stat(task2, "/old")
	_, errNew := v2.Stat(task2, "/new")
	oldThere := errOld == kbase.EOK
	newThere := errNew == kbase.EOK
	if oldThere == newThere {
		t.Fatalf("rename not atomic: old=%v new=%v", errOld, errNew)
	}
}

// TestSkipJournalLosesMetadata: the injected crash-consistency bug —
// without journaling, a crash before writeback loses the creation.
func TestSkipJournalLosesMetadata(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{SkipJournal: true})
	writeFile(t, v, task, "/ghost", []byte("boo"))
	// No sync. Crash.
	v2, task2 := crashAndRemount(t, dev, &extlike.FS{})
	if _, err := v2.Stat(task2, "/ghost"); err != kbase.ENOENT {
		t.Fatalf("SkipJournal still durable?! err=%v", err)
	}
}

// TestSkipJournalSurvivesWithSync: with an explicit SyncFS the
// buggy variant still persists (writeback path), so the bug is
// invisible without a crash — which is the paper's point about
// testing being insufficient.
func TestSkipJournalSurvivesWithSync(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{SkipJournal: true})
	writeFile(t, v, task, "/visible", []byte("ok"))
	if err := v.SyncAll(task); err != kbase.EOK {
		t.Fatalf("SyncAll: %v", err)
	}
	v2, task2 := crashAndRemount(t, dev, &extlike.FS{})
	if _, err := v2.Stat(task2, "/visible"); err != kbase.EOK {
		t.Fatalf("synced file lost: %v", err)
	}
}

// TestRandomCrashConsistency runs a deterministic random crash (some
// cached writes applied, some torn) and checks the file system still
// mounts and serves synced data.
func TestRandomCrashConsistency(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		dev := blockdev.New(blockdev.Config{Blocks: 512, BlockSize: testBS, Rng: kbase.NewRng(seed)})
		if _, err := extlike.Mkfs(dev, extlike.MkfsOptions{}); err != kbase.EOK {
			t.Fatalf("Mkfs: %v", err)
		}
		v, task := mount(t, dev, &extlike.FS{})
		writeFile(t, v, task, "/stable", patterned(testBS*2, byte(seed)))
		v.SyncAll(task)
		// Unsynced churn.
		v.Mkdir(task, "/churn")
		writeFile(t, v, task, "/churn/a", []byte("aa"))
		v.Rename(task, "/churn/a", "/churn/b")

		dev.Crash() // random subset applied, possibly torn
		v2, task2 := mount(t, dev, &extlike.FS{})
		if got := readFile(t, v2, task2, "/stable"); !bytes.Equal(got, patterned(testBS*2, byte(seed))) {
			t.Fatalf("seed %d: synced data corrupted", seed)
		}
	}
}

// TestCrashDuringManyOps stresses recovery with a longer committed
// history than the journal can hold at once (forcing mid-stream
// checkpoints).
func TestCrashDuringManyOps(t *testing.T) {
	dev := newDevice(t, 1024)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	for i := 0; i < 30; i++ {
		name := "/file-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		writeFile(t, v, task, name, patterned(64, byte(i)))
	}
	v2, task2 := crashAndRemount(t, dev, &extlike.FS{})
	ents, err := v2.ReadDir(task2, "/")
	if err != kbase.EOK {
		t.Fatalf("ReadDir after crash: %v", err)
	}
	if len(ents) != 30 {
		t.Fatalf("entries after crash = %d, want 30", len(ents))
	}
}
