package extlike

import (
	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/bufcache"
	"safelinux/internal/linuxlike/journal"
	"safelinux/internal/linuxlike/kbase"
)

// MkfsOptions configures Mkfs.
type MkfsOptions struct {
	InodeCount uint32 // default: one inode per 4 data blocks
	JournalLen uint64 // default: max(8, 1/16 of device)
}

// Mkfs formats dev with an empty extlike file system and returns the
// geometry. The root directory is created with no entries.
func Mkfs(dev *blockdev.Device, opts MkfsOptions) (Geometry, kbase.Errno) {
	total := dev.Blocks()
	if opts.InodeCount == 0 {
		ic := total / 4
		if ic < 16 {
			ic = 16
		}
		if ic > 1<<20 {
			ic = 1 << 20
		}
		opts.InodeCount = uint32(ic)
	}
	if opts.JournalLen == 0 {
		opts.JournalLen = total / 16
		if opts.JournalLen < 8 {
			opts.JournalLen = 8
		}
	}
	geo, ok := ComputeGeometry(total, uint32(dev.BlockSize()), opts.InodeCount, opts.JournalLen)
	if !ok {
		return Geometry{}, kbase.EINVAL
	}
	sb := &geo.SB
	bs := int(sb.BlockSize)

	// Superblock.
	buf := make([]byte, bs)
	sb.encode(buf)
	if err := dev.Write(0, buf); err != kbase.EOK {
		return Geometry{}, err
	}

	// Block bitmap: everything below DataStart is in use.
	if err := writeBitmap(dev, sb.BBMStart, sb.BBMBlocks, bs, sb.DataStart); err != kbase.EOK {
		return Geometry{}, err
	}
	// Inode bitmap: root inode (bit 0) in use.
	if err := writeBitmap(dev, sb.IBMStart, sb.IBMBlocks, bs, 1); err != kbase.EOK {
		return Geometry{}, err
	}
	// Inode table: zero everything, then the root directory inode.
	zero := make([]byte, bs)
	for i := uint64(0); i < sb.ITabBlocks; i++ {
		if err := dev.Write(sb.ITabStart+i, zero); err != kbase.EOK {
			return Geometry{}, err
		}
	}
	root := diskInode{Mode: uint16(modeDirDisk), Nlink: 2, Size: 0}
	itBuf := make([]byte, bs)
	if err := dev.Read(sb.ITabStart, itBuf); err != kbase.EOK {
		return Geometry{}, err
	}
	root.encode(itBuf[0:DiskInodeSize])
	if err := dev.Write(sb.ITabStart, itBuf); err != kbase.EOK {
		return Geometry{}, err
	}
	if err := dev.Flush(); err != kbase.EOK {
		return Geometry{}, err
	}

	// Journal superblock.
	cache := bufcache.NewCache(dev, 0)
	j := journal.New(cache, sb.JournalStart, sb.JournalLen)
	if err := j.Format(); err != kbase.EOK {
		return Geometry{}, err
	}
	return geo, kbase.EOK
}

// writeBitmap writes a bitmap with the first usedPrefix bits set.
func writeBitmap(dev *blockdev.Device, start, blocks uint64, bs int, usedPrefix uint64) kbase.Errno {
	bitsPerBlock := uint64(bs) * 8
	for b := uint64(0); b < blocks; b++ {
		buf := make([]byte, bs)
		base := b * bitsPerBlock
		for bit := uint64(0); bit < bitsPerBlock; bit++ {
			if base+bit < usedPrefix {
				buf[bit/8] |= 1 << (bit % 8)
			}
		}
		if err := dev.Write(start+b, buf); err != kbase.EOK {
			return err
		}
	}
	return kbase.EOK
}

// Disk mode bits (distinct from vfs.FileMode to keep the on-disk
// format self-contained).
const (
	modeRegDisk uint16 = 1
	modeDirDisk uint16 = 2
)
