package extlike

import (
	"fmt"
	"strings"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/bufcache"
	"safelinux/internal/linuxlike/journal"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
)

// Offline consistency checking (e2fsck for the simulated kernel).
// Fsck replays the journal, walks the directory tree from the root
// inode marking every reachable inode and block, and cross-checks the
// reachability sets against the allocation bitmaps. The two
// interesting divergences mirror real fsck findings:
//
//   - leaked: marked allocated but unreachable (the LeakOnUnlink bug
//     class, CWE-401 at the FS level);
//   - lost: reachable but marked free (double-allocation corruption
//     waiting to happen).

// FsckReport is the result of one check.
type FsckReport struct {
	Inodes        uint64 // reachable inodes (incl. root)
	Blocks        uint64 // reachable data+indirect blocks
	LeakedBlocks  []uint64
	LostBlocks    []uint64
	LeakedInodes  []uint64
	LostInodes    []uint64
	Problems      []string // structural corruption descriptions
	JournalReplay int
}

// Clean reports whether the volume is fully consistent.
func (r FsckReport) Clean() bool {
	return len(r.LeakedBlocks) == 0 && len(r.LostBlocks) == 0 &&
		len(r.LeakedInodes) == 0 && len(r.LostInodes) == 0 && len(r.Problems) == 0
}

// Summary renders a one-line verdict plus details.
func (r FsckReport) Summary() string {
	var b strings.Builder
	verdict := "clean"
	if !r.Clean() {
		verdict = "INCONSISTENT"
	}
	fmt.Fprintf(&b, "fsck: %s — %d inodes, %d blocks reachable, %d journal txns replayed\n",
		verdict, r.Inodes, r.Blocks, r.JournalReplay)
	if n := len(r.LeakedBlocks); n > 0 {
		fmt.Fprintf(&b, "  %d leaked blocks (allocated, unreachable): %v\n", n, clip(r.LeakedBlocks))
	}
	if n := len(r.LostBlocks); n > 0 {
		fmt.Fprintf(&b, "  %d lost blocks (reachable, marked free): %v\n", n, clip(r.LostBlocks))
	}
	if n := len(r.LeakedInodes); n > 0 {
		fmt.Fprintf(&b, "  %d leaked inodes: %v\n", n, clip(r.LeakedInodes))
	}
	if n := len(r.LostInodes); n > 0 {
		fmt.Fprintf(&b, "  %d lost inodes: %v\n", n, clip(r.LostInodes))
	}
	for _, p := range r.Problems {
		fmt.Fprintf(&b, "  problem: %s\n", p)
	}
	return b.String()
}

func clip(v []uint64) []uint64 {
	if len(v) > 8 {
		return v[:8]
	}
	return v
}

// Fsck checks the extlike volume on dev. The device must not be
// mounted. The journal is replayed first so the check sees the
// post-recovery state, exactly as e2fsck does.
func Fsck(dev *blockdev.Device) (FsckReport, kbase.Errno) {
	var rep FsckReport
	cache := bufcache.NewCache(dev, 0)
	sbBuf := make([]byte, dev.BlockSize())
	if err := dev.Read(0, sbBuf); err != kbase.EOK {
		return rep, err
	}
	var geo Geometry
	if err := geo.SB.decode(sbBuf); err != kbase.EOK {
		return rep, err
	}
	jnl := journal.New(cache, geo.SB.JournalStart, geo.SB.JournalLen)
	replayed, err := jnl.Recover()
	if err != kbase.EOK {
		return rep, err
	}
	rep.JournalReplay = replayed

	inst := &fsInstance{
		fs: &FS{}, cache: cache, jnl: jnl, geo: geo,
		inodes: make(map[uint64]*vfs.Inode),
	}

	// Phase 1: walk the tree, marking reachable inodes and blocks.
	reachableIno := map[uint64]bool{geo.SB.RootIno: true}
	reachableBlk := map[uint64]bool{}
	queue := []uint64{geo.SB.RootIno}
	for len(queue) > 0 {
		ino := queue[0]
		queue = queue[1:]
		di, err := inst.readDiskInode(ino)
		if err != kbase.EOK {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d unreadable: %v", ino, err))
			continue
		}
		if di.Nlink == 0 && ino != geo.SB.RootIno {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("inode %d reachable but nlink=0", ino))
		}
		ei := &einode{ino: ino, di: di}
		// Mark the inode's blocks (direct, indirect tree).
		if err := inst.markBlocks(ei, reachableBlk, &rep); err != kbase.EOK {
			return rep, err
		}
		if di.Mode != modeDirDisk {
			continue
		}
		ents, err := inst.readDir(nil, ei)
		if err != kbase.EOK {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("directory %d unreadable: %v", ino, err))
			continue
		}
		for _, e := range ents {
			if e.Ino == 0 || e.Ino > uint64(geo.SB.InodeCount) {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("directory %d entry %q points at bad inode %d", ino, e.Name, e.Ino))
				continue
			}
			if !reachableIno[e.Ino] {
				reachableIno[e.Ino] = true
				queue = append(queue, e.Ino)
			}
		}
	}
	rep.Inodes = uint64(len(reachableIno))
	rep.Blocks = uint64(len(reachableBlk))

	// Phase 2: cross-check the bitmaps.
	for blk := geo.SB.DataStart; blk < geo.SB.TotalBlocks; blk++ {
		marked, err := inst.bitmapTest(geo.SB.BBMStart, blk)
		if err != kbase.EOK {
			return rep, err
		}
		switch {
		case marked && !reachableBlk[blk]:
			rep.LeakedBlocks = append(rep.LeakedBlocks, blk)
		case !marked && reachableBlk[blk]:
			rep.LostBlocks = append(rep.LostBlocks, blk)
		}
	}
	for ino := uint64(1); ino <= uint64(geo.SB.InodeCount); ino++ {
		marked, err := inst.bitmapTest(geo.SB.IBMStart, ino-1)
		if err != kbase.EOK {
			return rep, err
		}
		switch {
		case marked && !reachableIno[ino]:
			rep.LeakedInodes = append(rep.LeakedInodes, ino)
		case !marked && reachableIno[ino]:
			rep.LostInodes = append(rep.LostInodes, ino)
		}
	}
	return rep, kbase.EOK
}

// markBlocks records every block an inode references, flagging
// double-references (two files claiming one block).
func (inst *fsInstance) markBlocks(ei *einode, seen map[uint64]bool, rep *FsckReport) kbase.Errno {
	mark := func(blk uint64) {
		if blk == 0 {
			return
		}
		if blk < inst.geo.SB.DataStart || blk >= inst.geo.SB.TotalBlocks {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("inode %d references out-of-area block %d", ei.ino, blk))
			return
		}
		if seen[blk] {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("block %d multiply referenced (inode %d)", blk, ei.ino))
			return
		}
		seen[blk] = true
	}
	for _, blk := range ei.di.Direct {
		mark(blk)
	}
	if ei.di.Indirect != 0 {
		mark(ei.di.Indirect)
		ibh, err := inst.cache.Bread(ei.di.Indirect)
		if err != kbase.EOK {
			return err
		}
		ptrs := int(inst.geo.SB.BlockSize) / 8
		for i := 0; i < ptrs; i++ {
			mark(leU64(ibh.Data[i*8:]))
		}
		_ = ibh.Put() // brelse-style release; over-release is already oopsed
	}
	return kbase.EOK
}

// bitmapTest reads one bit of a bitmap rooted at start.
func (inst *fsInstance) bitmapTest(start, idx uint64) (bool, kbase.Errno) {
	bs := inst.cache.Device().BlockSize()
	bitsPerBlock := uint64(bs) * 8
	bh, err := inst.cache.Bread(start + idx/bitsPerBlock)
	if err != kbase.EOK {
		return false, err
	}
	defer bh.Put()
	byteIdx := (idx % bitsPerBlock) / 8
	return bh.Data[byteIdx]&(1<<(idx%8)) != 0, kbase.EOK
}
