package extlike_test

import (
	"strings"
	"testing"

	"safelinux/internal/linuxlike/fs/extlike"
	"safelinux/internal/linuxlike/kbase"
)

func TestFsckCleanVolume(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	v.Mkdir(task, "/d")
	writeFile(t, v, task, "/d/f", patterned(testBS*3, 1))
	writeFile(t, v, task, "/big", patterned(testBS*12, 2)) // uses indirect
	if err := v.Unmount(task, "/"); err != kbase.EOK {
		t.Fatalf("Unmount: %v", err)
	}
	rep, err := extlike.Fsck(dev)
	if err != kbase.EOK {
		t.Fatalf("Fsck: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("clean volume flagged:\n%s", rep.Summary())
	}
	if rep.Inodes != 4 { // root, /d, /d/f, /big
		t.Fatalf("reachable inodes = %d", rep.Inodes)
	}
	if !strings.Contains(rep.Summary(), "clean") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

func TestFsckDetectsLeakedBlocks(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{LeakOnUnlink: true})
	writeFile(t, v, task, "/doomed", patterned(testBS*4, 3))
	if err := v.Unlink(task, "/doomed"); err != kbase.EOK {
		t.Fatalf("Unlink: %v", err)
	}
	v.Unmount(task, "/")
	rep, err := extlike.Fsck(dev)
	if err != kbase.EOK {
		t.Fatalf("Fsck: %v", err)
	}
	if rep.Clean() {
		t.Fatalf("leak not detected")
	}
	if len(rep.LeakedBlocks) < 4 {
		t.Fatalf("leaked blocks = %d, want >= 4", len(rep.LeakedBlocks))
	}
	if !strings.Contains(rep.Summary(), "leaked blocks") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

func TestFsckDetectsLostBlocks(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	writeFile(t, v, task, "/f", patterned(testBS*2, 4))
	v.Unmount(task, "/")
	// Corrupt: clear one allocated data block's bitmap bit. Find it
	// via a first fsck pass (reachable blocks are what we need).
	rep, _ := extlike.Fsck(dev)
	if !rep.Clean() {
		t.Fatalf("precondition: %s", rep.Summary())
	}
	// Clear a bit in the block bitmap region directly: read the
	// geometry, flip the first data-area bit that is set.
	geo, err := extlike.Mkfs(newDevice(t, 512), extlike.MkfsOptions{})
	if err != kbase.EOK {
		t.Fatalf("geometry probe: %v", err)
	}
	bbmStart := geo.SB.BBMStart
	dataStart := geo.SB.DataStart
	buf := make([]byte, dev.BlockSize())
	if err := dev.Read(bbmStart, buf); err != kbase.EOK {
		t.Fatalf("read bitmap: %v", err)
	}
	// Find a set bit at/after dataStart and clear it.
	cleared := false
	for bit := dataStart; bit < uint64(len(buf)*8); bit++ {
		if buf[bit/8]&(1<<(bit%8)) != 0 {
			buf[bit/8] &^= 1 << (bit % 8)
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatalf("no allocated data block found in first bitmap block")
	}
	dev.Write(bbmStart, buf)
	dev.Flush()

	rep, err = extlike.Fsck(dev)
	if err != kbase.EOK {
		t.Fatalf("Fsck: %v", err)
	}
	if len(rep.LostBlocks) == 0 {
		t.Fatalf("lost block not detected:\n%s", rep.Summary())
	}
}

func TestFsckDetectsBadDirent(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	writeFile(t, v, task, "/f", []byte("x"))
	// Corrupt the root directory: point the entry at an absurd inode.
	root, _ := v.Resolve(task, "/")
	_ = root
	v.Unmount(task, "/")

	// Rewrite root dir data on disk: easiest reliable corruption is
	// the inode table — zero the child's inode so nlink reads 0.
	geo, _ := extlike.Mkfs(newDevice(t, 512), extlike.MkfsOptions{})
	itab := geo.SB.ITabStart
	buf := make([]byte, dev.BlockSize())
	dev.Read(itab, buf)
	// Inode 2 (the file) lives at offset 128.
	for i := 128; i < 256; i++ {
		buf[i] = 0
	}
	dev.Write(itab, buf)
	dev.Flush()

	rep, err := extlike.Fsck(dev)
	if err != kbase.EOK {
		t.Fatalf("Fsck: %v", err)
	}
	if rep.Clean() {
		t.Fatalf("nlink=0 reachable inode not flagged:\n%s", rep.Summary())
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "nlink=0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems = %v", rep.Problems)
	}
}

func TestFsckAfterCrashRecovers(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	v.Mkdir(task, "/survives")
	writeFile(t, v, task, "/survives/f", []byte("data"))
	dev.CrashApplyNone() // journal has the txns, home locations don't
	rep, err := extlike.Fsck(dev)
	if err != kbase.EOK {
		t.Fatalf("Fsck: %v", err)
	}
	if rep.JournalReplay == 0 {
		t.Fatalf("fsck did not replay the journal")
	}
	if !rep.Clean() {
		t.Fatalf("post-recovery volume inconsistent:\n%s", rep.Summary())
	}
	// And the data is mountable afterwards.
	v2, task2 := mount(t, dev, &extlike.FS{})
	if _, err := v2.Stat(task2, "/survives/f"); err != kbase.EOK {
		t.Fatalf("file lost: %v", err)
	}
}

func TestFsckGarbageDevice(t *testing.T) {
	dev := newDevice(t, 64)
	if _, err := extlike.Fsck(dev); err != kbase.EUCLEAN {
		t.Fatalf("fsck of unformatted device: %v", err)
	}
}
