// Package extlike implements an ext-style journaling block file
// system for the simulated kernel: superblock, block/inode bitmaps, a
// fixed inode table, direct+single-indirect block mapping, directory
// entries stored in file data, and metadata journaling through the
// jbd2-like journal (data=writeback semantics: metadata is journaled,
// file data is written back lazily).
//
// The implementation is deliberately in the legacy style the paper
// critiques: inode private state is an untyped Inode.Private value,
// lookup returns ERR_PTR sentinels, the buffer_head flag protocol is
// manipulated by hand, and i_size is maintained by the file system on
// write paths ("maybe" under i_lock).
package extlike

import (
	"encoding/binary"

	"safelinux/internal/linuxlike/kbase"
)

// On-disk constants.
const (
	Magic         = 0x4558544C // "EXTL"
	Version       = 1
	DiskInodeSize = 128
	NumDirect     = 10
	RootIno       = 1
)

// Superblock is the on-disk superblock (block 0).
type Superblock struct {
	Magic        uint32
	Version      uint32
	TotalBlocks  uint64
	BlockSize    uint32
	InodeCount   uint32
	BBMStart     uint64 // block bitmap
	BBMBlocks    uint64
	IBMStart     uint64 // inode bitmap
	IBMBlocks    uint64
	ITabStart    uint64 // inode table
	ITabBlocks   uint64
	JournalStart uint64
	JournalLen   uint64
	DataStart    uint64
	RootIno      uint64
}

func (sb *Superblock) encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], sb.Magic)
	le.PutUint32(buf[4:], sb.Version)
	le.PutUint64(buf[8:], sb.TotalBlocks)
	le.PutUint32(buf[16:], sb.BlockSize)
	le.PutUint32(buf[20:], sb.InodeCount)
	le.PutUint64(buf[24:], sb.BBMStart)
	le.PutUint64(buf[32:], sb.BBMBlocks)
	le.PutUint64(buf[40:], sb.IBMStart)
	le.PutUint64(buf[48:], sb.IBMBlocks)
	le.PutUint64(buf[56:], sb.ITabStart)
	le.PutUint64(buf[64:], sb.ITabBlocks)
	le.PutUint64(buf[72:], sb.JournalStart)
	le.PutUint64(buf[80:], sb.JournalLen)
	le.PutUint64(buf[88:], sb.DataStart)
	le.PutUint64(buf[96:], sb.RootIno)
}

func (sb *Superblock) decode(buf []byte) kbase.Errno {
	le := binary.LittleEndian
	sb.Magic = le.Uint32(buf[0:])
	sb.Version = le.Uint32(buf[4:])
	if sb.Magic != Magic || sb.Version != Version {
		return kbase.EUCLEAN
	}
	sb.TotalBlocks = le.Uint64(buf[8:])
	sb.BlockSize = le.Uint32(buf[16:])
	sb.InodeCount = le.Uint32(buf[20:])
	sb.BBMStart = le.Uint64(buf[24:])
	sb.BBMBlocks = le.Uint64(buf[32:])
	sb.IBMStart = le.Uint64(buf[40:])
	sb.IBMBlocks = le.Uint64(buf[48:])
	sb.ITabStart = le.Uint64(buf[56:])
	sb.ITabBlocks = le.Uint64(buf[64:])
	sb.JournalStart = le.Uint64(buf[72:])
	sb.JournalLen = le.Uint64(buf[80:])
	sb.DataStart = le.Uint64(buf[88:])
	sb.RootIno = le.Uint64(buf[96:])
	return kbase.EOK
}

// diskInode is the 128-byte on-disk inode.
type diskInode struct {
	Mode     uint16
	Nlink    uint16
	Size     uint64
	Direct   [NumDirect]uint64
	Indirect uint64
}

func (di *diskInode) encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint16(buf[0:], di.Mode)
	le.PutUint16(buf[2:], di.Nlink)
	le.PutUint64(buf[8:], di.Size)
	for i := 0; i < NumDirect; i++ {
		le.PutUint64(buf[16+8*i:], di.Direct[i])
	}
	le.PutUint64(buf[16+8*NumDirect:], di.Indirect)
}

func (di *diskInode) decode(buf []byte) {
	le := binary.LittleEndian
	di.Mode = le.Uint16(buf[0:])
	di.Nlink = le.Uint16(buf[2:])
	di.Size = le.Uint64(buf[8:])
	for i := 0; i < NumDirect; i++ {
		di.Direct[i] = le.Uint64(buf[16+8*i:])
	}
	di.Indirect = le.Uint64(buf[16+8*NumDirect:])
}

// dirent is one serialized directory entry:
// ino u64, mode u16, nameLen u16, name bytes.
type dirent struct {
	Ino  uint64
	Mode uint16
	Name string
}

const direntHeader = 12

func encodeDirents(ents []dirent) []byte {
	n := 0
	for _, e := range ents {
		n += direntHeader + len(e.Name)
	}
	buf := make([]byte, n)
	off := 0
	le := binary.LittleEndian
	for _, e := range ents {
		le.PutUint64(buf[off:], e.Ino)
		le.PutUint16(buf[off+8:], e.Mode)
		le.PutUint16(buf[off+10:], uint16(len(e.Name)))
		copy(buf[off+direntHeader:], e.Name)
		off += direntHeader + len(e.Name)
	}
	return buf
}

func decodeDirents(buf []byte) ([]dirent, kbase.Errno) {
	le := binary.LittleEndian
	var ents []dirent
	off := 0
	for off < len(buf) {
		if off+direntHeader > len(buf) {
			return nil, kbase.EUCLEAN
		}
		ino := le.Uint64(buf[off:])
		mode := le.Uint16(buf[off+8:])
		nameLen := int(le.Uint16(buf[off+10:]))
		if off+direntHeader+nameLen > len(buf) {
			return nil, kbase.EUCLEAN
		}
		ents = append(ents, dirent{
			Ino:  ino,
			Mode: mode,
			Name: string(buf[off+direntHeader : off+direntHeader+nameLen]),
		})
		off += direntHeader + nameLen
	}
	return ents, kbase.EOK
}

// Geometry computes the layout for a device.
type Geometry struct {
	SB Superblock
}

// ComputeGeometry lays out a file system on a device of totalBlocks
// blocks of blockSize bytes, with inodeCount inodes and a journal of
// journalLen blocks. It returns EINVAL geometry errors via ok=false.
func ComputeGeometry(totalBlocks uint64, blockSize uint32, inodeCount uint32, journalLen uint64) (Geometry, bool) {
	if blockSize < DiskInodeSize || totalBlocks < 8 || inodeCount == 0 || journalLen < 4 {
		return Geometry{}, false
	}
	bitsPerBlock := uint64(blockSize) * 8
	bbmBlocks := (totalBlocks + bitsPerBlock - 1) / bitsPerBlock
	ibmBlocks := (uint64(inodeCount) + bitsPerBlock - 1) / bitsPerBlock
	inodesPerBlock := uint64(blockSize) / DiskInodeSize
	itabBlocks := (uint64(inodeCount) + inodesPerBlock - 1) / inodesPerBlock

	pos := uint64(1)
	sb := Superblock{
		Magic: Magic, Version: Version,
		TotalBlocks: totalBlocks, BlockSize: blockSize, InodeCount: inodeCount,
	}
	sb.BBMStart, sb.BBMBlocks = pos, bbmBlocks
	pos += bbmBlocks
	sb.IBMStart, sb.IBMBlocks = pos, ibmBlocks
	pos += ibmBlocks
	sb.ITabStart, sb.ITabBlocks = pos, itabBlocks
	pos += itabBlocks
	sb.JournalStart, sb.JournalLen = pos, journalLen
	pos += journalLen
	sb.DataStart = pos
	sb.RootIno = RootIno
	if pos >= totalBlocks {
		return Geometry{}, false
	}
	return Geometry{SB: sb}, true
}

// MaxFileSize returns the largest file the geometry supports.
func (g *Geometry) MaxFileSize() uint64 {
	ptrsPerBlock := uint64(g.SB.BlockSize) / 8
	return (NumDirect + ptrsPerBlock) * uint64(g.SB.BlockSize)
}
