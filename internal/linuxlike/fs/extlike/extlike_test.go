package extlike_test

import (
	"bytes"
	"testing"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/fs/extlike"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
)

const testBS = 512

func newDevice(t *testing.T, blocks uint64) *blockdev.Device {
	t.Helper()
	return blockdev.New(blockdev.Config{Blocks: blocks, BlockSize: testBS, Rng: kbase.NewRng(11)})
}

func mkfsAndMount(t *testing.T, dev *blockdev.Device, fs *extlike.FS) (*vfs.VFS, *kbase.Task) {
	t.Helper()
	if _, err := extlike.Mkfs(dev, extlike.MkfsOptions{}); err != kbase.EOK {
		t.Fatalf("Mkfs: %v", err)
	}
	return mount(t, dev, fs)
}

func mount(t *testing.T, dev *blockdev.Device, fs *extlike.FS) (*vfs.VFS, *kbase.Task) {
	t.Helper()
	v := vfs.New(nil)
	task := kbase.NewTask()
	if err := v.RegisterFS(fs); err != kbase.EOK {
		t.Fatalf("RegisterFS: %v", err)
	}
	if err := v.Mount(task, "/", "extlike", vfs.NewMountData(&extlike.MountData{Dev: dev})); err != kbase.EOK {
		t.Fatalf("Mount: %v", err)
	}
	return v, task
}

func writeFile(t *testing.T, v *vfs.VFS, task *kbase.Task, path string, data []byte) {
	t.Helper()
	fd, err := v.Open(task, path, vfs.OWrOnly|vfs.OCreate|vfs.OTrunc)
	if err != kbase.EOK {
		t.Fatalf("Open(%s): %v", path, err)
	}
	if n, err := v.Write(task, fd, data); err != kbase.EOK || n != len(data) {
		t.Fatalf("Write(%s) = (%d, %v)", path, n, err)
	}
	if err := v.Close(fd); err != kbase.EOK {
		t.Fatalf("Close: %v", err)
	}
}

func readFile(t *testing.T, v *vfs.VFS, task *kbase.Task, path string) []byte {
	t.Helper()
	fd, err := v.Open(task, path, vfs.ORdOnly)
	if err != kbase.EOK {
		t.Fatalf("Open(%s): %v", path, err)
	}
	defer v.Close(fd)
	st, err := v.Stat(task, path)
	if err != kbase.EOK {
		t.Fatalf("Stat(%s): %v", path, err)
	}
	buf := make([]byte, st.Size)
	if n, err := v.Read(task, fd, buf); err != kbase.EOK || int64(n) != st.Size {
		t.Fatalf("Read(%s) = (%d, %v), size %d", path, n, err, st.Size)
	}
	return buf
}

func patterned(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestMkfsGeometry(t *testing.T) {
	dev := newDevice(t, 256)
	geo, err := extlike.Mkfs(dev, extlike.MkfsOptions{})
	if err != kbase.EOK {
		t.Fatalf("Mkfs: %v", err)
	}
	sb := geo.SB
	if sb.DataStart <= sb.JournalStart || sb.JournalStart <= sb.ITabStart {
		t.Fatalf("layout out of order: %+v", sb)
	}
	if sb.TotalBlocks != 256 || sb.BlockSize != testBS {
		t.Fatalf("geometry: %+v", sb)
	}
	if geo.MaxFileSize() != (10+testBS/8)*testBS {
		t.Fatalf("MaxFileSize = %d", geo.MaxFileSize())
	}
}

func TestMkfsTooSmall(t *testing.T) {
	dev := newDevice(t, 8)
	if _, err := extlike.Mkfs(dev, extlike.MkfsOptions{JournalLen: 32}); err != kbase.EINVAL {
		t.Fatalf("Mkfs on tiny device: %v", err)
	}
}

func TestMountRejectsForeignDevice(t *testing.T) {
	dev := newDevice(t, 64)
	v := vfs.New(nil)
	task := kbase.NewTask()
	v.RegisterFS(&extlike.FS{})
	if err := v.Mount(task, "/", "extlike", vfs.NewMountData(&extlike.MountData{Dev: dev})); err != kbase.EUCLEAN {
		t.Fatalf("mount of unformatted device: %v", err)
	}
}

func TestMountDataTypeConfusion(t *testing.T) {
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	defer kbase.InstallRecorder(prev)
	v := vfs.New(nil)
	task := kbase.NewTask()
	v.RegisterFS(&extlike.FS{})
	if err := v.Mount(task, "/", "extlike", vfs.NewMountData("oops-wrong-type")); err != kbase.EINVAL {
		t.Fatalf("mount with wrong data: %v", err)
	}
	if rec.Count(kbase.OopsTypeConfusion) != 1 {
		t.Fatalf("type confusion not recorded")
	}
}

func TestSmallFileRoundTrip(t *testing.T) {
	dev := newDevice(t, 256)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	data := []byte("journaled bytes")
	writeFile(t, v, task, "/f", data)
	if got := readFile(t, v, task, "/f"); !bytes.Equal(got, data) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestLargeFileUsesIndirect(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	// > 10 direct blocks worth of data.
	data := patterned(testBS*14, 3)
	writeFile(t, v, task, "/big", data)
	if got := readFile(t, v, task, "/big"); !bytes.Equal(got, data) {
		t.Fatalf("indirect round trip mismatch (len %d vs %d)", len(got), len(data))
	}
}

func TestFileTooBig(t *testing.T) {
	dev := newDevice(t, 2048)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	fd, _ := v.Open(task, "/huge", vfs.OWrOnly|vfs.OCreate)
	maxSize := int64((10 + testBS/8) * testBS)
	if _, err := v.Pwrite(task, fd, []byte{1}, maxSize); err != kbase.EFBIG {
		t.Fatalf("write past max size: %v", err)
	}
}

func TestENOSPC(t *testing.T) {
	dev := newDevice(t, 64)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	var err kbase.Errno
	for i := 0; i < 1000; i++ {
		fd, e := v.Open(task, "/fill", vfs.OWrOnly|vfs.OCreate|vfs.OAppend)
		if e != kbase.EOK {
			err = e
			break
		}
		_, e = v.Write(task, fd, patterned(testBS, byte(i)))
		v.Close(fd)
		if e != kbase.EOK {
			err = e
			break
		}
	}
	if err != kbase.ENOSPC {
		t.Fatalf("filling device ended with %v, want ENOSPC", err)
	}
}

func TestUnlinkFreesSpace(t *testing.T) {
	dev := newDevice(t, 256)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	before, _ := v.Statfs(task, "/")
	writeFile(t, v, task, "/tmp", patterned(testBS*8, 1))
	during, _ := v.Statfs(task, "/")
	if during.FreeBlocks >= before.FreeBlocks {
		t.Fatalf("write did not consume blocks: %d -> %d", before.FreeBlocks, during.FreeBlocks)
	}
	if err := v.Unlink(task, "/tmp"); err != kbase.EOK {
		t.Fatalf("Unlink: %v", err)
	}
	after, _ := v.Statfs(task, "/")
	if after.FreeBlocks != before.FreeBlocks {
		t.Fatalf("blocks leaked: before=%d after=%d", before.FreeBlocks, after.FreeBlocks)
	}
	if after.FreeInodes != before.FreeInodes {
		t.Fatalf("inode leaked: before=%d after=%d", before.FreeInodes, after.FreeInodes)
	}
}

func TestLeakOnUnlinkInjected(t *testing.T) {
	dev := newDevice(t, 256)
	v, task := mkfsAndMount(t, dev, &extlike.FS{LeakOnUnlink: true})
	before, _ := v.Statfs(task, "/")
	writeFile(t, v, task, "/tmp", patterned(testBS*8, 1))
	v.Unlink(task, "/tmp")
	after, _ := v.Statfs(task, "/")
	if after.FreeBlocks >= before.FreeBlocks {
		t.Fatalf("injected leak did not leak: before=%d after=%d", before.FreeBlocks, after.FreeBlocks)
	}
}

func TestDirectoryOperations(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	for _, d := range []string{"/a", "/a/b", "/c"} {
		if err := v.Mkdir(task, d); err != kbase.EOK {
			t.Fatalf("Mkdir(%s): %v", d, err)
		}
	}
	writeFile(t, v, task, "/a/b/f1", []byte("one"))
	writeFile(t, v, task, "/a/f2", []byte("two"))
	ents, err := v.ReadDir(task, "/a")
	if err != kbase.EOK {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 2 || ents[0].Name != "b" || ents[1].Name != "f2" {
		t.Fatalf("ReadDir(/a) = %+v", ents)
	}
	if err := v.Rmdir(task, "/a"); err != kbase.ENOTEMPTY {
		t.Fatalf("Rmdir non-empty: %v", err)
	}
	if err := v.Unlink(task, "/a/b/f1"); err != kbase.EOK {
		t.Fatalf("Unlink: %v", err)
	}
	if err := v.Rmdir(task, "/a/b"); err != kbase.EOK {
		t.Fatalf("Rmdir: %v", err)
	}
}

func TestRenameSameAndCrossDir(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	v.Mkdir(task, "/d1")
	v.Mkdir(task, "/d2")
	writeFile(t, v, task, "/d1/f", []byte("payload"))
	// Same-dir rename.
	if err := v.Rename(task, "/d1/f", "/d1/g"); err != kbase.EOK {
		t.Fatalf("same-dir rename: %v", err)
	}
	// Cross-dir rename.
	if err := v.Rename(task, "/d1/g", "/d2/h"); err != kbase.EOK {
		t.Fatalf("cross-dir rename: %v", err)
	}
	if got := readFile(t, v, task, "/d2/h"); string(got) != "payload" {
		t.Fatalf("after rename: %q", got)
	}
	// Rename over existing file replaces it and frees the old inode.
	writeFile(t, v, task, "/d2/victim", []byte("old"))
	before, _ := v.Statfs(task, "/")
	if err := v.Rename(task, "/d2/h", "/d2/victim"); err != kbase.EOK {
		t.Fatalf("replacing rename: %v", err)
	}
	after, _ := v.Statfs(task, "/")
	if got := readFile(t, v, task, "/d2/victim"); string(got) != "payload" {
		t.Fatalf("after replacing rename: %q", got)
	}
	if after.FreeInodes != before.FreeInodes+1 {
		t.Fatalf("replaced inode not freed: %d -> %d", before.FreeInodes, after.FreeInodes)
	}
}

func TestTruncateShrinkAndGrow(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	writeFile(t, v, task, "/t", patterned(testBS*12, 5))
	before, _ := v.Statfs(task, "/")
	if err := v.Truncate(task, "/t", testBS*2); err != kbase.EOK {
		t.Fatalf("Truncate: %v", err)
	}
	after, _ := v.Statfs(task, "/")
	if after.FreeBlocks <= before.FreeBlocks {
		t.Fatalf("truncate freed nothing: %d -> %d", before.FreeBlocks, after.FreeBlocks)
	}
	got := readFile(t, v, task, "/t")
	if !bytes.Equal(got, patterned(testBS*12, 5)[:testBS*2]) {
		t.Fatalf("content after shrink wrong")
	}
	// Grow produces zeros.
	if err := v.Truncate(task, "/t", testBS*2+10); err != kbase.EOK {
		t.Fatalf("grow: %v", err)
	}
	got = readFile(t, v, task, "/t")
	if len(got) != testBS*2+10 || !bytes.Equal(got[testBS*2:], make([]byte, 10)) {
		t.Fatalf("grown tail not zero")
	}
}

func TestPersistenceAcrossCleanRemount(t *testing.T) {
	dev := newDevice(t, 512)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	v.Mkdir(task, "/keep")
	writeFile(t, v, task, "/keep/data", patterned(testBS*3, 9))
	if err := v.Unmount(task, "/"); err != kbase.EOK {
		t.Fatalf("Unmount: %v", err)
	}
	// Fresh VFS + mount on the same device.
	v2, task2 := mount(t, dev, &extlike.FS{})
	if got := readFile(t, v2, task2, "/keep/data"); !bytes.Equal(got, patterned(testBS*3, 9)) {
		t.Fatalf("data lost across remount")
	}
}

func TestConfuseWriteEndDetected(t *testing.T) {
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	defer kbase.InstallRecorder(prev)
	dev := newDevice(t, 256)
	v, task := mkfsAndMount(t, dev, &extlike.FS{ConfuseWriteEnd: true})
	fd, _ := v.Open(task, "/x", vfs.OWrOnly|vfs.OCreate)
	if _, err := v.Write(task, fd, []byte("boom")); err != kbase.EUCLEAN {
		t.Fatalf("confused write: %v", err)
	}
	if rec.Count(kbase.OopsTypeConfusion) == 0 {
		t.Fatalf("confusion not recorded")
	}
	// The file system must remain usable afterwards.
	v.Close(fd)
	v2fs := &extlike.FS{}
	_ = v2fs
	fd2, err := v.Open(task, "/y", vfs.OWrOnly|vfs.OCreate)
	if err != kbase.EOK {
		t.Fatalf("fs wedged after confusion: %v", err)
	}
	v.Close(fd2)
}

func TestStatfsCounts(t *testing.T) {
	dev := newDevice(t, 256)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	sf, err := v.Statfs(task, "/")
	if err != kbase.EOK {
		t.Fatalf("Statfs: %v", err)
	}
	if sf.FSName != "extlike" || sf.TotalBlocks != 256 {
		t.Fatalf("Statfs = %+v", sf)
	}
	if sf.FreeInodes != sf.TotalInodes-1 { // root in use
		t.Fatalf("free inodes = %d of %d", sf.FreeInodes, sf.TotalInodes)
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	dev := newDevice(t, 2048)
	v, task := mkfsAndMount(t, dev, &extlike.FS{})
	names := []string{}
	for i := 0; i < 40; i++ {
		name := "/dir-entry-with-a-reasonably-long-name-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		writeFile(t, v, task, name, []byte{byte(i)})
		names = append(names, name)
	}
	ents, err := v.ReadDir(task, "/")
	if err != kbase.EOK {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 40 {
		t.Fatalf("ReadDir found %d entries, want 40", len(ents))
	}
	for i, name := range names {
		got := readFile(t, v, task, name)
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("file %s content %v", name, got)
		}
	}
}
