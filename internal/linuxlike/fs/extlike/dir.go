package extlike

import (
	"safelinux/internal/linuxlike/journal"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
)

// Directory contents are stored as serialized dirent records in the
// directory inode's data blocks, read and rewritten wholesale. Real
// ext4 uses hashed trees; linear rewrite keeps the on-disk format
// simple while exercising the same journaling paths.

// readDir loads and decodes all entries of directory ei.
func (inst *fsInstance) readDir(task *kbase.Task, ei *einode) ([]dirent, kbase.Errno) {
	size := int(ei.di.Size)
	buf := make([]byte, size)
	n, err := inst.readFileRange(task, ei, buf, 0)
	if err != kbase.EOK {
		return nil, err
	}
	if n != size {
		return nil, kbase.EUCLEAN
	}
	return decodeDirents(buf)
}

// writeDir serializes entries into directory ei under h and updates
// its size (journaled).
func (inst *fsInstance) writeDir(task *kbase.Task, h *journal.Handle, dirVi *vfs.Inode, ei *einode, ents []dirent) kbase.Errno {
	buf := encodeDirents(ents)
	if len(buf) > 0 {
		if _, err := inst.writeFileRange(task, h, ei, buf, 0); err != kbase.EOK {
			return err
		}
	}
	oldSize := int64(ei.di.Size)
	newSize := int64(len(buf))
	if newSize < oldSize {
		if err := inst.truncateBlocks(task, h, ei, newSize); err != kbase.EOK {
			return err
		}
	}
	ei.di.Size = uint64(newSize)
	if err := inst.writeDiskInode(task, h, ei.ino, &ei.di); err != kbase.EOK {
		return err
	}
	dirVi.SizeWrite(task, newSize)
	// Directory data must be durable with the metadata that references
	// it; journal the data blocks too (directories are metadata).
	return inst.journalDirData(task, h, ei, newSize)
}

// journalDirData adds the directory's data blocks to the transaction
// so replay reconstructs directory contents.
func (inst *fsInstance) journalDirData(task *kbase.Task, h *journal.Handle, ei *einode, size int64) kbase.Errno {
	bs := int64(inst.geo.SB.BlockSize)
	for off := int64(0); off < size; off += bs {
		blk, err := inst.blockFor(task, nil, ei, uint64(off/bs), false)
		if err != kbase.EOK {
			return err
		}
		if blk == 0 {
			continue
		}
		bh, err := inst.cache.BreadCtx(task, blk)
		if err != kbase.EOK {
			return err
		}
		if err := h.GetWriteAccess(bh.Meta()); err != kbase.EOK {
			_ = bh.Put() // brelse-style release; over-release is already oopsed
			return err
		}
		if err := h.DirtyMetadata(bh.Meta()); err != kbase.EOK {
			_ = bh.Put() // brelse-style release; over-release is already oopsed
			return err
		}
		_ = bh.Put() // brelse-style release; over-release is already oopsed
	}
	return kbase.EOK
}

// dirFind returns the index of name in ents, or -1.
func dirFind(ents []dirent, name string) int {
	for i, e := range ents {
		if e.Name == name {
			return i
		}
	}
	return -1
}
