package extlike

import (
	"sync"

	"safelinux/internal/linuxlike/blockdev"
	"safelinux/internal/linuxlike/bufcache"
	"safelinux/internal/linuxlike/journal"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
	"safelinux/internal/safety/typedapi"
)

// FS is the extlike file system type. The exported knobs inject the
// legacy bug classes the fault campaigns exercise; all default off.
type FS struct {
	// LeakOnUnlink skips freeing data blocks when the last link goes
	// away — a resource-leak bug (kmemleak class).
	LeakOnUnlink bool
	// SkipJournal performs metadata updates without journaling them,
	// a crash-consistency bug invisible to normal operation.
	SkipJournal bool
	// SkipSizeLock updates i_size without i_lock on the write path
	// (§4.3's "maybe protected" pathology).
	SkipSizeLock bool
	// ConfuseWriteEnd makes WriteBegin return the wrong dynamic type
	// (§4.2's void* type-confusion pathology).
	ConfuseWriteEnd bool
}

// Name implements vfs.FileSystemType.
func (f *FS) Name() string { return "extlike" }

// MountData is what the mount data envelope must contain.
type MountData struct {
	Dev *blockdev.Device
	// CacheSize bounds the buffer cache (0 = unbounded).
	CacheSize int
}

// Lock classes for the fine-grained locking scheme. The big fs lock
// is gone; the hierarchy is
//
//	rename > dir_inode > dir_inode#1 > file_inode > alloc
//
// with the journal handle opened only after every inode lock is held
// (handle holders must never block on an inode lock, or they would
// deadlock against the journal's commit gate). The alloc lock is a
// leaf taken around bitmap scans while a handle is open.
var (
	renameClass = kbase.NewLockClass("extlike.rename")
	dirClass    = kbase.NewLockClass("extlike.dir_inode")
	fileClass   = kbase.NewLockClass("extlike.file_inode")
	allocClass  = kbase.NewLockClass("extlike.alloc")
)

// fsInstance is one mounted extlike file system.
type fsInstance struct {
	fs    *FS
	cache *bufcache.Cache
	jnl   *journal.Journal
	geo   Geometry
	vsb   *vfs.SuperBlock

	// renameMu serializes every operation that must hold more than
	// one directory-inode lock (rename, rmdir). With at most one
	// dir lock per task outside renameMu, no cycle can form at the
	// dir level — the same job s_vfs_rename_mutex does in Linux.
	renameMu *kbase.KMutex
	// allocMu guards both allocation bitmaps (scan-and-set and
	// free-bit counting).
	allocMu *kbase.KMutex

	imu    sync.Mutex // guards inodes (the icache table) only
	inodes map[uint64]*vfs.Inode
}

// Mount implements vfs.FileSystemType. data must wrap a *MountData —
// checked with the legacy any-downcast, oopsing on confusion.
func (f *FS) Mount(task *kbase.Task, data vfs.MountData) (*vfs.SuperBlock, kbase.Errno) {
	md, ok := vfs.MountDataAs[*MountData](data)
	if !ok || md.Dev == nil {
		kbase.Oops(kbase.OopsTypeConfusion, "extlike", "mount data is not *extlike.MountData")
		return nil, kbase.EINVAL
	}
	cache := bufcache.NewCache(md.Dev, md.CacheSize)
	// Superblock.
	sbBuf := make([]byte, md.Dev.BlockSize())
	if err := md.Dev.Read(0, sbBuf); err != kbase.EOK {
		return nil, err
	}
	var geo Geometry
	if err := geo.SB.decode(sbBuf); err != kbase.EOK {
		return nil, err
	}
	if geo.SB.TotalBlocks != md.Dev.Blocks() || geo.SB.BlockSize != uint32(md.Dev.BlockSize()) {
		return nil, kbase.EUCLEAN
	}
	inst := &fsInstance{
		fs:       f,
		cache:    cache,
		geo:      geo,
		renameMu: kbase.NewKMutex(renameClass),
		allocMu:  kbase.NewKMutex(allocClass),
		inodes:   make(map[uint64]*vfs.Inode),
	}
	inst.jnl = journal.New(cache, geo.SB.JournalStart, geo.SB.JournalLen)
	// Crash recovery on every mount; clean mounts replay nothing.
	if _, err := inst.jnl.Recover(); err != kbase.EOK {
		return nil, err
	}
	vsb := &vfs.SuperBlock{FSType: f.Name(), Ops: inst}
	vfs.SetSBPrivate(vsb, inst)
	inst.vsb = vsb
	root, err := inst.iget(task, geo.SB.RootIno)
	if err != kbase.EOK {
		return nil, err
	}
	vsb.Root = root
	return vsb, kbase.EOK
}

// Journal returns the instance journal (for tests and tooling).
func (inst *fsInstance) Journal() *journal.Journal { return inst.jnl }

// Cache returns the buffer cache (for tests and tooling).
func (inst *fsInstance) Cache() *bufcache.Cache { return inst.cache }

// InstanceOf extracts the fsInstance from a mounted superblock; it is
// exported for white-box tests and the fault injector.
func InstanceOf(sb *vfs.SuperBlock) (interface {
	Journal() *journal.Journal
	Cache() *bufcache.Cache
}, bool) {
	inst, ok := vfs.SBPrivateAs[*fsInstance](sb)
	return inst, ok
}

// begin opens a journal handle, or a no-op handle when SkipJournal is
// injected.
func (inst *fsInstance) begin() *journal.Handle {
	return inst.jnl.Begin()
}

// commit force-commits the running transaction, checkpointing and
// retrying once if the journal is full. The task carries the caller's
// trace into the journal's latency plane.
func (inst *fsInstance) commit(task *kbase.Task) kbase.Errno {
	if inst.fs.SkipJournal {
		// Injected bug: pretend durability without the journal.
		return kbase.EOK
	}
	err := inst.jnl.CommitCtx(task)
	if err == kbase.ENOSPC {
		if err := inst.jnl.CheckpointCtx(task); err != kbase.EOK {
			return err
		}
		err = inst.jnl.CommitCtx(task)
	}
	return err
}

// inodeOps implements vfs.TypedInodeOps: extlike is a converted file
// system, so Lookup/Create/Mkdir return typedapi.Result and no errno
// ever travels inside an inode pointer. It is wrapped with
// vfs.AdaptTyped for legacy callers.
type inodeOps struct {
	inst *fsInstance
}

func (o *inodeOps) LookupTyped(task *kbase.Task, dir *vfs.Inode, name string) typedapi.Result[*vfs.Inode] {
	inst := o.inst
	ei, err := einodeOf(dir)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	ei.lock.Lock(task)
	defer ei.lock.Unlock(task)
	ents, err := inst.readDir(task, ei)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	i := dirFind(ents, name)
	if i < 0 {
		return typedapi.Err[*vfs.Inode](kbase.ENOENT)
	}
	child, err := inst.iget(task, ents[i].Ino)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	return typedapi.Ok(child)
}

func (o *inodeOps) CreateTyped(task *kbase.Task, dir *vfs.Inode, name string, mode vfs.FileMode) typedapi.Result[*vfs.Inode] {
	if len(name) == 0 || len(name) > vfs.MaxNameLen {
		return typedapi.Err[*vfs.Inode](kbase.EINVAL)
	}
	inst := o.inst
	ei, err := einodeOf(dir)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	ei.lock.Lock(task)
	defer ei.lock.Unlock(task)
	ents, err := inst.readDir(task, ei)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	if dirFind(ents, name) >= 0 {
		return typedapi.Err[*vfs.Inode](kbase.EEXIST)
	}
	h := inst.begin()
	defer h.Stop()
	ino, err := inst.allocIno(task, h)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	diskMode, nlink := modeRegDisk, uint16(1)
	if mode.IsDir() {
		diskMode, nlink = modeDirDisk, 2
	}
	di := diskInode{Mode: diskMode, Nlink: nlink}
	if err := inst.writeDiskInode(task, h, ino, &di); err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	ents = append(ents, dirent{Ino: ino, Mode: diskMode, Name: name})
	if err := inst.writeDir(task, h, dir, ei, ents); err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	h.Stop()
	if err := inst.commit(task); err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	child, err := inst.iget(task, ino)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	return typedapi.Ok(child)
}

func (o *inodeOps) MkdirTyped(task *kbase.Task, dir *vfs.Inode, name string) typedapi.Result[*vfs.Inode] {
	return o.CreateTyped(task, dir, name, vfs.ModeDir)
}

func (o *inodeOps) Unlink(task *kbase.Task, dir *vfs.Inode, name string) kbase.Errno {
	return o.inst.removeEntry(task, dir, name, false)
}

func (o *inodeOps) Rmdir(task *kbase.Task, dir *vfs.Inode, name string) kbase.Errno {
	// Rmdir locks two directory inodes (parent then child), so it
	// must serialize against other multi-dir lockers.
	inst := o.inst
	inst.renameMu.Lock(task)
	defer inst.renameMu.Unlock(task)
	return inst.removeEntry(task, dir, name, true)
}

// removeEntry implements unlink and rmdir. For wantDir the caller
// holds renameMu (two dir locks are about to be taken).
func (inst *fsInstance) removeEntry(task *kbase.Task, dir *vfs.Inode, name string, wantDir bool) kbase.Errno {
	ei, err := einodeOf(dir)
	if err != kbase.EOK {
		return err
	}
	ei.lock.Lock(task)
	defer ei.lock.Unlock(task)
	ents, err := inst.readDir(task, ei)
	if err != kbase.EOK {
		return err
	}
	i := dirFind(ents, name)
	if i < 0 {
		return kbase.ENOENT
	}
	target := ents[i]
	isDir := target.Mode == modeDirDisk
	if wantDir && !isDir {
		return kbase.ENOTDIR
	}
	if !wantDir && isDir {
		return kbase.EISDIR
	}
	childVi, err := inst.iget(task, target.Ino)
	if err != kbase.EOK {
		return err
	}
	cei, err := einodeOf(childVi)
	if err != kbase.EOK {
		return err
	}
	if isDir {
		// Child directory nests under the parent's class.
		cei.lock.LockNested(task, 1)
	} else {
		cei.lock.Lock(task)
	}
	defer cei.lock.Unlock(task)
	if wantDir {
		sub, err := inst.readDir(task, cei)
		if err != kbase.EOK {
			return err
		}
		if len(sub) > 0 {
			return kbase.ENOTEMPTY
		}
	}

	h := inst.begin()
	defer h.Stop()
	ents = append(ents[:i], ents[i+1:]...)
	if err := inst.writeDir(task, h, dir, ei, ents); err != kbase.EOK {
		return err
	}
	if isDir {
		cei.di.Nlink = 0
	} else {
		cei.di.Nlink--
	}
	childVi.ILock.Lock(task)
	childVi.Nlink = uint32(cei.di.Nlink)
	childVi.ILock.Unlock(task)
	if cei.di.Nlink == 0 {
		if childVi.OpenCount() > 0 {
			// POSIX orphan file: live descriptors must keep reading
			// and writing until the last close, so storage reclaim
			// is deferred to Release. The dirent is gone either way.
			cei.orphan = true
		} else {
			if !inst.fs.LeakOnUnlink {
				if err := inst.freeAllBlocks(task, h, cei); err != kbase.EOK {
					return err
				}
			}
			// else: injected leak — blocks stay allocated forever.
			if err := inst.freeIno(task, h, target.Ino); err != kbase.EOK {
				return err
			}
		}
		inst.imu.Lock()
		delete(inst.inodes, target.Ino)
		inst.imu.Unlock()
	}
	if err := inst.writeDiskInode(task, h, target.Ino, &cei.di); err != kbase.EOK {
		return err
	}
	h.Stop()
	return inst.commit(task)
}

func (o *inodeOps) Rename(task *kbase.Task, oldDir *vfs.Inode, oldName string, newDir *vfs.Inode, newName string) kbase.Errno {
	if len(newName) == 0 || len(newName) > vfs.MaxNameLen {
		return kbase.EINVAL
	}
	inst := o.inst
	// All renames serialize on renameMu: they may hold two dir
	// locks at once, and no topological order between arbitrary
	// directories exists without it.
	inst.renameMu.Lock(task)
	defer inst.renameMu.Unlock(task)
	oei, err := einodeOf(oldDir)
	if err != kbase.EOK {
		return err
	}
	nei, err := einodeOf(newDir)
	if err != kbase.EOK {
		return err
	}
	sameDir := oei == nei
	oei.lock.Lock(task)
	defer oei.lock.Unlock(task)
	if !sameDir {
		nei.lock.LockNested(task, 1)
		defer nei.lock.Unlock(task)
	}
	oldEnts, err := inst.readDir(task, oei)
	if err != kbase.EOK {
		return err
	}
	oi := dirFind(oldEnts, oldName)
	if oi < 0 {
		return kbase.ENOENT
	}
	moving := oldEnts[oi]

	newEnts := oldEnts
	if !sameDir {
		newEnts, err = inst.readDir(task, nei)
		if err != kbase.EOK {
			return err
		}
	}

	// Resolve and lock a replaced target BEFORE opening the journal
	// handle: handle holders must never block on an inode lock.
	var xei *einode
	var exVi *vfs.Inode
	ni := dirFind(newEnts, newName)
	if ni >= 0 {
		existing := newEnts[ni]
		if existing.Ino == moving.Ino {
			// POSIX: oldpath and newpath name the same file (self-
			// rename or two links to one inode) — rename does nothing
			// and reports success. Without this the replace path below
			// would free the very inode being moved.
			return kbase.EOK
		}
		// POSIX rename(2) kind rules: a directory may not replace a
		// non-directory (ENOTDIR), a non-directory may not replace a
		// directory (EISDIR), and a directory target must be empty
		// (ENOTEMPTY below). The old code fell through to the file
		// replace path and silently clobbered a file with a
		// directory — fuzzer-found.
		movingDir := moving.Mode == modeDirDisk
		existingDir := existing.Mode == modeDirDisk
		if movingDir && !existingDir {
			return kbase.ENOTDIR
		}
		if !movingDir && existingDir {
			return kbase.EISDIR
		}
		if exVi, err = inst.iget(task, existing.Ino); err != kbase.EOK {
			return err
		}
		if xei, err = einodeOf(exVi); err != kbase.EOK {
			return err
		}
		if existingDir {
			// Up to two dir locks are already held; renameMu makes
			// the extra subclass safe.
			xei.lock.LockNested(task, 2)
		} else {
			xei.lock.Lock(task)
		}
		defer xei.lock.Unlock(task)
		if existingDir {
			sub, err := inst.readDir(task, xei)
			if err != kbase.EOK {
				return err
			}
			if len(sub) > 0 {
				return kbase.ENOTEMPTY
			}
		}
	}

	h := inst.begin()
	defer h.Stop()

	if ni >= 0 {
		// Replace: drop the target like unlink (or rmdir, for an
		// empty directory target) does.
		existing := newEnts[ni]
		if existing.Mode == modeDirDisk {
			xei.di.Nlink = 0
		} else {
			xei.di.Nlink--
		}
		if xei.di.Nlink == 0 {
			if exVi.OpenCount() > 0 {
				// Replaced-while-open target: orphan it like unlink
				// does; Release reclaims at the last close.
				xei.orphan = true
			} else {
				if !inst.fs.LeakOnUnlink {
					if err := inst.freeAllBlocks(task, h, xei); err != kbase.EOK {
						return err
					}
				}
				if err := inst.freeIno(task, h, existing.Ino); err != kbase.EOK {
					return err
				}
			}
			inst.imu.Lock()
			delete(inst.inodes, existing.Ino)
			inst.imu.Unlock()
		}
		if err := inst.writeDiskInode(task, h, existing.Ino, &xei.di); err != kbase.EOK {
			return err
		}
		newEnts = append(newEnts[:ni], newEnts[ni+1:]...)
		if sameDir {
			// Removing an entry shifts indices; refind the source.
			oi = dirFind(newEnts, oldName)
		}
	}

	if sameDir {
		newEnts[oi].Name = newName
		if err := inst.writeDir(task, h, oldDir, oei, newEnts); err != kbase.EOK {
			return err
		}
	} else {
		oldEnts = append(oldEnts[:oi], oldEnts[oi+1:]...)
		newEnts = append(newEnts, dirent{Ino: moving.Ino, Mode: moving.Mode, Name: newName})
		if err := inst.writeDir(task, h, oldDir, oei, oldEnts); err != kbase.EOK {
			return err
		}
		if err := inst.writeDir(task, h, newDir, nei, newEnts); err != kbase.EOK {
			return err
		}
	}
	h.Stop()
	return inst.commit(task)
}

func (o *inodeOps) ReadDir(task *kbase.Task, dir *vfs.Inode) ([]vfs.DirEntry, kbase.Errno) {
	inst := o.inst
	ei, err := einodeOf(dir)
	if err != kbase.EOK {
		return nil, err
	}
	ei.lock.Lock(task)
	defer ei.lock.Unlock(task)
	ents, err := inst.readDir(task, ei)
	if err != kbase.EOK {
		return nil, err
	}
	out := make([]vfs.DirEntry, 0, len(ents))
	for _, e := range ents {
		mode := vfs.ModeRegular
		if e.Mode == modeDirDisk {
			mode = vfs.ModeDir
		}
		out = append(out, vfs.DirEntry{Name: e.Name, Ino: e.Ino, Mode: mode})
	}
	return out, kbase.EOK
}

// writeToken carries state from WriteBegin to WriteEnd through the
// VFS's WriteState ferry.
type writeToken struct {
	ei *einode
	h  *journal.Handle
}

// confusedToken is the wrong-type twin for the injected fault.
type confusedToken struct {
	ei *einode
	h  *journal.Handle
}

// fileOps implements vfs.FileOps.
type fileOps struct {
	inst *fsInstance
}

func (fo *fileOps) Read(task *kbase.Task, ino *vfs.Inode, buf []byte, off int64) (int, kbase.Errno) {
	inst := fo.inst
	ei, err := einodeOf(ino)
	if err != kbase.EOK {
		return 0, err
	}
	ei.lock.Lock(task)
	defer ei.lock.Unlock(task)
	return inst.readFileRange(task, ei, buf, off)
}

func (fo *fileOps) WriteBegin(task *kbase.Task, ino *vfs.Inode, off int64, n int) (vfs.WriteState, kbase.Errno) {
	inst := fo.inst
	ei, err := einodeOf(ino)
	if err != kbase.EOK {
		return vfs.WriteState{}, err
	}
	ei.lock.Lock(task) // released in WriteEnd — the legacy protocol spans calls
	h := inst.begin()
	if inst.fs.ConfuseWriteEnd {
		return vfs.NewWriteState(&confusedToken{ei: ei, h: h}), kbase.EOK
	}
	return vfs.NewWriteState(&writeToken{ei: ei, h: h}), kbase.EOK
}

func (fo *fileOps) WriteCopy(task *kbase.Task, ino *vfs.Inode, off int64, data []byte, private vfs.WriteState) (int, kbase.Errno) {
	tok, ok := vfs.WriteStateAs[*writeToken](private)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "extlike",
			"write_copy private is not *writeToken")
		fo.abortWrite(task, ino, private)
		return 0, kbase.EUCLEAN
	}
	n, err := fo.inst.writeFileRange(task, tok.h, tok.ei, data, off)
	if err != kbase.EOK {
		tok.h.Stop()
		tok.ei.lock.Unlock(task)
	}
	return n, err
}

func (fo *fileOps) WriteEnd(task *kbase.Task, ino *vfs.Inode, off int64, n int, private vfs.WriteState) kbase.Errno {
	tok, ok := vfs.WriteStateAs[*writeToken](private)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "extlike",
			"write_end private is not *writeToken")
		fo.abortWrite(task, ino, private)
		return kbase.EUCLEAN
	}
	inst := fo.inst
	end := off + int64(n)
	if end > int64(tok.ei.di.Size) {
		tok.ei.di.Size = uint64(end)
		if inst.fs.SkipSizeLock {
			ino.ISize = end // unlocked store — the §4.3 pathology
		} else {
			ino.SizeWrite(task, end)
		}
	}
	err := inst.writeDiskInode(task, tok.h, tok.ei.ino, &tok.ei.di)
	tok.h.Stop()
	if err == kbase.EOK {
		err = inst.commit(task)
	} else {
		inst.commit(task)
	}
	tok.ei.lock.Unlock(task)
	return err
}

// abortWrite cleans up when the token was type-confused: we can still
// salvage the handle if the confused value carries one, and the inode
// lock is recovered from the inode itself since the token is useless.
func (fo *fileOps) abortWrite(task *kbase.Task, ino *vfs.Inode, private vfs.WriteState) {
	if ct, ok := vfs.WriteStateAs[*confusedToken](private); ok {
		ct.h.Stop()
	}
	fo.inst.commit(task)
	if ei, err := einodeOf(ino); err == kbase.EOK {
		ei.lock.Unlock(task)
	}
}

func (fo *fileOps) Truncate(task *kbase.Task, ino *vfs.Inode, size int64) kbase.Errno {
	inst := fo.inst
	ei, err := einodeOf(ino)
	if err != kbase.EOK {
		return err
	}
	ei.lock.Lock(task)
	defer ei.lock.Unlock(task)
	h := inst.begin()
	defer h.Stop()
	if size < int64(ei.di.Size) {
		if err := inst.truncateBlocks(task, h, ei, size); err != kbase.EOK {
			return err
		}
	}
	ei.di.Size = uint64(size)
	if err := inst.writeDiskInode(task, h, ei.ino, &ei.di); err != kbase.EOK {
		return err
	}
	ino.SizeWrite(task, size)
	h.Stop()
	return inst.commit(task)
}

func (fo *fileOps) Fsync(task *kbase.Task, ino *vfs.Inode) kbase.Errno {
	inst := fo.inst
	ei, err := einodeOf(ino)
	if err != kbase.EOK {
		return err
	}
	// Hold the inode lock so an in-flight write to this file has
	// fully landed before we commit and write back.
	ei.lock.Lock(task)
	defer ei.lock.Unlock(task)
	if err := inst.commit(task); err != kbase.EOK {
		return err
	}
	// Data writeback: make file data durable too.
	return inst.cache.SyncDirtyCtx(task)
}

// Release implements vfs.ReleaseOps: the last descriptor on the
// inode closed. If unlink (or a replacing rename) orphaned it, the
// deferred reclaim runs now — blocks and the ino number go back to
// the bitmaps under a journal handle, exactly the free path unlink
// would have taken.
func (fo *fileOps) Release(task *kbase.Task, ino *vfs.Inode) {
	inst := fo.inst
	ei, err := einodeOf(ino)
	if err != kbase.EOK {
		return
	}
	ei.lock.Lock(task)
	defer ei.lock.Unlock(task)
	if !ei.orphan {
		return
	}
	ei.orphan = false
	h := inst.begin()
	defer h.Stop()
	if !inst.fs.LeakOnUnlink {
		if err := inst.freeAllBlocks(task, h, ei); err != kbase.EOK {
			return
		}
	}
	if err := inst.freeIno(task, h, ei.ino); err != kbase.EOK {
		return
	}
	if err := inst.writeDiskInode(task, h, ei.ino, &ei.di); err != kbase.EOK {
		return
	}
	h.Stop()
	_ = inst.commit(task)
}

// SuperBlockOps.

func (inst *fsInstance) Statfs(task *kbase.Task) (vfs.StatFS, kbase.Errno) {
	inst.allocMu.Lock(task)
	defer inst.allocMu.Unlock(task)
	freeB, err := inst.countFreeBits(inst.geo.SB.BBMStart, inst.geo.SB.BBMBlocks, inst.geo.SB.TotalBlocks)
	if err != kbase.EOK {
		return vfs.StatFS{}, err
	}
	freeI, err := inst.countFreeBits(inst.geo.SB.IBMStart, inst.geo.SB.IBMBlocks, uint64(inst.geo.SB.InodeCount))
	if err != kbase.EOK {
		return vfs.StatFS{}, err
	}
	return vfs.StatFS{
		TotalBlocks: inst.geo.SB.TotalBlocks,
		FreeBlocks:  freeB,
		TotalInodes: uint64(inst.geo.SB.InodeCount),
		FreeInodes:  freeI,
		FSName:      "extlike",
	}, kbase.EOK
}

func (inst *fsInstance) SyncFS(task *kbase.Task) kbase.Errno {
	// No instance-wide lock: the journal's commit gate quiesces
	// metadata, and SyncDirty snapshots the dirty set on its own.
	if err := inst.commit(task); err != kbase.EOK {
		return err
	}
	if inst.fs.SkipJournal {
		return inst.cache.SyncDirtyCtx(task)
	}
	return inst.jnl.CheckpointCtx(task)
}

func (inst *fsInstance) Unmount(task *kbase.Task) kbase.Errno {
	return inst.SyncFS(nil)
}
