package extlike

import (
	"safelinux/internal/linuxlike/bufcache"
	"safelinux/internal/linuxlike/journal"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
)

// einode is the in-memory inode private state: a cached copy of the
// on-disk inode. It hangs off the vfs inode's private slot, as
// i_private does, reached only through the typed accessors.
type einode struct {
	ino uint64
	// lock is the per-inode mutex (i_rwsem's stand-in). It guards di
	// and the inode's directory/file content. Class is dir_inode or
	// file_inode by mode; child directories lock with subclass 1.
	lock *kbase.KMutex
	di   diskInode
	// orphan marks an inode whose last link was dropped while
	// descriptors still referenced it: blocks and the ino number stay
	// allocated until the last close runs Release. Guarded by lock.
	// On crash the storage leaks, as in ext without orphan-list
	// recovery.
	orphan bool
}

// einodeOf downcasts Inode.Private through the vfs accessor, so the
// untyped boundary is crossed only in the package that declares it.
func einodeOf(ino *vfs.Inode) (*einode, kbase.Errno) {
	ei, ok := vfs.PrivateAs[*einode](ino)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "extlike",
			"inode %d private is not *einode", ino.Ino)
		return nil, kbase.EUCLEAN
	}
	return ei, kbase.EOK
}

// itabLocate returns the inode-table device block and byte offset of
// ino.
func (inst *fsInstance) itabLocate(ino uint64) (uint64, int) {
	perBlock := uint64(inst.geo.SB.BlockSize) / DiskInodeSize
	idx := ino - 1
	return inst.geo.SB.ITabStart + idx/perBlock, int(idx % perBlock * DiskInodeSize)
}

// readDiskInode loads the on-disk inode.
func (inst *fsInstance) readDiskInode(ino uint64) (diskInode, kbase.Errno) {
	block, off := inst.itabLocate(ino)
	bh, err := inst.cache.Bread(block)
	if err != kbase.EOK {
		return diskInode{}, err
	}
	defer bh.Put()
	var di diskInode
	di.decode(bh.Data[off : off+DiskInodeSize])
	return di, kbase.EOK
}

// writeDiskInode stores the inode under a journal handle.
func (inst *fsInstance) writeDiskInode(task *kbase.Task, h *journal.Handle, ino uint64, di *diskInode) kbase.Errno {
	block, off := inst.itabLocate(ino)
	bh, err := inst.cache.Bread(block)
	if err != kbase.EOK {
		return err
	}
	defer bh.Put()
	if err := h.GetWriteAccess(bh.Meta()); err != kbase.EOK {
		return err
	}
	di.encode(bh.Data[off : off+DiskInodeSize])
	return h.DirtyMetadata(bh.Meta())
}

// iget returns the in-memory vfs.Inode for ino, loading it from disk
// on first use. It takes the itable lock itself; callers may hold any
// inode locks (imu nests inside them and is never held across a
// kbase lock acquisition).
func (inst *fsInstance) iget(task *kbase.Task, ino uint64) (*vfs.Inode, kbase.Errno) {
	inst.imu.Lock()
	defer inst.imu.Unlock()
	if vi, ok := inst.inodes[ino]; ok {
		return vi, kbase.EOK
	}
	di, err := inst.readDiskInode(ino)
	if err != kbase.EOK {
		return nil, err
	}
	if di.Nlink == 0 && ino != RootIno {
		return nil, kbase.ESTALE
	}
	var mode vfs.FileMode
	lockClass := fileClass
	switch di.Mode {
	case modeDirDisk:
		mode = vfs.ModeDir
		lockClass = dirClass
	default:
		mode = vfs.ModeRegular
	}
	ei := &einode{ino: ino, lock: kbase.NewKMutex(lockClass), di: di}
	vi := &vfs.Inode{
		Ino:     ino,
		Mode:    mode,
		Nlink:   uint32(di.Nlink),
		ILock:   kbase.NewSpinLock(vfs.ILockClass),
		ISize:   int64(di.Size),
		Sb:      inst.vsb,
		Ops:     &inodeOps{inst: inst},
		FileOps: &fileOps{inst: inst},
	}
	vfs.SetPrivate(vi, ei)
	inst.inodes[ino] = vi
	return vi, kbase.EOK
}

// blockFor maps fileBlock of ei to a device block. With alloc, holes
// are filled by allocating data blocks (and the indirect block when
// needed) under h. A zero return with EOK means "hole" (only when
// !alloc).
func (inst *fsInstance) blockFor(task *kbase.Task, h *journal.Handle, ei *einode, fileBlock uint64, alloc bool) (uint64, kbase.Errno) {
	bs := uint64(inst.geo.SB.BlockSize)
	ptrsPerBlock := bs / 8
	if fileBlock < NumDirect {
		blk := ei.di.Direct[fileBlock]
		if blk == 0 && alloc {
			nb, err := inst.allocBlock(task, h)
			if err != kbase.EOK {
				return 0, err
			}
			if err := inst.zeroBlock(nb); err != kbase.EOK {
				return 0, err
			}
			ei.di.Direct[fileBlock] = nb
			blk = nb
		}
		return blk, kbase.EOK
	}
	idx := fileBlock - NumDirect
	if idx >= ptrsPerBlock {
		return 0, kbase.EFBIG
	}
	if ei.di.Indirect == 0 {
		if !alloc {
			return 0, kbase.EOK
		}
		nb, err := inst.allocBlock(task, h)
		if err != kbase.EOK {
			return 0, err
		}
		if err := inst.zeroBlock(nb); err != kbase.EOK {
			return 0, err
		}
		ei.di.Indirect = nb
	}
	ibh, err := inst.cache.BreadCtx(task, ei.di.Indirect)
	if err != kbase.EOK {
		return 0, err
	}
	defer ibh.Put()
	blk := leU64(ibh.Data[idx*8:])
	if blk == 0 && alloc {
		nb, err := inst.allocBlock(task, h)
		if err != kbase.EOK {
			return 0, err
		}
		if err := inst.zeroBlock(nb); err != kbase.EOK {
			return 0, err
		}
		if err := h.GetWriteAccess(ibh.Meta()); err != kbase.EOK {
			return 0, err
		}
		putU64(ibh.Data[idx*8:], nb)
		if err := h.DirtyMetadata(ibh.Meta()); err != kbase.EOK {
			return 0, err
		}
		blk = nb
	}
	return blk, kbase.EOK
}

// zeroBlock initializes a freshly allocated block in the cache
// (marked new+uptodate, written back as data).
func (inst *fsInstance) zeroBlock(block uint64) kbase.Errno {
	bh, err := inst.cache.GetBlk(block)
	if err != kbase.EOK {
		return err
	}
	defer bh.Put()
	for i := range bh.Data {
		bh.Data[i] = 0
	}
	bh.SetFlag(bufcache.BHNew | bufcache.BHUptodate | bufcache.BHMapped)
	bh.MarkDirty()
	return kbase.EOK
}

// readFileRange copies file bytes [off, off+len(buf)) of ei into buf,
// bounded by size. Returns bytes copied.
func (inst *fsInstance) readFileRange(task *kbase.Task, ei *einode, buf []byte, off int64) (int, kbase.Errno) {
	size := int64(ei.di.Size)
	if off >= size {
		return 0, kbase.EOK
	}
	if max := size - off; int64(len(buf)) > max {
		buf = buf[:max]
	}
	bs := int64(inst.geo.SB.BlockSize)
	n := 0
	for n < len(buf) {
		fb := uint64((off + int64(n)) / bs)
		inBlock := (off + int64(n)) % bs
		want := len(buf) - n
		if rem := int(bs - inBlock); want > rem {
			want = rem
		}
		blk, err := inst.blockFor(task, nil, ei, fb, false)
		if err != kbase.EOK {
			return n, err
		}
		if blk == 0 { // hole
			for i := 0; i < want; i++ {
				buf[n+i] = 0
			}
		} else {
			bh, err := inst.cache.BreadCtx(task, blk)
			if err != kbase.EOK {
				return n, err
			}
			copy(buf[n:n+want], bh.Data[inBlock:])
			_ = bh.Put() // brelse-style release; over-release is already oopsed
		}
		n += want
	}
	return n, kbase.EOK
}

// writeFileRange writes data at off into ei under h, allocating
// blocks as needed. Data blocks are dirtied in the cache (writeback);
// only allocation metadata is journaled. Size is NOT updated here.
func (inst *fsInstance) writeFileRange(task *kbase.Task, h *journal.Handle, ei *einode, data []byte, off int64) (int, kbase.Errno) {
	if uint64(off)+uint64(len(data)) > inst.geo.MaxFileSize() {
		return 0, kbase.EFBIG
	}
	bs := int64(inst.geo.SB.BlockSize)
	n := 0
	for n < len(data) {
		fb := uint64((off + int64(n)) / bs)
		inBlock := (off + int64(n)) % bs
		want := len(data) - n
		if rem := int(bs - inBlock); want > rem {
			want = rem
		}
		blk, err := inst.blockFor(task, h, ei, fb, true)
		if err != kbase.EOK {
			return n, err
		}
		var bh *bufcache.BufferHead
		if inBlock == 0 && want == int(bs) {
			// Full-block overwrite: no read needed.
			bh, err = inst.cache.GetBlk(blk)
			if err == kbase.EOK {
				bh.SetFlag(bufcache.BHMapped | bufcache.BHUptodate)
			}
		} else {
			bh, err = inst.cache.BreadCtx(task, blk)
		}
		if err != kbase.EOK {
			return n, err
		}
		copy(bh.Data[inBlock:], data[n:n+want])
		bh.MarkDirty()
		_ = bh.Put() // brelse-style release; over-release is already oopsed
		n += want
	}
	return n, kbase.EOK
}

// truncateBlocks frees all blocks of ei beyond newSize and shrinks
// the mapping. Growing is handled by hole semantics.
func (inst *fsInstance) truncateBlocks(task *kbase.Task, h *journal.Handle, ei *einode, newSize int64) kbase.Errno {
	bs := uint64(inst.geo.SB.BlockSize)
	keep := (uint64(newSize) + bs - 1) / bs // file blocks to keep
	ptrsPerBlock := bs / 8

	// Zero the tail of the last kept block past the new EOF. Without
	// this, extending the file again exposes the stale bytes as data
	// (fuzzer-found: pwrite/truncate/pwrite diverged from safefs);
	// ext4 does the same partial-block zeroing on shrink.
	if tail := uint64(newSize) % bs; tail != 0 {
		blk, err := inst.blockFor(task, h, ei, keep-1, false)
		if err != kbase.EOK {
			return err
		}
		if blk != 0 {
			bh, err := inst.cache.BreadCtx(task, blk)
			if err != kbase.EOK {
				return err
			}
			for i := tail; i < bs; i++ {
				bh.Data[i] = 0
			}
			bh.MarkDirty()
			_ = bh.Put() // brelse-style release; over-release is already oopsed
		}
	}

	for fb := keep; fb < NumDirect; fb++ {
		if ei.di.Direct[fb] != 0 {
			if err := inst.freeBlock(task, h, ei.di.Direct[fb]); err != kbase.EOK {
				return err
			}
			ei.di.Direct[fb] = 0
		}
	}
	if ei.di.Indirect != 0 {
		ibh, err := inst.cache.BreadCtx(task, ei.di.Indirect)
		if err != kbase.EOK {
			return err
		}
		dirtied := false
		for idx := uint64(0); idx < ptrsPerBlock; idx++ {
			fb := NumDirect + idx
			if fb < keep {
				continue
			}
			blk := leU64(ibh.Data[idx*8:])
			if blk == 0 {
				continue
			}
			if err := inst.freeBlock(task, h, blk); err != kbase.EOK {
				_ = ibh.Put() // brelse-style release; over-release is already oopsed
				return err
			}
			if !dirtied {
				if err := h.GetWriteAccess(ibh.Meta()); err != kbase.EOK {
					_ = ibh.Put() // brelse-style release; over-release is already oopsed
					return err
				}
				dirtied = true
			}
			putU64(ibh.Data[idx*8:], 0)
		}
		if dirtied {
			if err := h.DirtyMetadata(ibh.Meta()); err != kbase.EOK {
				_ = ibh.Put() // brelse-style release; over-release is already oopsed
				return err
			}
		}
		if keep <= NumDirect {
			// Whole indirect tree gone.
			if err := inst.freeBlock(task, h, ei.di.Indirect); err != kbase.EOK {
				_ = ibh.Put() // brelse-style release; over-release is already oopsed
				return err
			}
			// The indirect block may be reused as data; revoke it.
			if err := h.Revoke(ei.di.Indirect); err != kbase.EOK {
				_ = ibh.Put() // brelse-style release; over-release is already oopsed
				return err
			}
			inst.cache.Forget(ibh)
			ei.di.Indirect = 0
		}
		_ = ibh.Put() // brelse-style release; over-release is already oopsed
	}
	return kbase.EOK
}

// freeAllBlocks releases every block of ei (unlink with nlink 0).
func (inst *fsInstance) freeAllBlocks(task *kbase.Task, h *journal.Handle, ei *einode) kbase.Errno {
	return inst.truncateBlocks(task, h, ei, 0)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
