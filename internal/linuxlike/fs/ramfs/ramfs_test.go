package ramfs_test

import (
	"testing"

	"safelinux/internal/linuxlike/fs/ramfs"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
)

func mountRamfs(t *testing.T, fs *ramfs.FS) (*vfs.VFS, *kbase.Task) {
	t.Helper()
	v := vfs.New(nil)
	task := kbase.NewTask()
	if err := v.RegisterFS(fs); err != kbase.EOK {
		t.Fatalf("RegisterFS: %v", err)
	}
	if err := v.Mount(task, "/", "ramfs", vfs.MountData{}); err != kbase.EOK {
		t.Fatalf("Mount: %v", err)
	}
	return v, task
}

func TestSparseWriteZeroFills(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{})
	fd, _ := v.Open(task, "/sparse", vfs.ORdWr|vfs.OCreate)
	if _, err := v.Pwrite(task, fd, []byte{0xFF}, 100); err != kbase.EOK {
		t.Fatalf("Pwrite: %v", err)
	}
	buf := make([]byte, 101)
	n, err := v.Pread(task, fd, buf, 0)
	if err != kbase.EOK || n != 101 {
		t.Fatalf("Pread = (%d, %v)", n, err)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %#x", i, buf[i])
		}
	}
	if buf[100] != 0xFF {
		t.Fatalf("payload byte = %#x", buf[100])
	}
}

func TestReadBeyondEOF(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{})
	fd, _ := v.Open(task, "/f", vfs.ORdWr|vfs.OCreate)
	v.Write(task, fd, []byte("abc"))
	buf := make([]byte, 10)
	n, err := v.Pread(task, fd, buf, 100)
	if err != kbase.EOK || n != 0 {
		t.Fatalf("read past EOF = (%d, %v)", n, err)
	}
}

// TestConfuseWriteEndFaultDetected exercises the injected §4.2
// type-confusion bug: WriteBegin returns a value of the wrong dynamic
// type and the downstream cast misfires.
func TestConfuseWriteEndFaultDetected(t *testing.T) {
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	defer kbase.InstallRecorder(prev)

	v, task := mountRamfs(t, &ramfs.FS{ConfuseWriteEnd: true})
	fd, _ := v.Open(task, "/victim", vfs.OWrOnly|vfs.OCreate)
	_, err := v.Write(task, fd, []byte("boom"))
	if err != kbase.EUCLEAN {
		t.Fatalf("confused write err = %v, want EUCLEAN", err)
	}
	if rec.Count(kbase.OopsTypeConfusion) == 0 {
		t.Fatalf("type confusion not reported")
	}
}

// TestPrivateStomp simulates another kernel component overwriting
// Inode.Private (possible because it is untyped and shared): the next
// ramfs operation must detect the confusion rather than corrupt state.
func TestPrivateStomp(t *testing.T) {
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	defer kbase.InstallRecorder(prev)

	v, task := mountRamfs(t, &ramfs.FS{})
	fd, _ := v.Open(task, "/victim", vfs.ORdWr|vfs.OCreate)
	v.Write(task, fd, []byte("data"))
	ino, err := v.Resolve(task, "/victim")
	if err != kbase.EOK {
		t.Fatalf("Resolve: %v", err)
	}
	vfs.SetPrivate(ino, "not a node") // the stomp, now through the audited setter
	if _, err := v.Pread(task, fd, make([]byte, 4), 0); err != kbase.EUCLEAN {
		t.Fatalf("read after stomp = %v, want EUCLEAN", err)
	}
	if rec.Count(kbase.OopsTypeConfusion) == 0 {
		t.Fatalf("stomp not reported as type confusion")
	}
}

// TestSkipSizeLockStillStoresSize documents the §4.3 pathology knob:
// the size still lands (single-threaded), it is just unprotected.
func TestSkipSizeLockStillStoresSize(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{SkipSizeLock: true})
	fd, _ := v.Open(task, "/f", vfs.OWrOnly|vfs.OCreate)
	v.Write(task, fd, []byte("12345"))
	st, _ := v.Stat(task, "/f")
	if st.Size != 5 {
		t.Fatalf("size = %d", st.Size)
	}
}

func TestCreateEmptyNameRejected(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{})
	ino, err := v.Resolve(task, "/")
	if err != kbase.EOK {
		t.Fatalf("Resolve /: %v", err)
	}
	if _, cerr := ino.Ops.CreateTyped(task, ino, "", vfs.ModeRegular).Get(); cerr != kbase.EINVAL {
		t.Fatalf("empty-name create not rejected")
	}
}

func TestRenameReplacesFile(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{})
	for _, name := range []string{"/a", "/b"} {
		fd, _ := v.Open(task, name, vfs.OWrOnly|vfs.OCreate)
		v.Write(task, fd, []byte(name))
		v.Close(fd)
	}
	if err := v.Rename(task, "/a", "/b"); err != kbase.EOK {
		t.Fatalf("Rename over existing: %v", err)
	}
	fd, _ := v.Open(task, "/b", vfs.ORdOnly)
	buf := make([]byte, 8)
	n, _ := v.Read(task, fd, buf)
	if string(buf[:n]) != "/a" {
		t.Fatalf("content after replace = %q", buf[:n])
	}
	if _, err := v.Stat(task, "/a"); err != kbase.ENOENT {
		t.Fatalf("/a survived rename: %v", err)
	}
}

func TestRenameOntoDirRefused(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{})
	fd, _ := v.Open(task, "/f", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	v.Mkdir(task, "/d")
	if err := v.Rename(task, "/f", "/d"); err != kbase.EISDIR {
		t.Fatalf("rename file over dir: %v", err)
	}
}

func TestNlinkDropsOnUnlink(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{})
	fd, _ := v.Open(task, "/n", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	ino, _ := v.Resolve(task, "/n")
	if ino.Nlink != 1 {
		t.Fatalf("initial nlink = %d", ino.Nlink)
	}
	v.Unlink(task, "/n")
	if ino.Nlink != 0 {
		t.Fatalf("nlink after unlink = %d", ino.Nlink)
	}
}

func TestRamfsDirOpsDirect(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{})
	if err := v.Mkdir(task, "/d"); err != kbase.EOK {
		t.Fatalf("Mkdir: %v", err)
	}
	if err := v.Mkdir(task, "/d/e"); err != kbase.EOK {
		t.Fatalf("Mkdir nested: %v", err)
	}
	if err := v.Rmdir(task, "/d"); err != kbase.ENOTEMPTY {
		t.Fatalf("Rmdir non-empty: %v", err)
	}
	if err := v.Rmdir(task, "/d/e"); err != kbase.EOK {
		t.Fatalf("Rmdir: %v", err)
	}
	ents, err := v.ReadDir(task, "/d")
	if err != kbase.EOK || len(ents) != 0 {
		t.Fatalf("ReadDir = (%v, %v)", ents, err)
	}
	// Rmdir of a file and of a missing name.
	fd, _ := v.Open(task, "/f", vfs.OWrOnly|vfs.OCreate)
	v.Close(fd)
	if err := v.Rmdir(task, "/f"); err != kbase.ENOTDIR {
		t.Fatalf("Rmdir file: %v", err)
	}
	if err := v.Rmdir(task, "/ghost"); err != kbase.ENOENT {
		t.Fatalf("Rmdir ghost: %v", err)
	}
}

func TestRamfsTruncateFsyncSyncUnmount(t *testing.T) {
	v, task := mountRamfs(t, &ramfs.FS{})
	fd, _ := v.Open(task, "/t", vfs.ORdWr|vfs.OCreate)
	v.Write(task, fd, []byte("0123456789"))
	if err := v.Truncate(task, "/t", 4); err != kbase.EOK {
		t.Fatalf("Truncate: %v", err)
	}
	if err := v.Truncate(task, "/t", 8); err != kbase.EOK {
		t.Fatalf("Truncate extend: %v", err)
	}
	if err := v.Fsync(task, fd); err != kbase.EOK {
		t.Fatalf("Fsync: %v", err)
	}
	v.Close(fd)
	sf, err := v.Statfs(task, "/")
	if err != kbase.EOK || sf.FSName != "ramfs" {
		t.Fatalf("Statfs = (%+v, %v)", sf, err)
	}
	if err := v.SyncAll(task); err != kbase.EOK {
		t.Fatalf("SyncAll: %v", err)
	}
	if err := v.Unmount(task, "/"); err != kbase.EOK {
		t.Fatalf("Unmount: %v", err)
	}
}
