// Package ramfs is the simplest file system of the simulated kernel:
// all state in memory, no backing device. Per-inode state hangs off
// the inode's private slot via the vfs.SetPrivate/PrivateAs accessors,
// and WriteBegin hands WriteEnd a private token through the VFS in a
// WriteState envelope — the paper's §4.2 protocol, with the downcasts
// confined to audited accessors instead of sprinkled at every site.
//
// ramfs serves three roles: the baseline file system for VFS tests,
// the lower layer for overlaylike, and the host for injected
// type-confusion faults in the fault campaigns.
package ramfs

import (
	"sync"

	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
	"safelinux/internal/safety/typedapi"
)

// node is ramfs's per-inode private state.
type node struct {
	mu       sync.Mutex
	data     []byte
	children map[string]*vfs.Inode // directories only
}

// FS is the ramfs file system type.
type FS struct {
	// ConfuseWriteEnd, when set, makes WriteBegin return a value of
	// the wrong dynamic type — the injected §4.2 type-confusion bug.
	ConfuseWriteEnd bool
	// SkipSizeLock, when set, updates i_size without taking i_lock on
	// the write path (the §4.3 "maybe protected" pathology made
	// concrete). The default follows the disciplined path.
	SkipSizeLock bool
}

// Name implements vfs.FileSystemType.
func (f *FS) Name() string { return "ramfs" }

// fsInstance is one mounted ramfs.
type fsInstance struct {
	fs      *FS
	sb      *vfs.SuperBlock
	mu      sync.Mutex
	nextIno uint64
	inodes  uint64
}

// Mount implements vfs.FileSystemType. data is unused.
func (f *FS) Mount(task *kbase.Task, data vfs.MountData) (*vfs.SuperBlock, kbase.Errno) {
	inst := &fsInstance{fs: f, nextIno: 2} // ino 1 is the root
	sb := &vfs.SuperBlock{FSType: f.Name()}
	inst.sb = sb
	vfs.SetSBPrivate(sb, inst)
	sb.Ops = inst
	root := inst.newInode(1, vfs.ModeDir)
	sb.Root = root
	return sb, kbase.EOK
}

func (inst *fsInstance) newInode(ino uint64, mode vfs.FileMode) *vfs.Inode {
	n := &node{}
	if mode.IsDir() {
		n.children = make(map[string]*vfs.Inode)
	}
	i := &vfs.Inode{
		Ino:   ino,
		Mode:  mode,
		Nlink: 1,
		ILock: kbase.NewSpinLock(vfs.ILockClass),
		Sb:    inst.sb,
	}
	vfs.SetPrivate(i, n)
	ops := &inodeOps{inst: inst}
	i.Ops = ops
	i.FileOps = &fileOps{inst: inst}
	inst.mu.Lock()
	inst.inodes++
	inst.mu.Unlock()
	return i
}

func (inst *fsInstance) allocIno() uint64 {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	ino := inst.nextIno
	inst.nextIno++
	return ino
}

// nodeOf downcasts the inode's private state through the vfs
// accessor. A wrong dynamic type means another component stomped on
// the slot; that is a type-confusion oops, after which the operation
// fails.
func nodeOf(ino *vfs.Inode) (*node, kbase.Errno) {
	n, ok := vfs.PrivateAs[*node](ino)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "ramfs",
			"inode %d private is not *node", ino.Ino)
		return nil, kbase.EUCLEAN
	}
	return n, kbase.EOK
}

// inodeOps implements vfs.TypedInodeOps.
type inodeOps struct {
	inst *fsInstance
}

func (o *inodeOps) LookupTyped(task *kbase.Task, dir *vfs.Inode, name string) typedapi.Result[*vfs.Inode] {
	n, err := nodeOf(dir)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	child, ok := n.children[name]
	if !ok {
		return typedapi.Err[*vfs.Inode](kbase.ENOENT)
	}
	return typedapi.Ok(child)
}

func (o *inodeOps) CreateTyped(task *kbase.Task, dir *vfs.Inode, name string, mode vfs.FileMode) typedapi.Result[*vfs.Inode] {
	if len(name) == 0 || len(name) > vfs.MaxNameLen {
		return typedapi.Err[*vfs.Inode](kbase.EINVAL)
	}
	n, err := nodeOf(dir)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.children[name]; exists {
		return typedapi.Err[*vfs.Inode](kbase.EEXIST)
	}
	child := o.inst.newInode(o.inst.allocIno(), mode)
	n.children[name] = child
	return typedapi.Ok(child)
}

func (o *inodeOps) MkdirTyped(task *kbase.Task, dir *vfs.Inode, name string) typedapi.Result[*vfs.Inode] {
	return o.CreateTyped(task, dir, name, vfs.ModeDir)
}

func (o *inodeOps) Unlink(task *kbase.Task, dir *vfs.Inode, name string) kbase.Errno {
	n, err := nodeOf(dir)
	if err != kbase.EOK {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	child, ok := n.children[name]
	if !ok {
		return kbase.ENOENT
	}
	if child.Mode.IsDir() {
		return kbase.EISDIR
	}
	delete(n.children, name)
	child.ILock.Lock(task)
	child.Nlink--
	child.ILock.Unlock(task)
	return kbase.EOK
}

func (o *inodeOps) Rmdir(task *kbase.Task, dir *vfs.Inode, name string) kbase.Errno {
	n, err := nodeOf(dir)
	if err != kbase.EOK {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	child, ok := n.children[name]
	if !ok {
		return kbase.ENOENT
	}
	if !child.Mode.IsDir() {
		return kbase.ENOTDIR
	}
	cn, err := nodeOf(child)
	if err != kbase.EOK {
		return err
	}
	cn.mu.Lock()
	empty := len(cn.children) == 0
	cn.mu.Unlock()
	if !empty {
		return kbase.ENOTEMPTY
	}
	delete(n.children, name)
	return kbase.EOK
}

func (o *inodeOps) Rename(task *kbase.Task, oldDir *vfs.Inode, oldName string, newDir *vfs.Inode, newName string) kbase.Errno {
	if len(newName) == 0 || len(newName) > vfs.MaxNameLen {
		return kbase.EINVAL
	}
	on, err := nodeOf(oldDir)
	if err != kbase.EOK {
		return err
	}
	nn, err := nodeOf(newDir)
	if err != kbase.EOK {
		return err
	}
	// Lock both directory nodes in address order to avoid ABBA;
	// same-node rename locks once.
	first, second := on, nn
	if first == second {
		second = nil
	}
	first.mu.Lock()
	if second != nil {
		second.mu.Lock()
	}
	defer func() {
		if second != nil {
			second.mu.Unlock()
		}
		first.mu.Unlock()
	}()
	child, ok := on.children[oldName]
	if !ok {
		return kbase.ENOENT
	}
	if existing, ok := nn.children[newName]; ok {
		if existing.Mode.IsDir() {
			return kbase.EISDIR
		}
	}
	delete(on.children, oldName)
	nn.children[newName] = child
	return kbase.EOK
}

func (o *inodeOps) ReadDir(task *kbase.Task, dir *vfs.Inode) ([]vfs.DirEntry, kbase.Errno) {
	n, err := nodeOf(dir)
	if err != kbase.EOK {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]vfs.DirEntry, 0, len(n.children))
	for name, child := range n.children {
		out = append(out, vfs.DirEntry{Name: name, Ino: child.Ino, Mode: child.Mode})
	}
	return out, kbase.EOK
}

// writeToken is what WriteBegin hands to WriteEnd through the VFS,
// inside the WriteState envelope — the custom-data protocol of §4.2.
type writeToken struct {
	node    *node
	reserve int
}

// confusedToken is a different type with a compatible-looking shape,
// used by the injected type-confusion fault.
type confusedToken struct {
	node    *node
	reserve int
}

// fileOps implements vfs.FileOps.
type fileOps struct {
	inst *fsInstance
}

func (fo *fileOps) Read(task *kbase.Task, ino *vfs.Inode, buf []byte, off int64) (int, kbase.Errno) {
	n, err := nodeOf(ino)
	if err != kbase.EOK {
		return 0, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if off >= int64(len(n.data)) {
		return 0, kbase.EOK
	}
	cnt := copy(buf, n.data[off:])
	return cnt, kbase.EOK
}

func (fo *fileOps) WriteBegin(task *kbase.Task, ino *vfs.Inode, off int64, cnt int) (vfs.WriteState, kbase.Errno) {
	n, err := nodeOf(ino)
	if err != kbase.EOK {
		return vfs.WriteState{}, err
	}
	if fo.inst.fs.ConfuseWriteEnd {
		// Injected bug: wrap the wrong dynamic type. The VFS ferries
		// the envelope blindly; WriteEnd's unwrap will misfire.
		return vfs.NewWriteState(&confusedToken{node: n, reserve: cnt}), kbase.EOK
	}
	return vfs.NewWriteState(&writeToken{node: n, reserve: cnt}), kbase.EOK
}

func (fo *fileOps) WriteCopy(task *kbase.Task, ino *vfs.Inode, off int64, data []byte, private vfs.WriteState) (int, kbase.Errno) {
	tok, ok := vfs.WriteStateAs[*writeToken](private)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "ramfs",
			"write_copy private is not *writeToken")
		return 0, kbase.EUCLEAN
	}
	n := tok.node
	n.mu.Lock()
	defer n.mu.Unlock()
	end := off + int64(len(data))
	if end > int64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[off:end], data)
	return len(data), kbase.EOK
}

func (fo *fileOps) WriteEnd(task *kbase.Task, ino *vfs.Inode, off int64, cnt int, private vfs.WriteState) kbase.Errno {
	tok, ok := vfs.WriteStateAs[*writeToken](private)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "ramfs",
			"write_end private is not *writeToken")
		return kbase.EUCLEAN
	}
	n := tok.node
	n.mu.Lock()
	size := int64(len(n.data))
	n.mu.Unlock()
	if fo.inst.fs.SkipSizeLock {
		// The "maybe protected" path: i_size store without i_lock.
		ino.ISize = size
	} else {
		ino.SizeWrite(task, size)
	}
	return kbase.EOK
}

func (fo *fileOps) Truncate(task *kbase.Task, ino *vfs.Inode, size int64) kbase.Errno {
	n, err := nodeOf(ino)
	if err != kbase.EOK {
		return err
	}
	n.mu.Lock()
	switch {
	case size < int64(len(n.data)):
		n.data = n.data[:size]
	case size > int64(len(n.data)):
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	n.mu.Unlock()
	ino.SizeWrite(task, size)
	return kbase.EOK
}

func (fo *fileOps) Fsync(task *kbase.Task, ino *vfs.Inode) kbase.Errno {
	return kbase.EOK // nothing to do: RAM only
}

// SuperBlockOps.

func (inst *fsInstance) Statfs(task *kbase.Task) (vfs.StatFS, kbase.Errno) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return vfs.StatFS{
		TotalInodes: inst.inodes,
		FSName:      "ramfs",
	}, kbase.EOK
}

func (inst *fsInstance) SyncFS(task *kbase.Task) kbase.Errno { return kbase.EOK }

func (inst *fsInstance) Unmount(task *kbase.Task) kbase.Errno { return kbase.EOK }
