package overlaylike_test

import (
	"testing"

	"safelinux/internal/linuxlike/fs/overlaylike"
	"safelinux/internal/linuxlike/fs/ramfs"
	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
)

// setup builds: lower ramfs with /pre and /dir/deep pre-populated,
// upper empty ramfs, overlay of the two mounted at "/" of a fresh
// VFS. It returns the overlay VFS plus direct handles on the layers.
func setup(t *testing.T) (v *vfs.VFS, task *kbase.Task, upper, lower *vfs.SuperBlock) {
	t.Helper()
	task = kbase.NewTask()

	rfs := &ramfs.FS{}
	var err kbase.Errno
	lower, err = rfs.Mount(task, vfs.MountData{})
	if err != kbase.EOK {
		t.Fatalf("lower mount: %v", err)
	}
	upper, err = rfs.Mount(task, vfs.MountData{})
	if err != kbase.EOK {
		t.Fatalf("upper mount: %v", err)
	}

	// Populate the lower layer directly through a scratch VFS.
	lv := vfs.New(nil)
	lv.RegisterFS(&sbFS{name: "fixed-lower", sb: lower})
	if err := lv.Mount(task, "/", "fixed-lower", vfs.MountData{}); err != kbase.EOK {
		t.Fatalf("scratch mount: %v", err)
	}
	mustWrite(t, lv, task, "/pre", "lower-content")
	if err := lv.Mkdir(task, "/dir"); err != kbase.EOK {
		t.Fatalf("Mkdir lower: %v", err)
	}
	mustWrite(t, lv, task, "/dir/deep", "deep-lower")

	v = vfs.New(nil)
	v.RegisterFS(&overlaylike.FS{})
	if err := v.Mount(task, "/", "overlaylike", vfs.NewMountData(&overlaylike.MountData{Upper: upper, Lower: lower})); err != kbase.EOK {
		t.Fatalf("overlay mount: %v", err)
	}
	return v, task, upper, lower
}

// sbFS adapts a pre-built superblock to vfs.FileSystemType so tests
// can mount a specific instance.
type sbFS struct {
	name string
	sb   *vfs.SuperBlock
}

func (f *sbFS) Name() string { return f.name }
func (f *sbFS) Mount(task *kbase.Task, data vfs.MountData) (*vfs.SuperBlock, kbase.Errno) {
	return f.sb, kbase.EOK
}

func mustWrite(t *testing.T, v *vfs.VFS, task *kbase.Task, path, content string) {
	t.Helper()
	fd, err := v.Open(task, path, vfs.OWrOnly|vfs.OCreate|vfs.OTrunc)
	if err != kbase.EOK {
		t.Fatalf("Open(%s): %v", path, err)
	}
	if _, err := v.Write(task, fd, []byte(content)); err != kbase.EOK {
		t.Fatalf("Write(%s): %v", path, err)
	}
	v.Close(fd)
}

func mustRead(t *testing.T, v *vfs.VFS, task *kbase.Task, path string) string {
	t.Helper()
	fd, err := v.Open(task, path, vfs.ORdOnly)
	if err != kbase.EOK {
		t.Fatalf("Open(%s): %v", path, err)
	}
	defer v.Close(fd)
	buf := make([]byte, 256)
	n, err := v.Read(task, fd, buf)
	if err != kbase.EOK {
		t.Fatalf("Read(%s): %v", path, err)
	}
	return string(buf[:n])
}

func TestLowerVisibleThroughOverlay(t *testing.T) {
	v, task, _, _ := setup(t)
	if got := mustRead(t, v, task, "/pre"); got != "lower-content" {
		t.Fatalf("read lower = %q", got)
	}
	if got := mustRead(t, v, task, "/dir/deep"); got != "deep-lower" {
		t.Fatalf("read nested lower = %q", got)
	}
}

func TestWriteTriggersCopyUp(t *testing.T) {
	v, task, upper, lower := setup(t)
	mustWrite(t, v, task, "/pre", "modified")
	if got := mustRead(t, v, task, "/pre"); got != "modified" {
		t.Fatalf("overlay read = %q", got)
	}
	// The lower layer is untouched.
	lu, lerr := lower.Root.Ops.LookupTyped(task, lower.Root, "pre").Get()
	if lerr != kbase.EOK {
		t.Fatalf("lower lost its file")
	}
	buf := make([]byte, 64)
	n, _ := lu.FileOps.Read(task, lu, buf, 0)
	if string(buf[:n]) != "lower-content" {
		t.Fatalf("lower mutated: %q", buf[:n])
	}
	// The upper layer holds the copy.
	if _, uerr := upper.Root.Ops.LookupTyped(task, upper.Root, "pre").Get(); uerr != kbase.EOK {
		t.Fatalf("no upper copy after copy-up")
	}
}

func TestCopyUpPreservesExistingContentOnPartialWrite(t *testing.T) {
	v, task, _, _ := setup(t)
	fd, err := v.Open(task, "/pre", vfs.OWrOnly)
	if err != kbase.EOK {
		t.Fatalf("Open: %v", err)
	}
	// Overwrite only the first byte; the rest must come from the
	// copied-up lower content.
	if _, err := v.Pwrite(task, fd, []byte("L"), 0); err != kbase.EOK {
		t.Fatalf("Pwrite: %v", err)
	}
	v.Close(fd)
	if got := mustRead(t, v, task, "/pre"); got != "Lower-content" {
		t.Fatalf("partial write over copy-up = %q", got)
	}
}

func TestUnlinkLowerCreatesWhiteout(t *testing.T) {
	v, task, upper, _ := setup(t)
	if err := v.Unlink(task, "/pre"); err != kbase.EOK {
		t.Fatalf("Unlink: %v", err)
	}
	if _, err := v.Stat(task, "/pre"); err != kbase.ENOENT {
		t.Fatalf("unlinked lower file visible: %v", err)
	}
	// Whiteout marker exists in the upper layer.
	if _, werr := upper.Root.Ops.LookupTyped(task, upper.Root, overlaylike.WhiteoutPrefix+"pre").Get(); werr != kbase.EOK {
		t.Fatalf("whiteout not created")
	}
	// ReadDir must not show it.
	ents, _ := v.ReadDir(task, "/")
	for _, e := range ents {
		if e.Name == "pre" || e.Name == overlaylike.WhiteoutPrefix+"pre" {
			t.Fatalf("ReadDir leaked %q", e.Name)
		}
	}
}

func TestRecreateAfterWhiteout(t *testing.T) {
	v, task, _, _ := setup(t)
	v.Unlink(task, "/pre")
	mustWrite(t, v, task, "/pre", "reborn")
	if got := mustRead(t, v, task, "/pre"); got != "reborn" {
		t.Fatalf("recreate = %q", got)
	}
}

func TestMergedReadDir(t *testing.T) {
	v, task, _, _ := setup(t)
	mustWrite(t, v, task, "/upper-only", "u")
	ents, err := v.ReadDir(task, "/")
	if err != kbase.EOK {
		t.Fatalf("ReadDir: %v", err)
	}
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name] = true
	}
	for _, want := range []string{"pre", "dir", "upper-only"} {
		if !names[want] {
			t.Fatalf("merged ReadDir missing %q (got %v)", want, names)
		}
	}
}

func TestCreateInLowerOnlyDirectory(t *testing.T) {
	v, task, upper, _ := setup(t)
	mustWrite(t, v, task, "/dir/newfile", "fresh")
	if got := mustRead(t, v, task, "/dir/newfile"); got != "fresh" {
		t.Fatalf("read = %q", got)
	}
	// Upper chain /dir was materialized.
	ud, uderr := upper.Root.Ops.LookupTyped(task, upper.Root, "dir").Get()
	if uderr != kbase.EOK || !ud.Mode.IsDir() {
		t.Fatalf("upper dir not materialized")
	}
	// Lower sibling still visible (merged dir).
	if got := mustRead(t, v, task, "/dir/deep"); got != "deep-lower" {
		t.Fatalf("lower sibling = %q", got)
	}
}

func TestRenameFileWithinOverlay(t *testing.T) {
	v, task, _, _ := setup(t)
	if err := v.Rename(task, "/pre", "/renamed"); err != kbase.EOK {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := v.Stat(task, "/pre"); err != kbase.ENOENT {
		t.Fatalf("old name visible after rename: %v", err)
	}
	if got := mustRead(t, v, task, "/renamed"); got != "lower-content" {
		t.Fatalf("renamed content = %q", got)
	}
}

func TestRenameDirectoryEXDEV(t *testing.T) {
	v, task, _, _ := setup(t)
	if err := v.Rename(task, "/dir", "/dir2"); err != kbase.EXDEV {
		t.Fatalf("dir rename = %v, want EXDEV", err)
	}
}

func TestRmdirLowerDirWhiteout(t *testing.T) {
	v, task, _, _ := setup(t)
	if err := v.Rmdir(task, "/dir"); err != kbase.ENOTEMPTY {
		t.Fatalf("Rmdir non-empty: %v", err)
	}
	if err := v.Unlink(task, "/dir/deep"); err != kbase.EOK {
		t.Fatalf("Unlink: %v", err)
	}
	if err := v.Rmdir(task, "/dir"); err != kbase.EOK {
		t.Fatalf("Rmdir: %v", err)
	}
	if _, err := v.Stat(task, "/dir"); err != kbase.ENOENT {
		t.Fatalf("removed dir visible: %v", err)
	}
}

func TestTruncateCopiesUp(t *testing.T) {
	v, task, _, lower := setup(t)
	if err := v.Truncate(task, "/pre", 5); err != kbase.EOK {
		t.Fatalf("Truncate: %v", err)
	}
	if got := mustRead(t, v, task, "/pre"); got != "lower" {
		t.Fatalf("truncated = %q", got)
	}
	// Lower unchanged.
	lu, _ := lower.Root.Ops.LookupTyped(task, lower.Root, "pre").Get()
	if lu.SizeRead(task) != int64(len("lower-content")) {
		t.Fatalf("lower size changed: %d", lu.SizeRead(task))
	}
}

func TestWhiteoutNamesRejected(t *testing.T) {
	v, task, _, _ := setup(t)
	if _, err := v.Open(task, "/"+overlaylike.WhiteoutPrefix+"sneaky", vfs.OCreate|vfs.OWrOnly); err != kbase.EINVAL {
		t.Fatalf("creating whiteout-prefixed name: %v", err)
	}
}

func TestUpperOnlyFileUnlink(t *testing.T) {
	v, task, upper, _ := setup(t)
	mustWrite(t, v, task, "/uonly", "x")
	if err := v.Unlink(task, "/uonly"); err != kbase.EOK {
		t.Fatalf("Unlink: %v", err)
	}
	// No whiteout needed: nothing in lower.
	if _, werr := upper.Root.Ops.LookupTyped(task, upper.Root, overlaylike.WhiteoutPrefix+"uonly").Get(); werr == kbase.EOK {
		t.Fatalf("needless whiteout created")
	}
}

func TestMkdirInOverlayAndStatfs(t *testing.T) {
	v, task, _, _ := setup(t)
	if err := v.Mkdir(task, "/newdir"); err != kbase.EOK {
		t.Fatalf("Mkdir: %v", err)
	}
	mustWrite(t, v, task, "/newdir/child", "c")
	ents, err := v.ReadDir(task, "/newdir")
	if err != kbase.EOK || len(ents) != 1 {
		t.Fatalf("ReadDir = (%v, %v)", ents, err)
	}
	sf, err := v.Statfs(task, "/")
	if err != kbase.EOK || sf.FSName != "overlaylike" {
		t.Fatalf("Statfs = (%+v, %v)", sf, err)
	}
	if err := v.SyncAll(task); err != kbase.EOK {
		t.Fatalf("SyncAll: %v", err)
	}
}

func TestOverlayFsyncAndUnmount(t *testing.T) {
	v, task, _, _ := setup(t)
	mustWrite(t, v, task, "/durable", "x")
	fd, _ := v.Open(task, "/durable", vfs.ORdOnly)
	if err := v.Fsync(task, fd); err != kbase.EOK {
		t.Fatalf("Fsync: %v", err)
	}
	v.Close(fd)
	// Fsync of a lower-only (never copied up) file is a no-op.
	fd2, _ := v.Open(task, "/pre", vfs.ORdOnly)
	if err := v.Fsync(task, fd2); err != kbase.EOK {
		t.Fatalf("Fsync lower-only: %v", err)
	}
	v.Close(fd2)
	if err := v.Unmount(task, "/"); err != kbase.EOK {
		t.Fatalf("Unmount: %v", err)
	}
}

func TestOverlayRenameOverExistingUpper(t *testing.T) {
	v, task, _, _ := setup(t)
	mustWrite(t, v, task, "/src", "source")
	mustWrite(t, v, task, "/dst", "target")
	if err := v.Rename(task, "/src", "/dst"); err != kbase.EOK {
		t.Fatalf("Rename: %v", err)
	}
	if got := mustRead(t, v, task, "/dst"); got != "source" {
		t.Fatalf("dst = %q", got)
	}
	if _, err := v.Stat(task, "/src"); err != kbase.ENOENT {
		t.Fatalf("src alive: %v", err)
	}
}

func TestOverlayRenameLowerOntoLower(t *testing.T) {
	v, task, _, _ := setup(t)
	// /pre (lower) renamed over /dir/deep (lower): copy-up + whiteouts
	// on both names.
	if err := v.Rename(task, "/pre", "/dir/deep"); err != kbase.EOK {
		t.Fatalf("Rename: %v", err)
	}
	if got := mustRead(t, v, task, "/dir/deep"); got != "lower-content" {
		t.Fatalf("target = %q", got)
	}
	if _, err := v.Stat(task, "/pre"); err != kbase.ENOENT {
		t.Fatalf("old name alive: %v", err)
	}
}

func TestOverlayMountBadData(t *testing.T) {
	rec := &kbase.OopsRecorder{}
	prev := kbase.InstallRecorder(rec)
	defer kbase.InstallRecorder(prev)
	fs := &overlaylike.FS{}
	if _, err := fs.Mount(kbase.NewTask(), vfs.NewMountData("garbage")); err != kbase.EINVAL {
		t.Fatalf("bad mount data: %v", err)
	}
	if rec.Count(kbase.OopsTypeConfusion) != 1 {
		t.Fatalf("confusion not recorded")
	}
}

func TestOverlayTruncateExtend(t *testing.T) {
	v, task, _, _ := setup(t)
	if err := v.Truncate(task, "/pre", 20); err != kbase.EOK {
		t.Fatalf("Truncate extend: %v", err)
	}
	got := mustRead(t, v, task, "/pre")
	if len(got) != 20 || got[:13] != "lower-content" {
		t.Fatalf("extended = %q (len %d)", got, len(got))
	}
}
