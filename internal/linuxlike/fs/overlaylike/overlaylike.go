// Package overlaylike implements an overlayfs-style union file
// system over two already-mounted file systems: a writable upper
// layer and a read-only lower layer. Reads prefer the upper layer;
// writes to lower-only files trigger copy-up; deletions of lower
// entries are recorded as whiteout markers in the upper layer
// (".wh.<name>" files, as original overlayfs did).
//
// Directory renames return EXDEV, as mainline overlayfs does without
// redirect_dir. The implementation uses the typed inode operation
// table: layer calls return typedapi.Result, per-inode state crosses
// through the vfs private accessors, and the write protocol rides in
// WriteState envelopes.
package overlaylike

import (
	"strings"
	"sync"

	"safelinux/internal/linuxlike/kbase"
	"safelinux/internal/linuxlike/vfs"
	"safelinux/internal/safety/typedapi"
)

// WhiteoutPrefix marks deleted lower entries in the upper layer.
const WhiteoutPrefix = ".wh."

// FS is the overlaylike file system type.
type FS struct{}

// Name implements vfs.FileSystemType.
func (f *FS) Name() string { return "overlaylike" }

// MountData carries the two layers.
type MountData struct {
	Upper *vfs.SuperBlock
	Lower *vfs.SuperBlock
}

// ovlNode is the overlay's per-inode private state.
type ovlNode struct {
	parent *vfs.Inode // overlay inode of parent dir (nil for root)
	name   string     // name within parent
	upper  *vfs.Inode // layer inode, may be nil
	lower  *vfs.Inode // layer inode, may be nil
}

type fsInstance struct {
	upperSB *vfs.SuperBlock
	lowerSB *vfs.SuperBlock
	vsb     *vfs.SuperBlock

	mu      sync.Mutex
	nextIno uint64
	// children keeps overlay inode identity stable per (dir, name).
	children map[childKey]*vfs.Inode
}

type childKey struct {
	dir  uint64
	name string
}

// Mount implements vfs.FileSystemType.
func (f *FS) Mount(task *kbase.Task, data vfs.MountData) (*vfs.SuperBlock, kbase.Errno) {
	md, ok := vfs.MountDataAs[*MountData](data)
	if !ok || md.Upper == nil || md.Lower == nil {
		kbase.Oops(kbase.OopsTypeConfusion, "overlaylike", "mount data is not *overlaylike.MountData")
		return nil, kbase.EINVAL
	}
	inst := &fsInstance{
		upperSB:  md.Upper,
		lowerSB:  md.Lower,
		nextIno:  2,
		children: make(map[childKey]*vfs.Inode),
	}
	vsb := &vfs.SuperBlock{FSType: f.Name(), Ops: inst}
	vfs.SetSBPrivate(vsb, inst)
	inst.vsb = vsb
	root := inst.newInode(1, vfs.ModeDir, &ovlNode{
		upper: md.Upper.Root,
		lower: md.Lower.Root,
	})
	vsb.Root = root
	return vsb, kbase.EOK
}

func (inst *fsInstance) newInode(ino uint64, mode vfs.FileMode, node *ovlNode) *vfs.Inode {
	vi := &vfs.Inode{
		Ino:     ino,
		Mode:    mode,
		Nlink:   1,
		ILock:   kbase.NewSpinLock(vfs.ILockClass),
		Sb:      inst.vsb,
		Ops:     &inodeOps{inst: inst},
		FileOps: &fileOps{inst: inst},
	}
	vfs.SetPrivate(vi, node)
	if eff := node.effective(); eff != nil {
		vi.ISize = eff.SizeRead(nil)
	}
	return vi
}

func (inst *fsInstance) allocIno() uint64 {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	ino := inst.nextIno
	inst.nextIno++
	return ino
}

// effective returns the layer inode that serves reads.
func (n *ovlNode) effective() *vfs.Inode {
	if n.upper != nil {
		return n.upper
	}
	return n.lower
}

func nodeOf(ino *vfs.Inode) (*ovlNode, kbase.Errno) {
	n, ok := vfs.PrivateAs[*ovlNode](ino)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "overlaylike",
			"inode %d private is not *ovlNode", ino.Ino)
		return nil, kbase.EUCLEAN
	}
	return n, kbase.EOK
}

// layerLookup runs a typed Lookup on a layer inode.
func layerLookup(task *kbase.Task, dir *vfs.Inode, name string) (*vfs.Inode, kbase.Errno) {
	if dir == nil {
		return nil, kbase.ENOENT
	}
	return dir.Ops.LookupTyped(task, dir, name).Get()
}

// hasWhiteout reports whether upper dir carries a whiteout for name.
func hasWhiteout(task *kbase.Task, upper *vfs.Inode, name string) bool {
	if upper == nil {
		return false
	}
	_, err := layerLookup(task, upper, WhiteoutPrefix+name)
	return err == kbase.EOK
}

// inodeOps implements vfs.TypedInodeOps.
type inodeOps struct {
	inst *fsInstance
}

func (o *inodeOps) LookupTyped(task *kbase.Task, dir *vfs.Inode, name string) typedapi.Result[*vfs.Inode] {
	inst := o.inst
	if strings.HasPrefix(name, WhiteoutPrefix) {
		return typedapi.Err[*vfs.Inode](kbase.EINVAL)
	}
	dn, err := nodeOf(dir)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	var upperChild, lowerChild *vfs.Inode
	if dn.upper != nil {
		if hasWhiteout(task, dn.upper, name) {
			return typedapi.Err[*vfs.Inode](kbase.ENOENT)
		}
		upperChild, _ = layerLookup(task, dn.upper, name)
	}
	if dn.lower != nil {
		lowerChild, _ = layerLookup(task, dn.lower, name)
	}
	if upperChild == nil && lowerChild == nil {
		return typedapi.Err[*vfs.Inode](kbase.ENOENT)
	}
	// A non-dir upper entry shadows the lower entirely.
	if upperChild != nil && !upperChild.Mode.IsDir() {
		lowerChild = nil
	}
	// A lower entry shadowed by an upper non-dir ancestor cannot
	// occur here; merged dirs require both to be dirs.
	if upperChild != nil && lowerChild != nil && !lowerChild.Mode.IsDir() {
		lowerChild = nil
	}

	inst.mu.Lock()
	defer inst.mu.Unlock()
	key := childKey{dir: dir.Ino, name: name}
	if vi, ok := inst.children[key]; ok {
		// Refresh layer pointers (copy-up may have happened).
		if vn, ok := vfs.PrivateAs[*ovlNode](vi); ok {
			vn.upper, vn.lower = upperChild, lowerChild
		}
		return typedapi.Ok(vi)
	}
	eff := upperChild
	if eff == nil {
		eff = lowerChild
	}
	vi := inst.newInode(inst.nextIno, eff.Mode, &ovlNode{
		parent: dir, name: name, upper: upperChild, lower: lowerChild,
	})
	inst.nextIno++
	inst.children[key] = vi
	return typedapi.Ok(vi)
}

// ensureUpperDir guarantees that the overlay dir inode has an upper
// layer directory, copying up the ancestor chain as needed.
func (inst *fsInstance) ensureUpperDir(task *kbase.Task, dir *vfs.Inode) (*vfs.Inode, kbase.Errno) {
	dn, err := nodeOf(dir)
	if err != kbase.EOK {
		return nil, err
	}
	if dn.upper != nil {
		return dn.upper, kbase.EOK
	}
	if dn.parent == nil {
		return nil, kbase.EUCLEAN // root always has an upper
	}
	parentUpper, err := inst.ensureUpperDir(task, dn.parent)
	if err != kbase.EOK {
		return nil, err
	}
	made, merr := parentUpper.Ops.MkdirTyped(task, parentUpper, dn.name).Get()
	if merr != kbase.EOK {
		if merr != kbase.EEXIST {
			return nil, merr
		}
		existing, e := layerLookup(task, parentUpper, dn.name)
		if e != kbase.EOK {
			return nil, e
		}
		made = existing
	}
	dn.upper = made
	return made, kbase.EOK
}

// copyUp materializes an upper copy of a lower-only file.
func (inst *fsInstance) copyUp(task *kbase.Task, ovl *vfs.Inode) kbase.Errno {
	n, err := nodeOf(ovl)
	if err != kbase.EOK {
		return err
	}
	if n.upper != nil {
		return kbase.EOK
	}
	if n.lower == nil || n.parent == nil {
		return kbase.EUCLEAN
	}
	if n.lower.Mode.IsDir() {
		_, err := inst.ensureUpperDir(task, ovl)
		return err
	}
	parentUpper, err := inst.ensureUpperDir(task, n.parent)
	if err != kbase.EOK {
		return err
	}
	upperFile, cerr := parentUpper.Ops.CreateTyped(task, parentUpper, n.name, vfs.ModeRegular).Get()
	if cerr != kbase.EOK {
		return cerr
	}
	// Copy content through the layers' file ops.
	size := n.lower.SizeRead(task)
	buf := make([]byte, size)
	if size > 0 {
		rd, e := n.lower.FileOps.Read(task, n.lower, buf, 0)
		if e != kbase.EOK {
			return e
		}
		buf = buf[:rd]
	}
	if len(buf) > 0 {
		if err := writeThrough(task, upperFile, buf, 0); err != kbase.EOK {
			return err
		}
	}
	n.upper = upperFile
	return kbase.EOK
}

// writeThrough drives a layer's three-phase write protocol once.
func writeThrough(task *kbase.Task, ino *vfs.Inode, data []byte, off int64) kbase.Errno {
	private, err := ino.FileOps.WriteBegin(task, ino, off, len(data))
	if err != kbase.EOK {
		return err
	}
	n, err := ino.FileOps.WriteCopy(task, ino, off, data, private)
	if err != kbase.EOK {
		return err
	}
	return ino.FileOps.WriteEnd(task, ino, off, n, private)
}

func (o *inodeOps) CreateTyped(task *kbase.Task, dir *vfs.Inode, name string, mode vfs.FileMode) typedapi.Result[*vfs.Inode] {
	inst := o.inst
	if strings.HasPrefix(name, WhiteoutPrefix) {
		return typedapi.Err[*vfs.Inode](kbase.EINVAL)
	}
	// Existence check in the merged view.
	if _, e := o.LookupTyped(task, dir, name).Get(); e == kbase.EOK {
		return typedapi.Err[*vfs.Inode](kbase.EEXIST)
	}
	upperDir, err := inst.ensureUpperDir(task, dir)
	if err != kbase.EOK {
		return typedapi.Err[*vfs.Inode](err)
	}
	// Clear any whiteout.
	if hasWhiteout(task, upperDir, name) {
		if e := upperDir.Ops.Unlink(task, upperDir, WhiteoutPrefix+name); e != kbase.EOK {
			return typedapi.Err[*vfs.Inode](e)
		}
	}
	var made *vfs.Inode
	var merr kbase.Errno
	if mode.IsDir() {
		made, merr = upperDir.Ops.MkdirTyped(task, upperDir, name).Get()
	} else {
		made, merr = upperDir.Ops.CreateTyped(task, upperDir, name, mode).Get()
	}
	if merr != kbase.EOK {
		return typedapi.Err[*vfs.Inode](merr)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	key := childKey{dir: dir.Ino, name: name}
	vi := inst.newInode(inst.nextIno, mode, &ovlNode{
		parent: dir, name: name, upper: made,
	})
	inst.nextIno++
	inst.children[key] = vi
	return typedapi.Ok(vi)
}

func (o *inodeOps) MkdirTyped(task *kbase.Task, dir *vfs.Inode, name string) typedapi.Result[*vfs.Inode] {
	return o.CreateTyped(task, dir, name, vfs.ModeDir)
}

func (o *inodeOps) Unlink(task *kbase.Task, dir *vfs.Inode, name string) kbase.Errno {
	return o.inst.remove(task, dir, name, false)
}

func (o *inodeOps) Rmdir(task *kbase.Task, dir *vfs.Inode, name string) kbase.Errno {
	return o.inst.remove(task, dir, name, true)
}

func (inst *fsInstance) remove(task *kbase.Task, dir *vfs.Inode, name string, wantDir bool) kbase.Errno {
	ops := &inodeOps{inst: inst}
	target, terr := ops.LookupTyped(task, dir, name).Get()
	if terr != kbase.EOK {
		return terr
	}
	if wantDir != target.Mode.IsDir() {
		if wantDir {
			return kbase.ENOTDIR
		}
		return kbase.EISDIR
	}
	if wantDir {
		ents, err := ops.ReadDir(task, target)
		if err != kbase.EOK {
			return err
		}
		if len(ents) > 0 {
			return kbase.ENOTEMPTY
		}
	}
	tn, err := nodeOf(target)
	if err != kbase.EOK {
		return err
	}
	dn, err := nodeOf(dir)
	if err != kbase.EOK {
		return err
	}
	// Remove the upper entry if present.
	if tn.upper != nil && dn.upper != nil {
		var e kbase.Errno
		if wantDir {
			// The upper dir may still hold whiteout markers for
			// deleted lower entries; clear them before rmdir.
			ents, le := tn.upper.Ops.ReadDir(task, tn.upper)
			if le != kbase.EOK {
				return le
			}
			for _, ent := range ents {
				if strings.HasPrefix(ent.Name, WhiteoutPrefix) {
					if ue := tn.upper.Ops.Unlink(task, tn.upper, ent.Name); ue != kbase.EOK {
						return ue
					}
				}
			}
			e = dn.upper.Ops.Rmdir(task, dn.upper, name)
		} else {
			e = dn.upper.Ops.Unlink(task, dn.upper, name)
		}
		if e != kbase.EOK {
			return e
		}
		tn.upper = nil
	}
	// Whiteout if a lower entry would shine through.
	if tn.lower != nil {
		upperDir, err := inst.ensureUpperDir(task, dir)
		if err != kbase.EOK {
			return err
		}
		if _, e := upperDir.Ops.CreateTyped(task, upperDir, WhiteoutPrefix+name, vfs.ModeRegular).Get(); e != kbase.EOK {
			return e
		}
	}
	inst.mu.Lock()
	delete(inst.children, childKey{dir: dir.Ino, name: name})
	inst.mu.Unlock()
	return kbase.EOK
}

func (o *inodeOps) Rename(task *kbase.Task, oldDir *vfs.Inode, oldName string, newDir *vfs.Inode, newName string) kbase.Errno {
	inst := o.inst
	src, serr := o.LookupTyped(task, oldDir, oldName).Get()
	if serr != kbase.EOK {
		return serr
	}
	if src.Mode.IsDir() {
		// No redirect_dir support: directory renames cross layers.
		return kbase.EXDEV
	}
	// Replace semantics: an existing non-dir target is removed.
	if existing, e := o.LookupTyped(task, newDir, newName).Get(); e == kbase.EOK {
		if existing == src {
			// POSIX: oldpath and newpath name the same file — rename
			// does nothing and reports success (removing the target
			// here would remove the source itself).
			return kbase.EOK
		}
		if existing.Mode.IsDir() {
			return kbase.EISDIR
		}
		if err := inst.remove(task, newDir, newName, false); err != kbase.EOK {
			return err
		}
	}
	if err := inst.copyUp(task, src); err != kbase.EOK {
		return err
	}
	sn, err := nodeOf(src)
	if err != kbase.EOK {
		return err
	}
	oldUpper, err := inst.ensureUpperDir(task, oldDir)
	if err != kbase.EOK {
		return err
	}
	newUpper, err := inst.ensureUpperDir(task, newDir)
	if err != kbase.EOK {
		return err
	}
	if hasWhiteout(task, newUpper, newName) {
		if e := newUpper.Ops.Unlink(task, newUpper, WhiteoutPrefix+newName); e != kbase.EOK {
			return e
		}
	}
	if err := oldUpper.Ops.Rename(task, oldUpper, oldName, newUpper, newName); err != kbase.EOK {
		return err
	}
	// Whiteout the old name if a lower entry shines through.
	if sn.lower != nil {
		if _, e := oldUpper.Ops.CreateTyped(task, oldUpper, WhiteoutPrefix+oldName, vfs.ModeRegular).Get(); e != kbase.EOK {
			return e
		}
	}
	inst.mu.Lock()
	delete(inst.children, childKey{dir: oldDir.Ino, name: oldName})
	delete(inst.children, childKey{dir: newDir.Ino, name: newName})
	inst.mu.Unlock()
	return kbase.EOK
}

func (o *inodeOps) ReadDir(task *kbase.Task, dir *vfs.Inode) ([]vfs.DirEntry, kbase.Errno) {
	dn, err := nodeOf(dir)
	if err != kbase.EOK {
		return nil, err
	}
	seen := make(map[string]bool)
	whited := make(map[string]bool)
	var out []vfs.DirEntry
	if dn.upper != nil {
		ents, e := dn.upper.Ops.ReadDir(task, dn.upper)
		if e != kbase.EOK {
			return nil, e
		}
		for _, ent := range ents {
			if strings.HasPrefix(ent.Name, WhiteoutPrefix) {
				whited[strings.TrimPrefix(ent.Name, WhiteoutPrefix)] = true
				continue
			}
			seen[ent.Name] = true
			out = append(out, ent)
		}
	}
	if dn.lower != nil {
		ents, e := dn.lower.Ops.ReadDir(task, dn.lower)
		if e != kbase.EOK {
			return nil, e
		}
		for _, ent := range ents {
			if seen[ent.Name] || whited[ent.Name] {
				continue
			}
			out = append(out, ent)
		}
	}
	return out, kbase.EOK
}

// ovlToken carries the upper layer's private write state plus the
// overlay inode through the VFS's WriteState ferry.
type ovlToken struct {
	ovl          *vfs.Inode
	upper        *vfs.Inode
	upperPrivate vfs.WriteState
}

// fileOps implements vfs.FileOps.
type fileOps struct {
	inst *fsInstance
}

func (fo *fileOps) Read(task *kbase.Task, ino *vfs.Inode, buf []byte, off int64) (int, kbase.Errno) {
	n, err := nodeOf(ino)
	if err != kbase.EOK {
		return 0, err
	}
	eff := n.effective()
	if eff == nil {
		return 0, kbase.ESTALE
	}
	return eff.FileOps.Read(task, eff, buf, off)
}

func (fo *fileOps) WriteBegin(task *kbase.Task, ino *vfs.Inode, off int64, cnt int) (vfs.WriteState, kbase.Errno) {
	if err := fo.inst.copyUp(task, ino); err != kbase.EOK {
		return vfs.WriteState{}, err
	}
	n, err := nodeOf(ino)
	if err != kbase.EOK {
		return vfs.WriteState{}, err
	}
	private, err := n.upper.FileOps.WriteBegin(task, n.upper, off, cnt)
	if err != kbase.EOK {
		return vfs.WriteState{}, err
	}
	return vfs.NewWriteState(&ovlToken{ovl: ino, upper: n.upper, upperPrivate: private}), kbase.EOK
}

func (fo *fileOps) WriteCopy(task *kbase.Task, ino *vfs.Inode, off int64, data []byte, private vfs.WriteState) (int, kbase.Errno) {
	tok, ok := vfs.WriteStateAs[*ovlToken](private)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "overlaylike",
			"write_copy private is not *ovlToken")
		return 0, kbase.EUCLEAN
	}
	return tok.upper.FileOps.WriteCopy(task, tok.upper, off, data, tok.upperPrivate)
}

func (fo *fileOps) WriteEnd(task *kbase.Task, ino *vfs.Inode, off int64, cnt int, private vfs.WriteState) kbase.Errno {
	tok, ok := vfs.WriteStateAs[*ovlToken](private)
	if !ok {
		kbase.Oops(kbase.OopsTypeConfusion, "overlaylike",
			"write_end private is not *ovlToken")
		return kbase.EUCLEAN
	}
	err := tok.upper.FileOps.WriteEnd(task, tok.upper, off, cnt, tok.upperPrivate)
	if err == kbase.EOK {
		ino.SizeWrite(task, tok.upper.SizeRead(task))
	}
	return err
}

func (fo *fileOps) Truncate(task *kbase.Task, ino *vfs.Inode, size int64) kbase.Errno {
	if err := fo.inst.copyUp(task, ino); err != kbase.EOK {
		return err
	}
	n, err := nodeOf(ino)
	if err != kbase.EOK {
		return err
	}
	if err := n.upper.FileOps.Truncate(task, n.upper, size); err != kbase.EOK {
		return err
	}
	ino.SizeWrite(task, size)
	return kbase.EOK
}

func (fo *fileOps) Fsync(task *kbase.Task, ino *vfs.Inode) kbase.Errno {
	n, err := nodeOf(ino)
	if err != kbase.EOK {
		return err
	}
	if n.upper != nil {
		return n.upper.FileOps.Fsync(task, n.upper)
	}
	return kbase.EOK
}

// SuperBlockOps.

func (inst *fsInstance) Statfs(task *kbase.Task) (vfs.StatFS, kbase.Errno) {
	if inst.upperSB.Ops == nil {
		return vfs.StatFS{FSName: "overlaylike"}, kbase.EOK
	}
	st, err := inst.upperSB.Ops.Statfs(task)
	if err != kbase.EOK {
		return vfs.StatFS{}, err
	}
	st.FSName = "overlaylike"
	return st, kbase.EOK
}

func (inst *fsInstance) SyncFS(task *kbase.Task) kbase.Errno {
	if inst.upperSB.Ops == nil {
		return kbase.EOK
	}
	return inst.upperSB.Ops.SyncFS(task)
}

func (inst *fsInstance) Unmount(task *kbase.Task) kbase.Errno {
	return inst.SyncFS(task)
}
